"""Command-line interface.

``repro-experiments`` regenerates any paper artifact from the shell::

    repro-experiments list
    repro-experiments run table1
    repro-experiments run all

Equivalent module form: ``python -m repro.cli run figure2``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .experiments import (
    ablations,
    crossfidelity,
    extensions,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    mechanisms_exp,
    scheduler_exp,
    sweep,
    table1,
)

#: Artifact name -> (description, runner).
EXPERIMENTS: Dict[str, tuple[str, Callable[[], None]]] = {
    "figure1": (
        "Fig. 1b/1c DCQCN bandwidth + Fig. 1d iteration-time CDFs",
        figure1.main,
    ),
    "figure2": ("Fig. 2 link utilization and the sliding effect",
                figure2.main),
    "figure3": ("Fig. 3 the VGG16 circle", figure3.main),
    "figure4": ("Fig. 4 rotation separates colliding jobs", figure4.main),
    "figure5": ("Fig. 5 the unified (LCM) circle", figure5.main),
    "table1": ("Table 1 fair vs unfair for five job groups", table1.main),
    "mechanisms": ("S4 mechanisms head-to-head", mechanisms_exp.main),
    "scheduler": ("S4 compatibility-aware placement", scheduler_exp.main),
    "ablations": ("adaptive CC, sector grid, solver comparison",
                  ablations.main),
    "crossfidelity": ("raw-DCQCN validation of the phase model",
                      crossfidelity.main),
    "extensions": ("S5: cluster-level, multi-tenancy, tuning",
                   extensions.main),
    "sweep": ("population sweep: compatibility probability vs comm fraction",
              sweep.main),
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of 'Congestion Control in "
            "Machine Learning Clusters' (HotNets '22)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available artifacts")
    run = subparsers.add_parser("run", help="run one artifact (or 'all')")
    run.add_argument(
        "artifact",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which artifact to regenerate",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            description, _ = EXPERIMENTS[name]
            print(f"{name.ljust(width)}  {description}")
        return 0
    if args.artifact == "all":
        for name in sorted(EXPERIMENTS):
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            EXPERIMENTS[name][1]()
        return 0
    EXPERIMENTS[args.artifact][1]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
