"""Command-line interface.

``repro-experiments`` regenerates any paper artifact from the shell::

    repro-experiments list
    repro-experiments run table1
    repro-experiments run all

Equivalent module form: ``python -m repro.cli run figure2``.

Every ``run`` records telemetry — a JSONL simulation-event trace plus a
JSON manifest of counters and wall-clock span timings — into a fresh
directory under ``runs/`` (override with ``--runs-dir`` or the
``REPRO_RUNS_DIR`` environment variable; disable with ``--no-record``).
Recorded runs are inspected with::

    repro-experiments stats figure1          # latest figure1 run
    repro-experiments trace figure1 --kind job.iteration --limit 20

Experiments execute through the runner (:mod:`repro.runner`):
``--jobs N`` fans the run specs out over worker processes and results
are cached on disk under ``<runs-dir>/cache`` keyed by spec content
hash, so repeating a run replays it instantly (``--no-cache`` opts
out). Inspect or reset the cache with::

    repro-experiments cache --stats
    repro-experiments cache --clear
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Callable, Dict, Optional

from .errors import ReproError
from .experiments import (
    ablations,
    crossfidelity,
    extensions,
    fattree,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    mechanisms_exp,
    online,
    robustness,
    scheduler_exp,
    sweep,
    table1,
)
from .runner import ResultCache, RunnerConfig, using
from .telemetry.runs import (
    DEFAULT_RUNS_DIR,
    RunRecorder,
    resolve_run,
    stats_report,
    trace_report,
)

#: Artifact name -> (description, runner).
EXPERIMENTS: Dict[str, tuple[str, Callable[[], None]]] = {
    "figure1": (
        "Fig. 1b/1c DCQCN bandwidth + Fig. 1d iteration-time CDFs",
        figure1.main,
    ),
    "figure2": ("Fig. 2 link utilization and the sliding effect",
                figure2.main),
    "figure3": ("Fig. 3 the VGG16 circle", figure3.main),
    "figure4": ("Fig. 4 rotation separates colliding jobs", figure4.main),
    "figure5": ("Fig. 5 the unified (LCM) circle", figure5.main),
    "table1": ("Table 1 fair vs unfair for five job groups", table1.main),
    "mechanisms": ("S4 mechanisms head-to-head", mechanisms_exp.main),
    "scheduler": ("S4 compatibility-aware placement", scheduler_exp.main),
    "online": ("online service: arrival-rate x placement sweep",
               online.main),
    "ablations": ("adaptive CC, sector grid, solver comparison",
                  ablations.main),
    "crossfidelity": ("raw-DCQCN validation of the phase model",
                      crossfidelity.main),
    "extensions": ("S5: cluster-level, multi-tenancy, tuning",
                   extensions.main),
    "sweep": ("population sweep: compatibility probability vs comm fraction",
              sweep.main),
    "robustness": ("fault injection: where the sliding effect collapses",
                   robustness.main),
    "fattree": ("fat-tree fabric: placement audit + multi-link rotation",
                fattree.main),
}


def default_runs_dir() -> str:
    """Where recorded runs land (``REPRO_RUNS_DIR`` overrides)."""
    return os.environ.get("REPRO_RUNS_DIR", DEFAULT_RUNS_DIR)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of 'Congestion Control in "
            "Machine Learning Clusters' (HotNets '22)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available artifacts")

    # Stub for --help only: ``main`` forwards ``lint ...`` to
    # :func:`repro.lint.cli.main` before argparse ever runs, so the
    # linter keeps its own flags (--format, --select, --baseline, ...).
    subparsers.add_parser(
        "lint",
        help="run the simulation-invariant linter (repro-lint --help)",
        add_help=False,
    )

    run = subparsers.add_parser("run", help="run one artifact (or 'all')")
    run.add_argument(
        "artifact",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which artifact to regenerate",
    )
    run.add_argument(
        "--no-record",
        action="store_true",
        help="skip telemetry recording (no run directory is written)",
    )
    run.add_argument(
        "--runs-dir",
        default=None,
        help="directory for recorded runs (default: $REPRO_RUNS_DIR or "
        f"'{DEFAULT_RUNS_DIR}')",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for run specs (default 1 = in-process)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk result cache (always execute)",
    )
    batch_group = run.add_mutually_exclusive_group()
    batch_group.add_argument(
        "--batch",
        dest="batch",
        action="store_true",
        default=None,
        help="force batched grid execution of compatible run specs "
        "(bit-identical to per-spec runs)",
    )
    batch_group.add_argument(
        "--no-batch",
        dest="batch",
        action="store_false",
        help="disable batched grid execution even where the driver "
        "requests it",
    )

    cache = subparsers.add_parser(
        "cache", help="inspect or clear the on-disk result cache"
    )
    cache.add_argument(
        "--stats",
        action="store_true",
        help="print cache location, entry count and size (default)",
    )
    cache.add_argument(
        "--clear",
        action="store_true",
        help="delete every cached result",
    )
    cache.add_argument("--runs-dir", default=None, help=argparse.SUPPRESS)

    stats = subparsers.add_parser(
        "stats", help="summarize a recorded run (events, bytes, spans)"
    )
    stats.add_argument(
        "run",
        help="run directory, run name, or artifact name (latest run)",
    )
    stats.add_argument("--runs-dir", default=None, help=argparse.SUPPRESS)

    trace = subparsers.add_parser(
        "trace", help="print a recorded run's event trace"
    )
    trace.add_argument(
        "run",
        help="run directory, run name, or artifact name (latest run)",
    )
    trace.add_argument(
        "--kind", default=None, help="only records of this kind"
    )
    trace.add_argument(
        "--limit",
        type=int,
        default=50,
        help="max records to print (0 = all, default 50)",
    )
    trace.add_argument("--runs-dir", default=None, help=argparse.SUPPRESS)
    return parser


def _runner_summary(telemetry) -> Optional[str]:
    """One line of runner activity, or ``None`` if nothing ran."""
    specs = int(telemetry.counter("runner.specs").value)
    if not specs:
        return None
    executed = int(telemetry.counter("runner.executed").value)
    hits = int(telemetry.counter("runner.cache.hits").value)
    batched = int(telemetry.counter("runner.batched").value)
    line = (
        f"runner: {specs} spec(s): {executed} executed,"
        f" {hits} cache hit(s)"
    )
    if batched:
        line += f", {batched} batched"
    return line


def _run_artifact(
    name: str,
    record: bool,
    runs_dir: str,
    jobs: int = 1,
    use_cache: bool = True,
    batch_override: Optional[bool] = None,
) -> None:
    runner = EXPERIMENTS[name][1]
    config = RunnerConfig(
        jobs=jobs,
        cache=use_cache,
        cache_dir=Path(runs_dir) / "cache",
        batch_override=batch_override,
    )
    if not record:
        with using(config):
            runner()
        return
    with using(config), RunRecorder(name, runs_dir=runs_dir) as recorder:
        runner()
    assert recorder.run_dir is not None
    print(
        f"\ntelemetry: {len(recorder.telemetry.trace)} events recorded"
        f" -> {recorder.run_dir}"
    )
    summary = _runner_summary(recorder.telemetry)
    if summary is not None:
        print(summary)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["lint"]:
        from .lint.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            description, _ = EXPERIMENTS[name]
            print(f"{name.ljust(width)}  {description}")
        return 0

    runs_dir: Optional[str] = getattr(args, "runs_dir", None)
    if runs_dir is None:
        runs_dir = default_runs_dir()

    if args.command == "run":
        record = not args.no_record
        jobs = max(1, args.jobs)
        use_cache = not args.no_cache
        batch_override = args.batch
        if args.artifact == "all":
            for name in sorted(EXPERIMENTS):
                print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
                _run_artifact(
                    name, record, runs_dir, jobs, use_cache,
                    batch_override,
                )
            return 0
        _run_artifact(
            args.artifact, record, runs_dir, jobs, use_cache,
            batch_override,
        )
        return 0

    if args.command == "cache":
        store = ResultCache(Path(runs_dir) / "cache")
        if args.clear:
            print(f"cleared {store.clear()} cached result(s)")
            return 0
        info = store.stats()
        print(f"cache: {info['root']}")
        print(f"entries: {info['entries']}")
        print(f"bytes: {info['bytes']}")
        return 0

    try:
        run_dir = resolve_run(args.run, runs_dir=runs_dir)
        if args.command == "stats":
            print(stats_report(run_dir))
        else:
            print(trace_report(run_dir, kind=args.kind, limit=args.limit))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
