"""Share-policy factory.

Experiments and benchmarks construct policies by name so that sweeps can be
expressed as configuration. Names: ``fair``, ``weighted``, ``adaptive``,
``priority``.
"""

from __future__ import annotations

from typing import Any

from ..errors import ConfigError
from .adaptive import AdaptiveUnfair
from .base import SharePolicy
from .fair import FairSharing
from .priority import PrioritySharing
from .weighted import StaticWeighted


def make_policy(name: str, **kwargs: Any) -> SharePolicy:
    """Construct a share policy by name.

    Args:
        name: One of ``fair``, ``weighted``, ``adaptive``, ``priority``.
        **kwargs: Forwarded to the policy constructor; ``weighted`` also
            accepts ``order=[job ids]`` (most aggressive first) instead of
            explicit ``weights``, and ``priority`` accepts ``order`` instead
            of explicit ``priorities``.

    Raises:
        ConfigError: for an unknown name or bad arguments.
    """
    key = name.strip().lower()
    if key == "fair":
        return FairSharing(**kwargs)
    if key == "weighted":
        order = kwargs.pop("order", None)
        if order is not None:
            if "weights" in kwargs:
                raise ConfigError("pass either order or weights, not both")
            ratio = kwargs.pop("ratio", None)
            if ratio is not None:
                return StaticWeighted.from_aggressiveness_order(order, ratio)
            return StaticWeighted.from_aggressiveness_order(order)
        return StaticWeighted(**kwargs)
    if key == "adaptive":
        return AdaptiveUnfair(**kwargs)
    if key == "priority":
        order = kwargs.pop("order", None)
        if order is not None:
            if "priorities" in kwargs:
                raise ConfigError("pass either order or priorities, not both")
            return PrioritySharing.unique_for(order)
        return PrioritySharing(**kwargs)
    raise ConfigError(
        f"unknown policy {name!r}; expected fair/weighted/adaptive/priority"
    )
