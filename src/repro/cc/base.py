"""The share-policy interface.

A :class:`SharePolicy` turns the set of currently communicating flows into
weights and priorities for the fluid allocator. Policies that depend on
communication *progress* (the paper's adaptively-unfair rule) additionally
declare a ``reallocation_interval`` so the phase simulator refreshes rates
between phase boundaries as progress accrues.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

from ..net.flows import Flow


class SharePolicy(abc.ABC):
    """Maps flows to instantaneous share weights and priorities."""

    #: Human-readable policy name (used in reports).
    name: str = "policy"

    #: Seconds between forced re-allocations while flows are active, or
    #: ``None`` if rates only change at phase boundaries. Progress-dependent
    #: policies must set this.
    reallocation_interval: Optional[float] = None

    @abc.abstractmethod
    def weight_of(self, flow: Flow) -> float:
        """Instantaneous share weight for ``flow`` (> 0)."""

    def priority_of(self, flow: Flow) -> int:
        """Strict priority class for ``flow``; higher is served first."""
        return 0

    def on_phase_start(self, flow: Flow) -> None:
        """Hook invoked when a flow's communication phase begins."""

    def on_phase_end(self, flow: Flow) -> None:
        """Hook invoked when a flow's communication phase completes."""

    def prepare(self, flows: Sequence[Flow]) -> None:
        """Hook invoked once before a simulation starts."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
