"""Vectorized sender bank for the fixed-step DCQCN engine.

:class:`SenderBank` is the ``engine="vector"`` fast path of
:class:`repro.cc.dcqcn.DcqcnFluidSimulator`. It holds every sender's
DCQCN rate-machine state (current/target rate, alpha, byte/timer
accumulators, increase-stage counters, CNP gating clocks) in
structure-of-arrays form and advances the whole bank per tick, with the
marking randomness pre-drawn in chunks from each sender's generator
(:class:`UniformChunks`). Three mechanisms make it fast while keeping
every observable output (rate series, queue series, job timelines,
bytes/remaining, CNP counts, RNG stream position) *bit-identical* to
the scalar reference loop:

* **Deterministic span advancement** — a tick is deterministic when no
  CNP can possibly arrive on it: either the queue sits at or below the
  marker's ``kmin`` (marking probability exactly zero) or every active
  sender is still inside its CNP gating window (``now`` before
  ``_next_cnp_time``, so the scalar sender early-outs before drawing).
  Over a run of such ticks each sender evolves as a piecewise-constant
  left fold punctuated by byte/timer increase events at exactly
  computable ticks. :meth:`_plan_sender` walks that evolution segment
  by segment — ``np.cumsum`` evaluates the folds sequentially in C,
  bit-identical to the per-tick ``+=``, and the event while-loops run
  in exact scalar order at the crossing tick — so one span can jump
  hundreds of ticks *through* increase events, not just up to the next
  one. The queue trajectory is the exact elementwise fold of the
  planned per-tick arrivals with the single drain-clamp episode applied
  in closed form (arrivals are nondecreasing between CNPs, so at most
  one clamp episode exists).
* **Idle / PFC fast-forward** — when every source is computing (or
  done) the clock jumps to the earliest next burst start exposed by
  :class:`repro.core.lifecycle.OnOffSource` deadlines; PFC-paused
  intervals jump straight to the resume tick on the closed-form queue
  drain. Both synthesize the skipped sample rows exactly.
* **Flat/batched tick kernels** — stochastic ticks (queue above
  ``kmin`` with a CNP-eligible sender) run a single flat pass over the
  bank with hoisted locals and an inlined queue/marker update; above
  ``BATCH_THRESHOLD`` active senders the update runs as numpy array
  operations (IEEE-754 elementwise ops match the scalar ops
  bit-for-bit).

Randomness stays DET001-clean: chunks are drawn from the same
generators the scalar engine would use, and :meth:`UniformChunks.rewind`
repositions each generator to the exact state the equivalent sequence
of scalar ``rng.random()`` calls would have left, so callers that reuse
a generator after ``run()`` (e.g. the runner's fluid backend running
several scenarios over shared streams) observe identical draws.

One documented deviation: senders pinned at line rate (``rate`` and
``target_rate`` both at ``line_rate``) have increase events that are
exact no-ops on their rates, and their byte/timer accumulators and
stage counters are dead state until the next CNP resets them. Spans
therefore fold those accumulators without the wrap-around while-loops.
Every externally observable quantity is still bit-identical; only the
private ``_byte_accum``/``_timer_accum``/``_*_stage`` fields of a
line-pinned sender may differ from the scalar engine's at the instant
``run()`` returns, and they re-converge on the next CNP.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.lifecycle import OnOffSource
from ..faults.runtime import (  # simlint: disable=ARCH001 - vectorized bank replays fault warps inline for bit-equivalence with the scalar tiers
    MODE_FREEZE,
    MODE_NORMAL,
    capacity_windows,
)
from ..switches.ecn import RedEcnMarker
from ..switches.queues import FluidQueue
from .dcqcn import (
    DcqcnResult,
    DcqcnSender,
    OnOffDcqcnJob,
    _SampleBuffer,
)

#: Active-sender count at which the per-tick kernel switches from the
#: flat Python loop (fastest for a handful of senders) to numpy arrays.
BATCH_THRESHOLD = 32

#: Minimum profitable deterministic span, ticks. Shorter spans fall back
#: to the per-tick kernel: planning a span costs more than stepping a
#: few ticks directly.
MIN_SPAN = 8

#: Longest span planned at once, ticks. Bounds the planning work thrown
#: away when a span is cut short by a queue/eligibility violation;
#: longer stretches simply chain several spans.
MAX_HORIZON = 256

#: Ticks to wait before re-attempting a span after a failed attempt.
#: Purely a cost heuristic — span boundaries never change results.
TICK_RETRY = 4

#: Safety margin (ticks) subtracted from analytic event estimates before
#: the exact upward scan; covers float rounding in the estimates.
SPAN_MARGIN = 2


class UniformChunks:
    """Chunked uniform draws from one generator, exactly replayable.

    ``next()`` returns the same sequence as repeated ``rng.random()``
    calls (numpy fills ``random(n)`` with the identical stream), but
    amortizes the generator call overhead over ``chunk`` draws.
    :meth:`rewind` restores the generator to the state the equivalent
    number of scalar draws would have produced, discarding the unused
    tail of the final chunk.
    """

    def __init__(self, rng: np.random.Generator, chunk: int = 4096) -> None:
        self._rng = rng
        self._chunk = chunk
        self._buf: List[float] = []
        self._pos = 0
        self._consumed = 0
        self._state0 = None

    def next(self) -> float:
        """The next uniform in [0, 1), identical to ``rng.random()``."""
        if self._pos >= len(self._buf):
            if self._state0 is None:
                self._state0 = self._rng.bit_generator.state
            self._buf = self._rng.random(self._chunk).tolist()
            self._pos = 0
        value = self._buf[self._pos]
        self._pos += 1
        self._consumed += 1
        return value

    def rewind(self) -> None:
        """Leave the generator exactly ``consumed`` scalar draws ahead."""
        if self._state0 is None:
            return
        self._rng.bit_generator.state = self._state0
        if self._consumed:
            self._rng.random(self._consumed)
        self._state0 = None
        self._buf = []
        self._pos = 0
        self._consumed = 0


# ---------------------------------------------------------------------------
# Exact fold helpers (shared with the AIMD vector engine)
# ---------------------------------------------------------------------------

def fold_last(x0: float, delta: float, n: int) -> float:
    """Value of ``x`` after ``n`` sequential ``x += delta`` updates.

    ``np.cumsum`` accumulates left-to-right, so the result is
    bit-identical to the per-tick Python fold.
    """
    if n <= 0:
        return x0
    arr = np.empty(n + 1)
    arr[0] = x0
    arr[1:] = delta
    return float(arr.cumsum()[-1])


def fold_traj(x0: float, delta: float, n: int) -> np.ndarray:
    """All ``n + 1`` fold values ``x0, x0+delta, ...`` (sequential)."""
    arr = np.empty(n + 1)
    arr[0] = x0
    arr[1:] = delta
    return arr.cumsum()


def clamp_drain(traj: np.ndarray) -> np.ndarray:
    """Apply the queue's ``max(0, .)`` clamp to a draining fold in place.

    Once the exact fold first goes negative the scalar queue pins the
    occupancy at ``0.0`` and every later draining step keeps it there,
    so zeroing the tail reproduces the per-tick clamp bit-for-bit.
    """
    below = np.nonzero(traj < 0.0)[0]
    if below.size:
        traj[below[0]:] = 0.0
    return traj


def activation_tick(deadline: float, dt: float, lo: int = 0) -> int:
    """First tick index ``j >= lo`` with ``j*dt + dt >= deadline``.

    This is the exact float predicate :class:`OnOffSource` evaluates, so
    the fast-forwarded clock lands on the same activation tick as the
    dt-by-dt loop. The analytic estimate only seeds a short upward scan.
    """
    est = int(math.ceil(deadline / dt)) - (SPAN_MARGIN + 1)
    j = est if est > lo else lo
    while j * dt + dt < deadline:
        j += 1
    return j


def sample_ticks(start: int, end: int, samples_every: int) -> range:
    """Global tick indices in ``[start, end)`` that emit a sample row."""
    first = -(-(start + 1) // samples_every) * samples_every - 1
    return range(first, end, samples_every)


def _apply_increase(
    r: float,
    tgt: float,
    bst: int,
    tst: int,
    fast: int,
    rai: float,
    rhai: float,
    line: float,
) -> Tuple[float, float]:
    """One increase event on local ``(rate, target)``; exact scalar ops."""
    if bst < fast and tst < fast:
        pass
    elif bst >= fast and tst >= fast:
        tgt += rhai
    else:
        tgt += rai
    if tgt > line:
        tgt = line
    return (tgt + r) / 2.0, tgt


#: Sentinel phase for a timer accumulator whose tick offset from its
#: last exact-zero reset is unknown (pre-existing sender state, or a
#: line-pinned span that folded the accumulator without wrapping). A
#: slot with unknown phase cannot be span-planned until its next CNP,
#: which resets the accumulator to an exact ``0.0`` and re-syncs it.
UNKNOWN_PHASE = -(1 << 60)


class TimerCache:
    """Exact timer-accumulator trajectory for one ``(T, dt)`` pair.

    Every timer accumulator starts from an exact ``0.0`` (fresh sender,
    burst activation, CNP reset) and then evolves by the identical op
    sequence — ``t += dt``; on ``t >= T`` wrap with repeated ``t -= T``
    — so the whole trajectory, values *and* wrap schedule, is a pure
    function of ``(T, dt)``. The cache stores it indexed by integer
    *phase* (ticks since the last reset) and extends itself lazily, so
    span planning replaces per-segment float folds with list lookups.
    """

    CHUNK = 4096

    def __init__(self, T: float, dt: float) -> None:
        self._T = T
        self._dt = dt
        #: ``t_at[p]`` — accumulator value at the *start* of the tick
        #: that is ``p`` ticks after a reset.
        self.t_at: List[float] = [0.0]
        #: ``stages[p]`` — cumulative wrap count up to phase ``p``.
        self.stages: List[int] = [0]
        #: Sorted phases ``q`` whose preceding tick wraps the timer
        #: (``stages[q] > stages[q - 1]``), for bisect-then-index walks.
        self.events: List[int] = []

    def _extend(self, upto: int) -> None:
        T = self._T
        dt = self._dt
        t_at = self.t_at
        stages = self.stages
        events = self.events
        t = t_at[-1]
        st = stages[-1]
        for p in range(len(t_at), upto + TimerCache.CHUNK + 1):
            t += dt
            if t >= T:
                while t >= T:
                    t -= T
                    st += 1
                events.append(p)
            t_at.append(t)
            stages.append(st)

    def value(self, p: int) -> float:
        """Exact accumulator value at phase ``p``."""
        if p >= len(self.t_at):
            self._extend(p)
        return self.t_at[p]

    def next_event(self, p: int) -> int:
        """Smallest phase ``q > p`` whose tick wraps the timer.

        The tick *index* that wraps is ``q - 1`` relative to the reset:
        phase ``q`` is the first tick start that observes the wrap.
        """
        t_at = self.t_at
        if p >= len(t_at):
            self._extend(p)
            t_at = self.t_at
        est = p + int((self._T - t_at[p]) / self._dt) - 2
        q = est if est > p else p + 1
        stages = self.stages
        if q >= len(stages):
            self._extend(q)
            stages = self.stages
        base = stages[p]
        while True:
            if q >= len(stages):
                self._extend(q)
                stages = self.stages
            if stages[q] > base:
                return q
            q += 1

    def wraps_at(self, q: int) -> int:
        """How many times the timer wraps on the tick ending at ``q``."""
        stages = self.stages
        if q >= len(stages):
            self._extend(q)
            stages = self.stages
        return stages[q] - stages[q - 1]


class _Plan:
    """One sender's planned CNP-free evolution.

    ``sent[m]`` is the bytes sent on span tick ``m`` and ``rates[m]``
    the rate at the *start* of tick ``m`` (``rates[m+1]`` is the
    sampled rate after tick ``m``); ``cap`` is the number of ticks
    planned. ``segments`` holds ``(start, rate, target, b_stage,
    t_stage)`` at each event boundary and ``anchors`` holds
    ``(tick, byte_accum)`` at each exact byte-accumulator reset point,
    so :meth:`SenderBank._commit_sender` can recover exact state at any
    cut ``e <= cap``. ``clamped`` marks the line-pinned fast path whose
    timer accumulator folds without wrapping (phase becomes unknown).
    """

    __slots__ = (
        "cap", "sent", "rates", "segments", "anchors", "clamped",
        "t0", "ph0",
    )

    def __init__(
        self,
        cap: int,
        sent: np.ndarray,
        rates: np.ndarray,
        segments: List[tuple],
        anchors: List[tuple],
        clamped: bool,
        t0: float,
        ph0: int,
    ) -> None:
        self.cap = cap
        self.sent = sent
        self.rates = rates
        self.segments = segments
        self.anchors = anchors
        self.clamped = clamped
        self.t0 = t0
        self.ph0 = ph0


class SenderBank:
    """Structure-of-arrays state for every sender at one bottleneck."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.objs: List[object] = []
        self.is_job: List[bool] = []
        self.lifec: List[object] = []
        self.active: List[bool] = []
        self.finite: List[bool] = []
        self.rate: List[float] = []
        self.target: List[float] = []
        self.alpha: List[float] = []
        self.remaining: List[float] = []
        self.bytes_sent: List[float] = []
        self.b_acc: List[float] = []
        self.t_acc: List[float] = []
        self.b_st: List[int] = []
        self.t_st: List[int] = []
        self.next_cnp: List[float] = []
        self.next_decay: List[float] = []
        self.cnps: List[int] = []
        # Per-slot parameters.
        self.line: List[float] = []
        self.timer: List[float] = []
        self.byte_counter: List[float] = []
        self.rai: List[float] = []
        self.rhai: List[float] = []
        self.g: List[float] = []
        self.one_minus_g: List[float] = []
        self.fast_rounds: List[int] = []
        self.cnp_interval: List[float] = []
        self.alpha_timer: List[float] = []
        self.min_rate: List[float] = []
        self.mtu: List[float] = []
        self.stream: List[UniformChunks] = []
        self._streams_by_rng: Dict[int, UniformChunks] = {}
        self._act_tick: List[Optional[int]] = []
        self._param_arrays: Optional[Dict[str, np.ndarray]] = None
        self._n_active = 0
        self._idle_live: List[int] = []
        # Timer phase bookkeeping for span planning.
        self.t_ph: List[int] = []
        self.tcache: List[TimerCache] = []
        self._tcaches: Dict[Tuple[float, float], TimerCache] = {}
        # Earliest pending activation tick (-1 = recompute lazily).
        self._act_min = -1
        # Fast-path capability flags, resolved once in build().
        self._red_marker = False
        self._kmin = 0.0
        self._kmax = 0.0
        self._pmax = 0.0
        self._mspan = 0.0
        self._has_pfc = False
        self._inline_queue = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, sim) -> Optional["SenderBank"]:
        """A bank for ``sim``'s sources, or ``None`` if any source type
        is outside the vector engine's supported set (custom sources
        fall back to the scalar reference loop)."""
        for source in sim.senders:
            if type(source) is not DcqcnSender and (
                type(source) is not OnOffDcqcnJob
            ):
                return None
        bank = cls(sim)
        for source in sim.senders:
            bank._add_slot(source)
        bank._n_active = sum(bank.active)
        bank._idle_live = [
            k
            for k in range(len(bank.objs))
            if bank.is_job[k]
            and not bank.active[k]
            and not bank.objs[k].lifecycle.done
        ]
        marker = sim.marker
        if type(marker) is RedEcnMarker:
            bank._red_marker = True
            bank._kmin = marker.kmin
            bank._kmax = marker.kmax
            bank._pmax = marker.pmax
            # Same operands as the per-call ``kmax - kmin`` inside
            # marking_probability, so the cached span is bit-identical.
            bank._mspan = marker.kmax - marker.kmin
        bank._has_pfc = sim.pfc_pause_threshold is not None
        bank._inline_queue = type(sim.queue) is FluidQueue and math.isinf(
            sim.queue.max_occupancy
        )
        return bank

    def _stream_for(self, rng: np.random.Generator) -> UniformChunks:
        # Senders sharing one generator must share one chunk buffer so
        # the draw order within a tick matches the scalar engine.
        stream = self._streams_by_rng.get(id(rng))
        if stream is None:
            stream = UniformChunks(rng)
            self._streams_by_rng[id(rng)] = stream
        return stream

    def _add_slot(self, source) -> None:
        job = type(source) is OnOffDcqcnJob
        params = source.params
        self.objs.append(source)
        self.is_job.append(job)
        self.lifec.append(source.lifecycle if job else None)
        self.line.append(params.line_rate)
        self.timer.append(params.timer)
        self.byte_counter.append(params.byte_counter)
        self.rai.append(params.rai)
        self.rhai.append(params.rhai)
        self.g.append(params.g)
        self.one_minus_g.append(1.0 - params.g)
        self.fast_rounds.append(params.fast_recovery_rounds)
        self.cnp_interval.append(params.cnp_interval)
        self.alpha_timer.append(params.alpha_timer)
        self.min_rate.append(params.min_rate)
        self.mtu.append(params.mtu)
        self.stream.append(self._stream_for(source._rng))
        key = (params.timer, self.sim.dt)
        cache = self._tcaches.get(key)
        if cache is None:
            cache = TimerCache(params.timer, self.sim.dt)
            self._tcaches[key] = cache
        self.tcache.append(cache)
        sender = source._sender if job else source
        if sender is None:
            # Idle on-off job: placeholder state until activation.
            self.active.append(False)
            self.finite.append(True)
            self.rate.append(0.0)
            self.target.append(0.0)
            self.alpha.append(1.0)
            self.remaining.append(0.0)
            self.bytes_sent.append(0.0)
            self.b_acc.append(0.0)
            self.t_acc.append(0.0)
            self.b_st.append(0)
            self.t_st.append(0)
            self.next_cnp.append(0.0)
            self.next_decay.append(params.alpha_timer)
            self.cnps.append(0)
            self._act_tick.append(None)
            self.t_ph.append(0)
        else:
            self.active.append(not sender.done)
            self.finite.append(sender.remaining is not None)
            self.rate.append(sender.rate)
            self.target.append(sender.target_rate)
            self.alpha.append(sender.alpha)
            self.remaining.append(
                sender.remaining if sender.remaining is not None else 0.0
            )
            self.bytes_sent.append(sender.bytes_sent)
            self.b_acc.append(sender._byte_accum)
            self.t_acc.append(sender._timer_accum)
            self.b_st.append(sender._byte_stage)
            self.t_st.append(sender._timer_stage)
            self.next_cnp.append(sender._next_cnp_time)
            self.next_decay.append(sender._next_alpha_decay)
            self.cnps.append(sender.cnps_received)
            self._act_tick.append(None)
            # Phase 0 only for a provably fresh accumulator (exactly
            # the post-__init__ state); anything else re-syncs at the
            # sender's next CNP reset.
            fresh = (
                sender._timer_accum <= 0.0
                and sender._timer_stage == 0
                and sender.cnps_received == 0
            )
            self.t_ph.append(0 if fresh else UNKNOWN_PHASE)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self, duration: float) -> DcqcnResult:
        """Simulate ``duration`` seconds; same contract as the scalar
        :meth:`DcqcnFluidSimulator.run` loop."""
        sim = self.sim
        dt = sim.dt
        steps = int(round(duration / dt))
        samples_every = max(1, int(round(sim.sample_interval / dt)))
        samples = _SampleBuffer()
        base_capacity = sim.capacity
        # Fault windows partition the run; span fast-forward truncates
        # at every boundary because each window's end is the bound the
        # inner loop sees. An empty schedule is one normal window, i.e.
        # exactly the historical single-loop run.
        for window in capacity_windows(sim.faults, steps, dt, base_capacity):
            if window.mode == MODE_NORMAL:
                sim._set_capacity(window.capacity)
                self._run_span(
                    window.start, window.end, samples_every, samples
                )
            elif window.mode == MODE_FREEZE:
                self._bulk_freeze(
                    window.start, window.end, samples_every, samples
                )
            else:
                sim._set_capacity(window.capacity)
                self._bulk_storm(
                    window.start, window.end, samples_every, samples
                )
        sim._set_capacity(base_capacity)
        return self._finish(duration, steps, samples)

    def _run_span(
        self, start: int, steps: int, samples_every: int,
        samples: _SampleBuffer,
    ) -> None:
        """The regular engine loop over ticks ``[start, steps)``."""
        sim = self.sim
        has_pfc = self._has_pfc
        i = start
        retry_at = start
        retry_gap = TICK_RETRY
        while i < steps:
            if has_pfc:
                sim._update_pfc()
                if sim.pfc_paused:
                    i = self._bulk_pause(i, steps, samples_every, samples)
                    retry_gap = TICK_RETRY
                    continue
            if self._n_active == 0:
                nxt = self._next_activation()
                if nxt is None or nxt > i:
                    end = steps if nxt is None else min(nxt, steps)
                    self._bulk_idle(i, end, samples_every, samples)
                    i = end
                    retry_gap = TICK_RETRY
                    continue
            elif i >= retry_at:
                advanced = self._try_span(i, steps, samples_every, samples)
                if advanced:
                    i += advanced
                    retry_gap = TICK_RETRY
                    continue
                # Exponential backoff: sustained stochastic stretches
                # (queue pinned above kmin) reject every attempt, so
                # probing less often is pure saved work — span
                # boundaries never affect results.
                retry_at = i + retry_gap
                if retry_gap < 8 * TICK_RETRY:
                    retry_gap *= 2
            end = retry_at if i < retry_at else i + 1
            if end > steps:
                end = steps
            i = self._tick_run(i, end, samples_every, samples)

    def _bulk_freeze(
        self, i: int, end: int, samples_every: int, samples: _SampleBuffer
    ) -> None:
        """Failed-link ticks: all state holds; emit sample rows only."""
        dt = self.sim.dt
        wanted = sample_ticks(i, end, samples_every)
        if not len(wanted):
            return
        occupancy = float(self.sim.queue.occupancy)
        row = [
            self.rate[k] if self.active[k] else 0.0
            for k in range(len(self.objs))
        ]
        for j in wanted:
            samples.rows.append(((j + 1) * dt, list(row), occupancy))

    def _bulk_storm(
        self, i: int, end: int, samples_every: int, samples: _SampleBuffer
    ) -> None:
        """PFC-storm ticks: senders frozen while the queue drains.

        Same closed-form drain as :meth:`_bulk_pause`, but the span is
        the whole window — no resume-threshold crossing to search for —
        and the simulator's PFC hysteresis state is left untouched.
        """
        sim = self.sim
        dt = sim.dt
        span = end - i
        if span <= 0:
            return
        occ0 = sim.queue.occupancy
        delta = (0.0 - sim.capacity) * dt
        traj = clamp_drain(fold_traj(occ0, delta, span))
        sim.pfc_pause_seconds = fold_last(sim.pfc_pause_seconds, dt, span)
        sim.queue.occupancy = float(traj[span])
        row = [
            self.rate[k] if self.active[k] else 0.0
            for k in range(len(self.objs))
        ]
        for j in sample_ticks(i, end, samples_every):
            samples.rows.append(
                ((j + 1) * dt, list(row), float(traj[j - i + 1]))
            )

    # ------------------------------------------------------------------
    # Idle / PFC fast-forward
    # ------------------------------------------------------------------

    def _next_activation(self) -> Optional[int]:
        """Earliest activation tick among idle live on-off jobs."""
        best: Optional[int] = None
        dt = self.sim.dt
        for k in self._idle_live:
            tick = self._act_tick[k]
            if tick is None:
                tick = activation_tick(self.objs[k]._deadline, dt)
                self._act_tick[k] = tick
            if best is None or tick < best:
                best = tick
        return best

    def _bulk_pause(
        self, i: int, steps: int, samples_every: int, samples: _SampleBuffer
    ) -> int:
        """Fast-forward a PFC-paused stretch; returns the resume tick.

        While paused the senders are frozen (no bytes, no marks, no
        clock advance in their state machines) and the queue drains at
        capacity, so the resume tick sits on a closed-form trajectory.
        """
        sim = self.sim
        dt = sim.dt
        occ0 = sim.queue.occupancy
        delta = (0.0 - sim.capacity) * dt
        resume = sim.pfc_resume_threshold
        estimate = int((occ0 - resume) / (-delta)) + 2 * (SPAN_MARGIN + 2)
        horizon = min(steps - i, max(estimate, 1))
        traj = clamp_drain(fold_traj(occ0, delta, horizon))
        crossing = np.nonzero(traj[1:] <= resume)[0]
        span = int(crossing[0]) + 1 if crossing.size else horizon
        span = min(span, steps - i)
        sim.pfc_pause_seconds = fold_last(sim.pfc_pause_seconds, dt, span)
        sim.queue.occupancy = float(traj[span])
        row = [
            self.rate[k] if self.active[k] else 0.0
            for k in range(len(self.objs))
        ]
        for j in sample_ticks(i, i + span, samples_every):
            samples.rows.append(
                ((j + 1) * dt, list(row), float(traj[j - i + 1]))
            )
        return i + span

    def _bulk_idle(
        self, i: int, end: int, samples_every: int, samples: _SampleBuffer
    ) -> None:
        """Fast-forward ticks where every source computes or is done."""
        sim = self.sim
        dt = sim.dt
        span = end - i
        if span <= 0:
            return
        # The scalar loop still steps the queue on 0.0 arrival.
        delta = (0.0 / dt - sim.capacity) * dt
        occ0 = sim.queue.occupancy
        wanted = sample_ticks(i, end, samples_every)
        if occ0 > 0.0 or len(wanted):
            traj = clamp_drain(fold_traj(occ0, delta, span))
            sim.queue.occupancy = float(traj[span])
            zeros = [0.0] * len(self.objs)
            for j in wanted:
                samples.rows.append(
                    ((j + 1) * dt, list(zeros), float(traj[j - i + 1]))
                )

    # ------------------------------------------------------------------
    # Deterministic spans
    # ------------------------------------------------------------------

    def _plan_sender(self, k: int, H: int, dt: float) -> Optional[_Plan]:
        """Plan sender ``k``'s exact evolution over up to ``H`` CNP-free
        ticks, or ``None`` when the timer phase is unknown (it re-syncs
        at the sender's next CNP, which zeroes the accumulator).

        The walk advances one timer-event stretch at a time: the event
        schedule comes from the :class:`TimerCache` as integer phase
        lookups, and the byte counter / completion are screened with
        conservative bounds, materialized exactly (one ``cumsum`` from
        the last anchor) only when a bound says an event may be near.
        """
        r = self.rate[k]
        tgt = self.target[k]
        line = self.line[k]
        b0 = self.b_acc[k]
        bst = self.b_st[k]
        tst = self.t_st[k]
        B = self.byte_counter[k]
        finite = self.finite[k]
        rem0 = self.remaining[k] if finite else 0.0
        if r >= line and tgt >= line:
            # Line-pinned: increase events are exact no-ops on the
            # rates; fold accumulators without wrapping (dead state
            # until the next CNP — see module docstring).
            s = r * dt
            cap = H
            if finite and s > 0.0 and int(rem0 / s) - 2 < H:
                rtraj = fold_traj(rem0, -s, H)
                comp = np.nonzero(rtraj[:H] <= s)[0]
                if comp.size:
                    # Completion tick: its clamped send and lifecycle
                    # transition run per-tick; stop just short of it.
                    cap = int(comp[0])
            return _Plan(
                cap, np.full(cap, s), np.full(cap + 1, r),
                [(0, r, tgt, bst, tst)], [(0, b0)],
                True, self.t_acc[k], 0,
            )
        ph0 = self.t_ph[k]
        if ph0 < 0:
            return None
        cache = self.tcache[k]
        if ph0 + H >= len(cache.t_at):
            cache._extend(ph0 + H)
        events = cache.events
        stages = cache.stages
        n_events = len(events)
        eidx = bisect_right(events, ph0)
        fast = self.fast_rounds[k]
        rai = self.rai[k]
        rhai = self.rhai[k]
        runs: List[tuple] = []
        # Runs since the last anchor, for exact materialization.
        tail_lens: List[int] = []
        tail_sents: List[float] = []
        segments: List[tuple] = [(0, r, tgt, bst, tst)]
        anchors: List[tuple] = [(0, b0)]
        a_tick = 0
        a_b = b0
        a_rem = rem0
        # Conservative screens (exactness never depends on them: a
        # slack bound only costs an extra materialization). One byte of
        # absolute slack per stretch dwarfs fold rounding at these
        # magnitudes while staying far below one tick's send.
        b_hi = b0
        rem_lo = rem0
        cap = H
        m = 0
        while m < H:
            s = r * dt
            q = events[eidx] if eidx < n_events else ph0 + H + 1
            mt = q - ph0 - 1
            end = mt if mt < H - 1 else H - 1
            w = end - m + 1
            if s > 0.0:
                safe_b = int((B - b_hi) / s) - 2
                safe_c = int(rem_lo / s) - 3 if finite else w
            else:
                safe_b = w
                safe_c = w
            if w <= safe_b and w <= safe_c:
                runs.append((w, s, r))
                tail_lens.append(w)
                tail_sents.append(s)
                pad = w * s
                b_hi += pad + 1.0
                rem_lo -= pad + 1.0
                m += w
                if end == mt:
                    eidx += 1
                    for _ in range(stages[q] - stages[q - 1]):
                        tst += 1
                        r, tgt = _apply_increase(
                            r, tgt, bst, tst, fast, rai, rhai, line
                        )
                    segments.append((m, r, tgt, bst, tst))
                continue
            # A screen fired: materialize the exact accumulators from
            # the last anchor through this stretch, then either process
            # the event or rebase the screens exactly and move on.
            j0 = m - a_tick
            L = j0 + w
            seg_sent = np.asarray(tail_sents + [s]).repeat(tail_lens + [w])
            arr = np.empty(L + 1)
            arr[0] = a_b
            arr[1:] = seg_sent
            btr = arr.cumsum()
            jc = -1
            rtr = None
            if finite:
                arr = np.empty(L + 1)
                arr[0] = a_rem
                arr[1:] = -seg_sent
                rtr = arr.cumsum()
                comps = np.nonzero(rtr[j0:L] <= seg_sent[j0:])[0]
                if comps.size:
                    jc = j0 + int(comps[0])
            hits = np.nonzero(btr[j0 + 1:] >= B)[0]
            jb = j0 + int(hits[0]) if hits.size else -1
            if jc >= 0 and (jb < 0 or jc <= jb):
                # Completion tick: stop the plan just short of it.
                cap = a_tick + jc
                if cap > m:
                    runs.append((cap - m, s, r))
                break
            if jb >= 0:
                # Byte-counter event on tick ``ub``: send at the old
                # rate, wrap the byte stage fully, then the timer stage
                # if it fires on the same tick — exact scalar order.
                ub = a_tick + jb
                runs.append((ub - m + 1, s, r))
                m = ub + 1
                bb = float(btr[jb + 1])
                while bb >= B:
                    bb -= B
                    bst += 1
                    r, tgt = _apply_increase(
                        r, tgt, bst, tst, fast, rai, rhai, line
                    )
                if ub == mt:
                    eidx += 1
                    for _ in range(stages[q] - stages[q - 1]):
                        tst += 1
                        r, tgt = _apply_increase(
                            r, tgt, bst, tst, fast, rai, rhai, line
                        )
                segments.append((m, r, tgt, bst, tst))
                a_tick = m
                a_b = bb
                a_rem = float(rtr[jb + 1]) if finite else 0.0
                anchors.append((a_tick, a_b))
                tail_lens = []
                tail_sents = []
                b_hi = bb
                rem_lo = a_rem
                continue
            # Spurious screen: take the whole stretch and rebase the
            # anchor on the exact end-of-stretch values.
            runs.append((w, s, r))
            m += w
            a_tick = m
            a_b = float(btr[L])
            a_rem = float(rtr[L]) if finite else 0.0
            anchors.append((a_tick, a_b))
            tail_lens = []
            tail_sents = []
            b_hi = a_b
            rem_lo = a_rem
            if end == mt:
                eidx += 1
                for _ in range(stages[q] - stages[q - 1]):
                    tst += 1
                    r, tgt = _apply_increase(
                        r, tgt, bst, tst, fast, rai, rhai, line
                    )
                segments.append((m, r, tgt, bst, tst))
        lens = [run[0] for run in runs]
        sent = np.asarray([run[1] for run in runs]).repeat(lens)
        rates = np.empty(cap + 1)
        if cap:
            rates[:cap] = np.asarray([run[2] for run in runs]).repeat(lens)
        rates[cap] = r
        return _Plan(cap, sent, rates, segments, anchors, False, 0.0, ph0)

    def _try_span(
        self, i: int, steps: int, samples_every: int, samples: _SampleBuffer
    ) -> int:
        """Advance as many deterministic ticks as possible in one jump.

        Returns the number of ticks advanced (0 if no profitable span
        exists). Span boundaries are a pure cost decision — every
        committed quantity is bit-identical to per-tick stepping.
        """
        if not self._red_marker:
            # Unknown marker shape: we cannot bound where its
            # probability becomes positive along the queue trajectory.
            return 0
        sim = self.sim
        dt = sim.dt
        kmin = self._kmin
        occ0 = sim.queue.occupancy
        active = self.active
        n = len(self.objs)
        # Earliest tick offset at which any active sender becomes
        # CNP-eligible; every tick before it is deterministic even with
        # a positive marking probability (the scalar sender early-outs
        # on ``now < _next_cnp_time`` without drawing).
        elig = steps
        arrival0 = 0.0
        for k in range(n):
            if not active[k]:
                continue
            arrival0 += self.rate[k] * dt
            nc = self.next_cnp[k]
            m = 0
            if i * dt < nc:
                est = int(math.ceil(nc / dt)) - i - (SPAN_MARGIN + 1)
                m = est if est > 0 else 0
                while (i + m) * dt < nc:
                    m += 1
            if m < elig:
                elig = m
        if occ0 > kmin and elig < MIN_SPAN:
            # Arrivals are nondecreasing over a CNP-free span, so the
            # queue cannot dip below kmin before ``need / drain`` ticks;
            # if an eligible tick lands first the span is doomed.
            drain = sim.capacity * dt - arrival0
            if drain <= 0.0 or elig < int((occ0 - kmin) / drain):
                return 0
        H = steps - i
        if H > MAX_HORIZON:
            H = MAX_HORIZON
        nxt = self._next_activation()
        if nxt is not None and nxt - i < H:
            H = nxt - i
        if H < MIN_SPAN:
            return 0
        # Trim the horizon to the estimated span end so planning work
        # is not thrown away: a span chained short is still exact.
        if occ0 > kmin:
            e_est = elig + 2 * SPAN_MARGIN
        else:
            delta0 = arrival0 - sim.capacity * dt
            if delta0 > 0.0:
                e_est = int((kmin - occ0) / delta0) + 1
                if e_est < elig:
                    e_est = elig
            else:
                e_est = H
        e_est += 4 * SPAN_MARGIN
        if MIN_SPAN <= e_est < H:
            H = e_est
        plans: List[Optional[_Plan]] = [None] * n
        cap = H
        for k in range(n):
            if not active[k]:
                continue
            plan = self._plan_sender(k, H, dt)
            if plan is None:
                # Unknown timer phase; heals at this sender's next CNP.
                return 0
            plans[k] = plan
            if plan.cap < cap:
                cap = plan.cap
                if cap < MIN_SPAN:
                    return 0
        # Exact queue trajectory: arrivals folded in slot order, then
        # the per-tick net-delta fold with its single clamp episode.
        acc = None
        for k in range(n):
            plan = plans[k]
            if plan is None:
                continue
            if acc is None:
                acc = plan.sent[:cap].copy()
            else:
                acc += plan.sent[:cap]
        deltas = (acc / dt - sim.capacity) * dt
        occ = np.empty(cap + 1)
        occ[0] = occ0
        occ[1:] = deltas
        occ = occ.cumsum()
        if deltas[0] < 0.0:
            nonneg = np.nonzero(deltas >= 0.0)[0]
            jstar = int(nonneg[0]) if nonneg.size else cap
            below = np.nonzero(occ[1:jstar + 1] < 0.0)[0]
            if below.size:
                kstar = 1 + int(below[0])
                occ[kstar:jstar + 1] = 0.0
                if jstar < cap:
                    tail = np.empty(cap - jstar + 1)
                    tail[0] = 0.0
                    tail[1:] = deltas[jstar:]
                    occ[jstar:] = tail.cumsum()
        e = cap
        if elig < e:
            viol = np.nonzero(occ[elig:e] > kmin)[0]
            if viol.size:
                e = elig + int(viol[0])
        if self._has_pfc and e > 1:
            hits = np.nonzero(occ[1:e] >= sim.pfc_pause_threshold)[0]
            if hits.size:
                e = 1 + int(hits[0])
        if e < MIN_SPAN:
            return 0
        now_last = (i + e - 1) * dt
        for k in range(n):
            if plans[k] is not None:
                self._commit_sender(k, plans[k], e, dt, now_last)
        sim.queue.occupancy = float(occ[e])
        wanted = sample_ticks(i, i + e, samples_every)
        if len(wanted):
            for j in wanted:
                u = j - i
                samples.rows.append((
                    (j + 1) * dt,
                    [
                        float(plans[k].rates[u + 1])
                        if plans[k] is not None
                        else 0.0
                        for k in range(n)
                    ],
                    float(occ[u + 1]),
                ))
        return e

    def _commit_sender(
        self, k: int, plan: _Plan, e: int, dt: float, now_last: float
    ) -> None:
        """Write sender ``k``'s exact state at span cut ``e`` back into
        the bank from its plan's segment and anchor records."""
        sent = plan.sent
        seg = plan.segments[0]
        for seg in reversed(plan.segments):
            if seg[0] <= e:
                break
        _start, r, tgt, bst, tst = seg
        self.rate[k] = r
        self.target[k] = tgt
        self.b_st[k] = bst
        self.t_st[k] = tst
        # Byte accumulator: wrap-free fold from the last anchor at or
        # before the cut (anchors sit right after each byte event).
        a_tick, a_b = plan.anchors[0]
        for a_tick, a_b in reversed(plan.anchors):
            if a_tick <= e:
                break
        u = e - a_tick
        if u > 0:
            arr = np.empty(u + 1)
            arr[0] = a_b
            arr[1:] = sent[a_tick:e]
            a_b = float(arr.cumsum()[-1])
        self.b_acc[k] = a_b
        if plan.clamped:
            # Line-pinned fold skips the dead wrap-arounds, so the
            # phase is no longer on the cache trajectory.
            self.t_acc[k] = fold_last(plan.t0, dt, e)
            self.t_ph[k] = UNKNOWN_PHASE
        else:
            ph = plan.ph0 + e
            self.t_acc[k] = self.tcache[k].value(ph)
            self.t_ph[k] = ph
        se = sent[:e]
        arr = np.empty(e + 1)
        arr[0] = self.bytes_sent[k]
        arr[1:] = se
        self.bytes_sent[k] = float(arr.cumsum()[-1])
        if self.finite[k]:
            arr = np.empty(e + 1)
            arr[0] = self.remaining[k]
            arr[1:] = -se
            self.remaining[k] = float(arr.cumsum()[-1])
        if self.is_job[k]:
            lifecycle = self.objs[k].lifecycle
            arr = np.empty(e + 1)
            arr[0] = lifecycle.comm_sent
            arr[1:] = se
            lifecycle.comm_sent = float(arr.cumsum()[-1])
        nd = self.next_decay[k]
        if now_last >= nd:
            a = self.alpha[k]
            shrink = self.one_minus_g[k]
            period = self.alpha_timer[k]
            while now_last >= nd:
                a *= shrink
                nd += period
            self.alpha[k] = a
            self.next_decay[k] = nd

    # ------------------------------------------------------------------
    # Per-tick kernels
    # ------------------------------------------------------------------

    def _activate(self, k: int, now: float) -> None:
        """Start slot ``k``'s communication burst; mirrors the state a
        fresh :class:`DcqcnSender` gets in :meth:`OnOffSource.step`."""
        obj = self.objs[k]
        budget = obj.lifecycle.begin_comm(now)
        params = obj.params
        self.active[k] = True
        self.finite[k] = True
        self.rate[k] = params.line_rate
        self.target[k] = params.line_rate
        self.alpha[k] = 1.0
        self.remaining[k] = budget
        self.bytes_sent[k] = 0.0
        self.b_acc[k] = 0.0
        self.t_acc[k] = 0.0
        self.b_st[k] = 0
        self.t_st[k] = 0
        self.next_cnp[k] = 0.0
        self.next_decay[k] = params.alpha_timer
        self.t_ph[k] = 0
        self._act_tick[k] = None
        self._n_active += 1
        self._idle_live.remove(k)
        self._act_min = -1

    def _complete(self, k: int, now: float, dt: float) -> None:
        """Close slot ``k``'s burst; mirrors :meth:`OnOffSource.step`."""
        end = now + dt
        obj = self.objs[k]
        lifecycle = obj.lifecycle
        self.active[k] = False
        self._n_active -= 1
        if lifecycle.has_more_segments:
            obj._deadline = end + lifecycle.advance_segment(end)
        else:
            lifecycle.close_iteration(end)
            if not lifecycle.done:
                obj._deadline = end + lifecycle.begin_iteration(end)
        self._act_tick[k] = None
        self._act_min = -1
        if not lifecycle.done:
            self._idle_live.append(k)

    def _increase_event(self, k: int) -> None:
        fast = self.fast_rounds[k]
        in_fast = self.b_st[k] < fast and self.t_st[k] < fast
        past_both = self.b_st[k] >= fast and self.t_st[k] >= fast
        target = self.target[k]
        if in_fast:
            pass
        elif past_both:
            target += self.rhai[k]
        else:
            target += self.rai[k]
        line = self.line[k]
        if target > line:
            target = line
        self.target[k] = target
        self.rate[k] = (target + self.rate[k]) / 2.0

    def _tick_run(
        self, start: int, stop: int, samples_every: int,
        samples: _SampleBuffer
    ) -> int:
        """Step ticks ``[start, stop)`` through the exact scalar-
        equivalent per-tick kernel, hoisting state lookups once for the
        whole run. Returns the first tick *not* stepped — early when a
        PFC pause begins or the bank goes fully idle, so the caller's
        fast-forwards take over."""
        sim = self.sim
        dt = sim.dt
        queue = sim.queue
        has_pfc = self._has_pfc
        red = self._red_marker
        kmin = self._kmin
        kmax = self._kmax
        pmax = self._pmax
        mspan = self._mspan
        marker = sim.marker
        inline_queue = self._inline_queue
        n = len(self.objs)
        active = self.active
        rate = self.rate
        finite = self.finite
        is_job = self.is_job
        remaining = self.remaining
        bytes_sent = self.bytes_sent
        b_acc = self.b_acc
        t_acc = self.t_acc
        b_st = self.b_st
        t_st = self.t_st
        next_cnp = self.next_cnp
        next_decay = self.next_decay
        min_rate = self.min_rate
        line = self.line
        target = self.target
        objs = self.objs
        t_ph = self.t_ph
        byte_counter = self.byte_counter
        timer = self.timer
        mtu = self.mtu
        stream = self.stream
        one_minus_g = self.one_minus_g
        g = self.g
        alpha = self.alpha
        cnp_interval = self.cnp_interval
        alpha_timer = self.alpha_timer
        cnps = self.cnps
        idle_live = self._idle_live
        lifec = self.lifec
        i = start
        while i < stop:
            if has_pfc and i > start:
                sim._update_pfc()
                if sim.pfc_paused:
                    return i
            now = i * dt
            occq = queue.occupancy
            if red:
                if occq <= kmin:
                    p_mark = 0.0
                elif occq >= kmax:
                    p_mark = 1.0
                else:
                    p_mark = pmax * (occq - kmin) / mspan
            else:
                p_mark = marker.marking_probability(occq)
            if idle_live:
                am = self._act_min
                if am < 0:
                    nxt = self._next_activation()
                    am = nxt if nxt is not None else (1 << 60)
                    self._act_min = am
                if i >= am:
                    for k in tuple(idle_live):
                        tick = self._act_tick[k]
                        if tick is None:
                            tick = activation_tick(objs[k]._deadline, dt)
                            self._act_tick[k] = tick
                        if i >= tick:
                            self._activate(k, now)
            if self._n_active >= BATCH_THRESHOLD:
                arrival = self._step_batched(now, dt, p_mark)
            else:
                arrival = 0.0
                for k in range(n):
                    if not active[k]:
                        continue
                    r = rate[k]
                    sent = r * dt
                    fin = finite[k]
                    if fin:
                        rem = remaining[k]
                        if rem < sent:
                            sent = rem
                        remaining[k] = rem - sent
                    bytes_sent[k] += sent
                    if p_mark > 0.0 and now >= next_cnp[k] and sent > 0.0:
                        packets = sent / mtu[k]
                        p_any = 1.0 - (1.0 - p_mark) ** packets
                        # Inlined UniformChunks.next(): identical draw
                        # sequence, minus the call overhead.
                        st = stream[k]
                        pos = st._pos
                        buf = st._buf
                        if pos >= len(buf):
                            if st._state0 is None:
                                st._state0 = st._rng.bit_generator.state
                            buf = st._rng.random(st._chunk).tolist()
                            st._buf = buf
                            pos = 0
                        st._pos = pos + 1
                        st._consumed += 1
                        if buf[pos] < p_any:
                            a = one_minus_g[k] * alpha[k] + g[k]
                            alpha[k] = a
                            target[k] = r
                            cut = r * (1.0 - a / 2.0)
                            floor = min_rate[k]
                            rate[k] = cut if cut > floor else floor
                            b_acc[k] = 0.0
                            t_acc[k] = 0.0
                            b_st[k] = 0
                            t_st[k] = 0
                            next_cnp[k] = now + cnp_interval[k]
                            next_decay[k] = now + alpha_timer[k]
                            cnps[k] += 1
                            # Accumulator reset to exact 0.0: this
                            # tick's timer stage advances it to phase 1.
                            t_ph[k] = 0
                    ba = b_acc[k] + sent
                    limit = byte_counter[k]
                    if ba >= limit:
                        while ba >= limit:
                            ba -= limit
                            b_st[k] += 1
                            self._increase_event(k)
                    b_acc[k] = ba
                    ta = t_acc[k] + dt
                    limit = timer[k]
                    if ta >= limit:
                        while ta >= limit:
                            ta -= limit
                            t_st[k] += 1
                            self._increase_event(k)
                    t_acc[k] = ta
                    t_ph[k] += 1
                    nd = next_decay[k]
                    if now >= nd:
                        a = alpha[k]
                        shrink = one_minus_g[k]
                        period = alpha_timer[k]
                        while now >= nd:
                            a *= shrink
                            nd += period
                        alpha[k] = a
                        next_decay[k] = nd
                    r = rate[k]
                    floor = min_rate[k]
                    ln = line[k]
                    if r < floor:
                        rate[k] = floor
                    elif r > ln:
                        rate[k] = ln
                    if target[k] > ln:
                        target[k] = ln
                    arrival += sent
                    if is_job[k]:
                        lifec[k].comm_sent += sent
                        if remaining[k] <= 0.0:
                            self._complete(k, now, dt)
                    elif fin and remaining[k] <= 0.0:
                        active[k] = False
                        self._n_active -= 1
            if inline_queue:
                net = (arrival / dt if dt > 0 else 0.0) - queue.capacity
                occq = queue.occupancy + net * dt
                if net < 0.0 and occq <= 0.0:
                    occq = 0.0
                queue.occupancy = occq
            else:
                queue.step(arrival / dt if dt > 0 else 0.0, dt)
            i += 1
            if i % samples_every == 0:
                samples.rows.append((
                    i * dt,
                    [rate[k] if active[k] else 0.0 for k in range(n)],
                    queue.occupancy,
                ))
            if self._n_active == 0:
                return i
        return i

    def _step_batched(self, now: float, dt: float, p_mark: float) -> float:
        """Numpy per-tick update of every active slot (large banks)."""
        act = [k for k in range(len(self.objs)) if self.active[k]]
        if self._param_arrays is None:
            self._param_arrays = {
                "line": np.array(self.line),
                "min_rate": np.array(self.min_rate),
                "byte_counter": np.array(self.byte_counter),
                "timer": np.array(self.timer),
            }
        idx = np.array(act, dtype=np.intp)
        pa = self._param_arrays
        line = pa["line"][idx]
        floor = pa["min_rate"][idx]
        byte_counter = pa["byte_counter"][idx]
        timer = pa["timer"][idx]
        r = np.array([self.rate[k] for k in act])
        sent = r * dt
        finite = np.array([self.finite[k] for k in act])
        rem = np.array(
            [self.remaining[k] if self.finite[k] else 0.0 for k in act]
        )
        if finite.any():
            capped = np.minimum(sent, rem)
            sent = np.where(finite, capped, sent)
            rem = rem - np.where(finite, sent, 0.0)
        bs = np.array([self.bytes_sent[k] for k in act]) + sent
        arrival = float(sent.cumsum()[-1]) if len(act) else 0.0
        if p_mark > 0.0:
            ncnp = np.array([self.next_cnp[k] for k in act])
            eligible = np.nonzero((now >= ncnp) & (sent > 0.0))[0]
            for pos in eligible:
                k = act[pos]
                packets = float(sent[pos]) / self.mtu[k]
                p_any = 1.0 - (1.0 - p_mark) ** packets
                if self.stream[k].next() < p_any:
                    a = self.one_minus_g[k] * self.alpha[k] + self.g[k]
                    self.alpha[k] = a
                    rk = float(r[pos])
                    self.target[k] = rk
                    cut = rk * (1.0 - a / 2.0)
                    mr = self.min_rate[k]
                    r[pos] = cut if cut > mr else mr
                    self.b_acc[k] = 0.0
                    self.t_acc[k] = 0.0
                    self.b_st[k] = 0
                    self.t_st[k] = 0
                    self.next_cnp[k] = now + self.cnp_interval[k]
                    self.next_decay[k] = now + self.alpha_timer[k]
                    self.cnps[k] += 1
                    self.t_ph[k] = 0
        # The scalar step resets accumulators before the increase stage
        # on a CNP tick, so re-read them after the CNP pass.
        ba = np.array([self.b_acc[k] for k in act]) + sent
        for pos in np.nonzero(ba >= byte_counter)[0]:
            k = act[pos]
            value = float(ba[pos])
            limit = self.byte_counter[k]
            self.rate[k] = float(r[pos])
            while value >= limit:
                value -= limit
                self.b_st[k] += 1
                self._increase_event(k)
            ba[pos] = value
            r[pos] = self.rate[k]
        ta = np.array([self.t_acc[k] for k in act]) + dt
        for pos in np.nonzero(ta >= timer)[0]:
            k = act[pos]
            value = float(ta[pos])
            limit = self.timer[k]
            self.rate[k] = float(r[pos])
            while value >= limit:
                value -= limit
                self.t_st[k] += 1
                self._increase_event(k)
            ta[pos] = value
            r[pos] = self.rate[k]
        ndecay = np.array([self.next_decay[k] for k in act])
        for pos in np.nonzero(now >= ndecay)[0]:
            k = act[pos]
            a = self.alpha[k]
            nd = self.next_decay[k]
            shrink = self.one_minus_g[k]
            period = self.alpha_timer[k]
            while now >= nd:
                a *= shrink
                nd += period
            self.alpha[k] = a
            self.next_decay[k] = nd
        r = np.minimum(np.maximum(r, floor), line)
        rate_out = r.tolist()
        rem_out = rem.tolist()
        bs_out = bs.tolist()
        ba_out = ba.tolist()
        ta_out = ta.tolist()
        sent_out = sent.tolist()
        for pos, k in enumerate(act):
            self.rate[k] = rate_out[pos]
            self.bytes_sent[k] = bs_out[pos]
            self.b_acc[k] = ba_out[pos]
            self.t_acc[k] = ta_out[pos]
            self.t_ph[k] += 1
            if self.target[k] > self.line[k]:
                self.target[k] = self.line[k]
            if self.finite[k]:
                self.remaining[k] = rem_out[pos]
            if self.is_job[k]:
                self.objs[k].lifecycle.comm_sent += sent_out[pos]
                if self.remaining[k] <= 0.0:
                    self._complete(k, now, dt)
            elif self.finite[k] and self.remaining[k] <= 0.0:
                self.active[k] = False
                self._n_active -= 1
        return arrival

    # ------------------------------------------------------------------
    # Result assembly and write-back
    # ------------------------------------------------------------------

    def _finish(
        self, duration: float, steps: int, samples: _SampleBuffer
    ) -> DcqcnResult:
        sim = self.sim
        result = DcqcnResult(duration=duration)
        names = [obj.name for obj in self.objs]
        samples.flush(result, names, sim.telemetry)
        if sim.telemetry.enabled:
            sim.telemetry.counter("cc.steps").inc(steps)
            cnp_counter = sim.telemetry.counter("cc.cnps")
            for k, obj in enumerate(self.objs):
                cnp_counter.inc(0 if self.is_job[k] else self.cnps[k])
        for k, obj in enumerate(self.objs):
            if self.is_job[k]:
                if self.active[k]:
                    sender = DcqcnSender(
                        obj.name, obj.params, obj._rng,
                        data_bytes=self.remaining[k],
                    )
                    self._write_sender(k, sender)
                    obj._sender = sender
                else:
                    obj._sender = None
            else:
                self._write_sender(k, obj)
        for stream in self._streams_by_rng.values():
            stream.rewind()
        result.timelines = {
            obj.name: obj.timeline
            for obj in self.objs
            if isinstance(obj, OnOffSource)
        }
        return result

    def _write_sender(self, k: int, sender: DcqcnSender) -> None:
        sender.rate = self.rate[k]
        sender.target_rate = self.target[k]
        sender.alpha = self.alpha[k]
        sender.bytes_sent = self.bytes_sent[k]
        sender.cnps_received = self.cnps[k]
        sender.remaining = self.remaining[k] if self.finite[k] else None
        sender._byte_accum = self.b_acc[k]
        sender._timer_accum = self.t_acc[k]
        sender._byte_stage = self.b_st[k]
        sender._timer_stage = self.t_st[k]
        sender._next_cnp_time = self.next_cnp[k]
        sender._next_alpha_decay = self.next_decay[k]
