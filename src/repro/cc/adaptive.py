"""The paper's adaptively-unfair congestion control (§4, direction i).

DCQCN increases its target rate by a constant additive step ``R_AI``. The
paper proposes scaling that step with communication-phase progress::

    R_AI  <-  R_AI * (1 + Data_sent / Data_comm_phase)

so a job about to *finish* its communication phase is more aggressive than
one just starting (``Data_sent = 0``). For compatible jobs this re-creates
the sliding side effect automatically; for incompatible jobs the advantage
alternates between jobs, so bandwidth is fair in steady state.

In fluid form, a sender whose additive-increase step is ``k`` times larger
holds a ``k`` times larger share of a shared bottleneck (share is
proportional to the increase rate when decreases are multiplicative and
marking is shared — see the DCQCN fluid analysis). Hence the policy maps
progress straight to a share weight::

    weight = base * (1 + gain * progress) ** exponent

with ``gain = 1`` and ``exponent = 1`` matching the paper's formula.
Because progress changes continuously during a phase, the policy requests
periodic re-allocation.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..net.flows import Flow
from .base import SharePolicy


class AdaptiveUnfair(SharePolicy):
    """Progress-weighted unfairness (fluid form of the §4(i) rule)."""

    name = "adaptive-unfair"

    def __init__(
        self,
        gain: float = 1.0,
        exponent: float = 1.0,
        base_weight: float = 1.0,
        reallocation_interval: float = 2e-3,
    ) -> None:
        if gain < 0:
            raise ConfigError(f"gain must be >= 0, got {gain}")
        if exponent <= 0:
            raise ConfigError(f"exponent must be > 0, got {exponent}")
        if base_weight <= 0:
            raise ConfigError(f"base_weight must be > 0, got {base_weight}")
        if reallocation_interval <= 0:
            raise ConfigError("reallocation_interval must be > 0")
        self.gain = gain
        self.exponent = exponent
        self.base_weight = base_weight
        self.reallocation_interval = reallocation_interval

    def weight_of(self, flow: Flow) -> float:
        return self.base_weight * (1.0 + self.gain * flow.progress) ** self.exponent
