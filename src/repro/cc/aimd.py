"""A TCP-like AIMD fluid baseline.

The paper's related work observes that RDMA congestion control (DCQCN, IRN,
RoCC) and classic TCP all *strive for fairness*. This module provides a
loss-driven additive-increase/multiplicative-decrease fluid model as an
independent fairness baseline: senders grow linearly and halve when the
shared buffer overflows. Used in ablation benchmarks to show the
fair-sharing pathology (Figure 2a) is not specific to DCQCN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConfigError, SimulationError
from ..sim.trace import TimeSeries
from ..switches.queues import FluidQueue
from ..units import gbps, kib, mbps


@dataclass(frozen=True)
class AimdParams:
    """AIMD sender parameters.

    Attributes:
        line_rate: Sender rate cap, bytes/s.
        increase_rate: Additive ramp in bytes/s per second.
        decrease_factor: Multiplicative cut on loss (0.5 = halve).
        min_rate: Rate floor, bytes/s.
    """

    line_rate: float = gbps(50)
    increase_rate: float = gbps(1) / 0.01  # reach 1 Gbps in 10 ms
    decrease_factor: float = 0.5
    min_rate: float = mbps(50)

    def __post_init__(self) -> None:
        if not 0 < self.decrease_factor < 1:
            raise ConfigError("decrease_factor must be in (0, 1)")
        if self.line_rate <= 0 or self.increase_rate <= 0:
            raise ConfigError("line_rate and increase_rate must be > 0")


class _AimdSender:
    def __init__(self, name: str, params: AimdParams) -> None:
        self.name = name
        self.params = params
        self.rate = params.min_rate

    def grow(self, dt: float) -> None:
        self.rate = min(
            self.rate + self.params.increase_rate * dt, self.params.line_rate
        )

    def cut(self) -> None:
        self.rate = max(
            self.rate * self.params.decrease_factor, self.params.min_rate
        )


@dataclass
class AimdResult:
    """Sampled rates from an AIMD run."""

    rate_series: Dict[str, TimeSeries] = field(default_factory=dict)
    duration: float = 0.0

    def mean_rate(self, name: str, start: float = 0.0) -> float:
        """Time-average rate of sender ``name`` from ``start`` onward."""
        series = self.rate_series[name]
        mask = series.times >= start
        if not mask.any():
            raise SimulationError(f"no samples for {name} after {start}")
        return float(series.values[mask].mean())


class AimdFluidSimulator:
    """Fixed-step AIMD senders sharing one drop-tail bottleneck."""

    def __init__(
        self,
        capacity: float = gbps(50),
        buffer_bytes: float = kib(512),
        dt: float = 10e-6,
        sample_interval: float = 250e-6,
    ) -> None:
        if dt <= 0 or sample_interval < dt:
            raise ConfigError("need dt > 0 and sample_interval >= dt")
        self.capacity = capacity
        self.queue = FluidQueue(capacity, max_occupancy=buffer_bytes)
        self.dt = dt
        self.sample_interval = sample_interval
        self._senders: List[_AimdSender] = []

    def add_sender(self, name: str, params: Optional[AimdParams] = None) -> None:
        """Register a long-lived AIMD sender."""
        self._senders.append(_AimdSender(name, params or AimdParams()))

    def run(self, duration: float) -> AimdResult:
        """Simulate ``duration`` seconds; all senders always backlogged."""
        if not self._senders:
            raise SimulationError("add at least one sender before run()")
        result = AimdResult(
            rate_series={s.name: TimeSeries(s.name) for s in self._senders},
            duration=duration,
        )
        steps = int(round(duration / self.dt))
        samples_every = max(1, int(round(self.sample_interval / self.dt)))
        now = 0.0
        for step_index in range(steps):
            arrival = sum(s.rate for s in self._senders)
            dropped_before = self.queue.dropped_bytes
            self.queue.step(arrival, self.dt)
            if self.queue.dropped_bytes > dropped_before:
                # Loss is congestion feedback: every sender backs off
                # (synchronized loss — the worst case for fairness churn).
                for sender in self._senders:
                    sender.cut()
            else:
                for sender in self._senders:
                    sender.grow(self.dt)
            now += self.dt
            if step_index % samples_every == 0:
                for sender in self._senders:
                    result.rate_series[sender.name].record(now, sender.rate)
        return result
