"""A TCP-like AIMD fluid baseline.

The paper's related work observes that RDMA congestion control (DCQCN, IRN,
RoCC) and classic TCP all *strive for fairness*. This module provides a
loss-driven additive-increase/multiplicative-decrease fluid model as an
independent fairness baseline: senders grow linearly and halve when the
shared buffer overflows. Used in ablation benchmarks to show the
fair-sharing pathology (Figure 2a) is not specific to DCQCN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.lifecycle import JobLifecycle, OnOffSource
from ..core.timeline import JobTimeline
from ..errors import ConfigError, SimulationError
from ..sim.trace import TimeSeries
from ..switches.queues import FluidQueue
from ..units import gbps, kib, mbps


@dataclass(frozen=True)
class AimdParams:
    """AIMD sender parameters.

    Attributes:
        line_rate: Sender rate cap, bytes/s.
        increase_rate: Additive ramp in bytes/s per second.
        decrease_factor: Multiplicative cut on loss (0.5 = halve).
        min_rate: Rate floor, bytes/s.
    """

    line_rate: float = gbps(50)
    increase_rate: float = gbps(1) / 0.01  # reach 1 Gbps in 10 ms
    decrease_factor: float = 0.5
    min_rate: float = mbps(50)

    def __post_init__(self) -> None:
        if not 0 < self.decrease_factor < 1:
            raise ConfigError("decrease_factor must be in (0, 1)")
        if self.line_rate <= 0 or self.increase_rate <= 0:
            raise ConfigError("line_rate and increase_rate must be > 0")


class _AimdSender:
    def __init__(self, name: str, params: AimdParams) -> None:
        self.name = name
        self.params = params
        self.rate = params.min_rate

    def grow(self, dt: float) -> None:
        self.rate = min(
            self.rate + self.params.increase_rate * dt, self.params.line_rate
        )

    def cut(self) -> None:
        self.rate = max(
            self.rate * self.params.decrease_factor, self.params.min_rate
        )


class _AimdBurstSender:
    """One communication burst's AIMD rate state.

    Fluid-sender protocol for :class:`repro.core.lifecycle.OnOffSource`:
    rate changes come from the simulator's loss feedback (grow/cut), not
    from the per-step marking probability, which AIMD ignores.
    """

    def __init__(self, params: AimdParams, data_bytes: float) -> None:
        self.params = params
        self.rate = params.min_rate
        self.remaining = data_bytes

    @property
    def done(self) -> bool:
        return self.remaining <= 0

    def step(self, now: float, dt: float, marking_probability: float) -> float:
        if self.done:
            return 0.0
        sent = min(self.rate * dt, self.remaining)
        self.remaining -= sent
        return sent

    def grow(self, dt: float) -> None:
        self.rate = min(
            self.rate + self.params.increase_rate * dt, self.params.line_rate
        )

    def cut(self) -> None:
        self.rate = max(
            self.rate * self.params.decrease_factor, self.params.min_rate
        )


class OnOffAimdJob(OnOffSource):
    """A training job's on-off traffic under AIMD congestion control.

    Same shared lifecycle clockwork as the DCQCN tier
    (:class:`repro.cc.dcqcn.OnOffDcqcnJob`); each communication burst
    starts a fresh AIMD ramp from the rate floor.
    """

    def __init__(
        self,
        name: str,
        params: AimdParams,
        compute_time: float,
        comm_bytes: float,
        start_offset: float = 0.0,
    ) -> None:
        self.params = params
        self.compute_time = compute_time
        self.comm_bytes = comm_bytes
        lifecycle = JobLifecycle(
            job_id=name,
            segments=((compute_time, comm_bytes),),
            start_offset=start_offset,
        )
        super().__init__(name, lifecycle, self._make_sender)

    def _make_sender(self, data_bytes: float) -> _AimdBurstSender:
        return _AimdBurstSender(self.params, data_bytes)

    def grow(self, dt: float) -> None:
        """Forward loss-free feedback to the active burst, if any."""
        if self._sender is not None:
            self._sender.grow(dt)

    def cut(self) -> None:
        """Forward loss feedback to the active burst, if any."""
        if self._sender is not None:
            self._sender.cut()


@dataclass
class AimdResult:
    """Sampled rates from an AIMD run.

    Attributes:
        rate_series: Per-sender sending-rate samples (bytes/s).
        duration: Simulated seconds.
        timelines: Canonical iteration timelines of every on-off job
            (plain long-lived senders have none).
    """

    rate_series: Dict[str, TimeSeries] = field(default_factory=dict)
    duration: float = 0.0
    timelines: Dict[str, JobTimeline] = field(default_factory=dict)

    def mean_rate(self, name: str, start: float = 0.0) -> float:
        """Time-average rate of sender ``name`` from ``start`` onward."""
        series = self.rate_series[name]
        mask = series.times >= start
        if not mask.any():
            raise SimulationError(f"no samples for {name} after {start}")
        return float(series.values[mask].mean())

    def timeline(self, name: str) -> JobTimeline:
        """One on-off job's canonical timeline."""
        if name not in self.timelines:
            raise SimulationError(f"no timeline recorded for {name!r}")
        return self.timelines[name]

    def mean_iteration_time(self, name: str, skip: int = 0) -> float:
        """Mean iteration time of one on-off job, seconds."""
        return self.timeline(name).mean_iteration_time(skip)

    def median_iteration_time(self, name: str, skip: int = 0) -> float:
        """Median iteration time of one on-off job, seconds."""
        return self.timeline(name).median_iteration_time(skip)


class AimdFluidSimulator:
    """Fixed-step AIMD senders sharing one drop-tail bottleneck."""

    def __init__(
        self,
        capacity: float = gbps(50),
        buffer_bytes: float = kib(512),
        dt: float = 10e-6,
        sample_interval: float = 250e-6,
    ) -> None:
        if dt <= 0 or sample_interval < dt:
            raise ConfigError("need dt > 0 and sample_interval >= dt")
        self.capacity = capacity
        self.queue = FluidQueue(capacity, max_occupancy=buffer_bytes)
        self.dt = dt
        self.sample_interval = sample_interval
        self._senders: List[_AimdSender] = []
        self._jobs: List[OnOffAimdJob] = []

    def add_sender(self, name: str, params: Optional[AimdParams] = None) -> None:
        """Register a long-lived AIMD sender."""
        self._senders.append(_AimdSender(name, params or AimdParams()))

    def add_job(
        self,
        name: str,
        compute_time: float,
        comm_bytes: float,
        params: Optional[AimdParams] = None,
        start_offset: float = 0.0,
    ) -> OnOffAimdJob:
        """Register an on-off training job under AIMD control."""
        job = OnOffAimdJob(
            name, params or AimdParams(), compute_time, comm_bytes,
            start_offset=start_offset,
        )
        self._jobs.append(job)
        return job

    def run(self, duration: float) -> AimdResult:
        """Simulate ``duration`` seconds; plain senders always backlogged."""
        if not self._senders and not self._jobs:
            raise SimulationError("add at least one sender before run()")
        sources = self._senders + self._jobs
        result = AimdResult(
            rate_series={s.name: TimeSeries(s.name) for s in sources},
            duration=duration,
        )
        steps = int(round(duration / self.dt))
        samples_every = max(1, int(round(self.sample_interval / self.dt)))
        now = 0.0
        for step_index in range(steps):
            arrival = sum(s.rate for s in self._senders)
            for job in self._jobs:
                arrival += job.step(now, self.dt, 0.0) / self.dt
            dropped_before = self.queue.dropped_bytes
            self.queue.step(arrival, self.dt)
            if self.queue.dropped_bytes > dropped_before:
                # Loss is congestion feedback: every sender backs off
                # (synchronized loss — the worst case for fairness churn).
                for source in sources:
                    source.cut()
            else:
                for source in sources:
                    source.grow(self.dt)
            now += self.dt
            if step_index % samples_every == 0:
                for source in sources:
                    result.rate_series[source.name].record(now, source.rate)
        result.timelines = {job.name: job.timeline for job in self._jobs}
        return result
