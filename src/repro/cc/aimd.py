"""A TCP-like AIMD fluid baseline.

The paper's related work observes that RDMA congestion control (DCQCN, IRN,
RoCC) and classic TCP all *strive for fairness*. This module provides a
loss-driven additive-increase/multiplicative-decrease fluid model as an
independent fairness baseline: senders grow linearly and halve when the
shared buffer overflows. Used in ablation benchmarks to show the
fair-sharing pathology (Figure 2a) is not specific to DCQCN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.lifecycle import JobLifecycle, OnOffSource
from ..core.timeline import JobTimeline
from ..errors import ConfigError, SimulationError
from ..faults.events import InjectionSchedule  # simlint: disable=ARCH001 - CC tiers execute fault warps inline for bit-equivalence; shared types pending a layer move
from ..faults.runtime import (  # simlint: disable=ARCH001 - same inversion as above
    MODE_FREEZE,
    MODE_NORMAL,
    build_warp,
    capacity_windows,
    link_capacity_windows,
    single_link,
)
from ..sim.trace import TimeSeries
from ..switches.queues import FluidQueue
from ..units import gbps, kib, mbps
from .sender_bank import activation_tick, clamp_drain, fold_traj, sample_ticks

if TYPE_CHECKING:
    from ..net.topology import Topology


@dataclass(frozen=True)
class AimdParams:
    """AIMD sender parameters.

    Attributes:
        line_rate: Sender rate cap, bytes/s.
        increase_rate: Additive ramp in bytes/s per second.
        decrease_factor: Multiplicative cut on loss (0.5 = halve).
        min_rate: Rate floor, bytes/s.
    """

    line_rate: float = gbps(50)
    increase_rate: float = gbps(1) / 0.01  # reach 1 Gbps in 10 ms
    decrease_factor: float = 0.5
    min_rate: float = mbps(50)

    def __post_init__(self) -> None:
        if not 0 < self.decrease_factor < 1:
            raise ConfigError("decrease_factor must be in (0, 1)")
        if self.line_rate <= 0 or self.increase_rate <= 0:
            raise ConfigError("line_rate and increase_rate must be > 0")


class _AimdSender:
    def __init__(self, name: str, params: AimdParams) -> None:
        self.name = name
        self.params = params
        self.rate = params.min_rate

    def grow(self, dt: float) -> None:
        self.rate = min(
            self.rate + self.params.increase_rate * dt, self.params.line_rate
        )

    def cut(self) -> None:
        self.rate = max(
            self.rate * self.params.decrease_factor, self.params.min_rate
        )


class _AimdBurstSender:
    """One communication burst's AIMD rate state.

    Fluid-sender protocol for :class:`repro.core.lifecycle.OnOffSource`:
    rate changes come from the simulator's loss feedback (grow/cut), not
    from the per-step marking probability, which AIMD ignores.
    """

    def __init__(self, params: AimdParams, data_bytes: float) -> None:
        self.params = params
        self.rate = params.min_rate
        self.remaining = data_bytes

    @property
    def done(self) -> bool:
        return self.remaining <= 0

    def step(self, now: float, dt: float, marking_probability: float) -> float:
        if self.done:
            return 0.0
        sent = min(self.rate * dt, self.remaining)
        self.remaining -= sent
        return sent

    def grow(self, dt: float) -> None:
        self.rate = min(
            self.rate + self.params.increase_rate * dt, self.params.line_rate
        )

    def cut(self) -> None:
        self.rate = max(
            self.rate * self.params.decrease_factor, self.params.min_rate
        )


class OnOffAimdJob(OnOffSource):
    """A training job's on-off traffic under AIMD congestion control.

    Same shared lifecycle clockwork as the DCQCN tier
    (:class:`repro.cc.dcqcn.OnOffDcqcnJob`); each communication burst
    starts a fresh AIMD ramp from the rate floor.
    """

    def __init__(
        self,
        name: str,
        params: AimdParams,
        compute_time: float,
        comm_bytes: float,
        start_offset: float = 0.0,
        warp=None,
    ) -> None:
        self.params = params
        self.compute_time = compute_time
        self.comm_bytes = comm_bytes
        lifecycle = JobLifecycle(
            job_id=name,
            segments=((compute_time, comm_bytes),),
            start_offset=start_offset,
            warp=warp,
        )
        super().__init__(name, lifecycle, self._make_sender)

    def _make_sender(self, data_bytes: float) -> _AimdBurstSender:
        return _AimdBurstSender(self.params, data_bytes)

    def grow(self, dt: float) -> None:
        """Forward loss-free feedback to the active burst, if any."""
        if self._sender is not None:
            self._sender.grow(dt)

    def cut(self) -> None:
        """Forward loss feedback to the active burst, if any."""
        if self._sender is not None:
            self._sender.cut()


@dataclass
class AimdResult:
    """Sampled rates from an AIMD run.

    Attributes:
        rate_series: Per-sender sending-rate samples (bytes/s).
        duration: Simulated seconds.
        timelines: Canonical iteration timelines of every on-off job
            (plain long-lived senders have none).
    """

    rate_series: Dict[str, TimeSeries] = field(default_factory=dict)
    duration: float = 0.0
    timelines: Dict[str, JobTimeline] = field(default_factory=dict)

    def mean_rate(self, name: str, start: float = 0.0) -> float:
        """Time-average rate of sender ``name`` from ``start`` onward."""
        series = self.rate_series[name]
        mask = series.times >= start
        if not mask.any():
            raise SimulationError(f"no samples for {name} after {start}")
        return float(series.values[mask].mean())

    def timeline(self, name: str) -> JobTimeline:
        """One on-off job's canonical timeline."""
        if name not in self.timelines:
            raise SimulationError(f"no timeline recorded for {name!r}")
        return self.timelines[name]

    def mean_iteration_time(self, name: str, skip: int = 0) -> float:
        """Mean iteration time of one on-off job, seconds."""
        return self.timeline(name).mean_iteration_time(skip)

    def median_iteration_time(self, name: str, skip: int = 0) -> float:
        """Median iteration time of one on-off job, seconds."""
        return self.timeline(name).median_iteration_time(skip)


class AimdFluidSimulator:
    """Fixed-step AIMD senders sharing one drop-tail bottleneck.

    Passing ``topology`` switches to **multi-link fabric mode**: every
    sender and job must then carry a ``route`` (a tuple of link names),
    each link runs its own drop-tail queue at ``buffer_bytes``, and a
    source backs off when *any* link on its route drops — the loss
    analog of reacting to the most congested hop. AIMD has no span
    fast-forward on a fabric: both engines run the same per-tick
    reference loop (the model is loss-driven and deterministic, so
    scalar/vector equivalence is structural).
    """

    def __init__(
        self,
        capacity: float = gbps(50),
        buffer_bytes: float = kib(512),
        dt: float = 10e-6,
        sample_interval: float = 250e-6,
        engine: str = "vector",
        faults: Optional[InjectionSchedule] = None,
        topology: Optional["Topology"] = None,
    ) -> None:
        if dt <= 0 or sample_interval < dt:
            raise ConfigError("need dt > 0 and sample_interval >= dt")
        if engine not in ("scalar", "vector"):
            raise ConfigError(
                f"engine must be 'scalar' or 'vector', got {engine!r}"
            )
        self.engine = engine
        self.capacity = capacity
        self.buffer_bytes = buffer_bytes
        self.queue = FluidQueue(capacity, max_occupancy=buffer_bytes)
        self.dt = dt
        self.sample_interval = sample_interval
        self.faults = faults
        self._fault_warps_installed = False
        self.topology = topology
        self.fabric = None
        if topology is None:
            single_link(faults)  # reject multi-link schedules up front
        self._senders: List[_AimdSender] = []
        self._jobs: List[OnOffAimdJob] = []
        self._sender_routes: List[Tuple[str, ...]] = []
        self._job_routes: List[Tuple[str, ...]] = []
        self._chunk = 256

    def add_sender(
        self,
        name: str,
        params: Optional[AimdParams] = None,
        route: Sequence[str] = (),
    ) -> None:
        """Register a long-lived AIMD sender."""
        self._sender_routes.append(self._check_route(name, route))
        self._senders.append(_AimdSender(name, params or AimdParams()))

    def add_job(
        self,
        name: str,
        compute_time: float,
        comm_bytes: float,
        params: Optional[AimdParams] = None,
        start_offset: float = 0.0,
        route: Sequence[str] = (),
    ) -> OnOffAimdJob:
        """Register an on-off training job under AIMD control."""
        self._job_routes.append(self._check_route(name, route))
        job = OnOffAimdJob(
            name, params or AimdParams(), compute_time, comm_bytes,
            start_offset=start_offset,
        )
        self._jobs.append(job)
        return job

    def _check_route(
        self, name: str, route: Sequence[str]
    ) -> Tuple[str, ...]:
        route = tuple(route)
        if self.topology is None:
            if route:
                raise ConfigError(
                    f"sender {name!r} carries a route but the simulator "
                    "has no topology; pass topology= to "
                    "AimdFluidSimulator to enable multi-link routes"
                )
        else:
            if not route:
                raise ConfigError(
                    f"sender {name!r} needs a route (tuple of link "
                    "names) on a topology-backed simulator"
                )
            if len(set(route)) != len(route):
                raise ConfigError(
                    f"sender {name!r} route visits a link twice: {route}"
                )
            for link_name in route:
                self.topology.link_by_name(link_name)  # raises if unknown
        return route

    def run(self, duration: float) -> AimdResult:
        """Simulate ``duration`` seconds; plain senders always backlogged.

        With ``engine="vector"`` (the default) loss-free stretches are
        advanced in one exact batch: AIMD has no randomness, so every
        rate ramp, byte countdown and queue fold between events (burst
        activation, burst completion, a drop) is a deterministic
        sequential fold that ``np.cumsum`` reproduces bit-for-bit. The
        dt-by-dt reference loop stays behind ``engine="scalar"``; both
        produce identical traces and timelines.
        """
        if not self._senders and not self._jobs:
            raise SimulationError("add at least one sender before run()")
        self._install_fault_warps()
        if self.topology is not None:
            return self._run_fabric(duration)
        sources = self._senders + self._jobs
        steps = int(round(duration / self.dt))
        samples_every = max(1, int(round(self.sample_interval / self.dt)))
        rows_t: List[float] = []
        rows_v: List[List[float]] = []
        base_capacity = self.queue.capacity
        for window in capacity_windows(
            self.faults, steps, self.dt, base_capacity
        ):
            if window.mode == MODE_NORMAL:
                self._set_capacity(window.capacity)
                self._run_span(
                    window.start, window.end, samples_every,
                    rows_t, rows_v, sources,
                )
            elif window.mode == MODE_FREEZE:
                self._span_freeze(
                    window.start, window.end, samples_every,
                    rows_t, rows_v, sources,
                )
            else:
                self._set_capacity(window.capacity)
                self._span_storm(
                    window.start, window.end, samples_every,
                    rows_t, rows_v, sources,
                )
        self._set_capacity(base_capacity)
        result = AimdResult(duration=duration)
        for column, source in enumerate(sources):
            result.rate_series[source.name] = TimeSeries.from_arrays(
                source.name, rows_t, [row[column] for row in rows_v]
            )
        result.timelines = {job.name: job.timeline for job in self._jobs}
        return result

    def _install_fault_warps(self) -> None:
        """Attach per-job warps (stragglers, skew, latency spikes) once."""
        if self.faults is None or self._fault_warps_installed:
            return
        self._fault_warps_installed = True
        if self.topology is None:
            link = single_link(self.faults)
            default_links = (link,) if link is not None else ()
            routes = [default_links] * len(self._jobs)
        else:
            routes = self._job_routes
        for job, links in zip(self._jobs, routes):
            warp = build_warp(self.faults, job.name, links)
            if warp is not None:
                job.install_warp(warp)

    def _run_fabric(self, duration: float) -> AimdResult:
        """The multi-link per-tick loop (both engines; see class docs).

        Per tick: blocked links (failed, storming) silence every source
        routed across them — no arrivals, no grow/cut, rates held, jobs'
        activation clockwork deferred exactly like a skipped scalar
        ``step``. Unblocked sources inject on every route link; a source
        then cuts when any of its route links dropped bytes this tick
        and grows otherwise.
        """
        from .link_engine import LinkFabric

        dt = self.dt
        steps = int(round(duration / dt))
        samples_every = max(1, int(round(self.sample_interval / dt)))
        sources = self._senders + self._jobs
        routes = self._sender_routes + self._job_routes
        if self.fabric is None:
            extra = (
                () if self.faults is None
                else tuple(self.faults.link_names())
            )
            self.fabric = LinkFabric(
                self.topology, routes, extra_links=extra,
                max_occupancy=self.buffer_bytes,
            )
        fabric = self.fabric
        index_routes = [
            tuple(fabric.index[name] for name in route) for route in routes
        ]
        n_senders = len(self._senders)
        queues = fabric.queues
        modes = fabric.modes
        n_links = len(queues)
        rows_t: List[float] = []
        rows_v: List[List[float]] = []
        blocked = [False] * n_links
        arrivals = [0.0] * n_links
        dropped_before = [0.0] * n_links
        for window in link_capacity_windows(
            self.faults, steps, dt, fabric.base_capacities()
        ):
            fabric.apply_window(window.modes)
            for step_index in range(window.start, window.end):
                now = step_index * dt
                for link in range(n_links):
                    blocked[link] = modes[link] != MODE_NORMAL
                    arrivals[link] = 0.0
                    dropped_before[link] = queues[link].dropped_bytes
                stepped: List[object] = []
                for column, source in enumerate(sources):
                    route = index_routes[column]
                    skip = False
                    for link in route:
                        if blocked[link]:
                            skip = True
                            break
                    if skip:
                        continue
                    if column < n_senders:
                        rate = source.rate
                    else:
                        rate = source.step(now, dt, 0.0) / dt
                    stepped.append((source, route))
                    for link in route:
                        arrivals[link] += rate
                for link in range(n_links):
                    if modes[link] == MODE_FREEZE:
                        continue
                    # Storming links see zero arrivals (every source
                    # crossing them was skipped) and simply drain.
                    queues[link].step(arrivals[link], dt)
                lossy = [
                    queues[link].dropped_bytes > dropped_before[link]
                    for link in range(n_links)
                ]
                for source, route in stepped:
                    hit = False
                    for link in route:
                        if lossy[link]:
                            hit = True
                            break
                    if hit:
                        source.cut()
                    else:
                        source.grow(dt)
                if (step_index + 1) % samples_every == 0:
                    rows_t.append((step_index + 1) * dt)
                    rows_v.append([source.rate for source in sources])
        fabric.restore()
        result = AimdResult(duration=duration)
        for column, source in enumerate(sources):
            result.rate_series[source.name] = TimeSeries.from_arrays(
                source.name, rows_t, [row[column] for row in rows_v]
            )
        result.timelines = {job.name: job.timeline for job in self._jobs}
        return result

    def _set_capacity(self, capacity: float) -> None:
        """Point both capacity views at the window's effective value."""
        self.capacity = capacity
        self.queue.capacity = capacity

    def _run_span(
        self,
        start: int,
        end: int,
        samples_every: int,
        rows_t: List[float],
        rows_v: List[List[float]],
        sources: List[object],
    ) -> None:
        """The regular engine loop over ticks ``[start, end)``."""
        if self.engine == "vector":
            i = start
            while i < end:
                advanced = self._try_span(
                    i, end, samples_every, rows_t, rows_v, sources
                )
                if advanced:
                    i += advanced
                    continue
                self._step_once(i, sources)
                i += 1
                if i % samples_every == 0:
                    rows_t.append(i * self.dt)
                    rows_v.append([source.rate for source in sources])
        else:
            for step_index in range(start, end):
                self._step_once(step_index, sources)
                if (step_index + 1) % samples_every == 0:
                    # Samples land on the sample_interval grid: the
                    # state after tick k covers time (k+1) * dt.
                    rows_t.append((step_index + 1) * self.dt)
                    rows_v.append([source.rate for source in sources])

    def _span_freeze(
        self,
        start: int,
        end: int,
        samples_every: int,
        rows_t: List[float],
        rows_v: List[List[float]],
        sources: List[object],
    ) -> None:
        """Failed-link ticks: all state holds; only sample rows appear.

        A frozen span has no dynamics by definition, so both engines
        share this closed form.
        """
        wanted = sample_ticks(start, end, samples_every)
        if not len(wanted):
            return
        row = [source.rate for source in sources]
        for g in wanted:
            rows_t.append((g + 1) * self.dt)
            rows_v.append(list(row))

    def _span_storm(
        self,
        start: int,
        end: int,
        samples_every: int,
        rows_t: List[float],
        rows_v: List[List[float]],
        sources: List[object],
    ) -> None:
        """Pause-storm ticks: senders frozen while the queue drains.

        AIMD has no PFC model, so a storm degrades to a pause: no
        arrivals, no loss feedback, rates held.
        """
        if end <= start:
            return
        if self.engine == "vector":
            span = end - start
            delta = (0.0 - self.queue.capacity) * self.dt
            traj = clamp_drain(fold_traj(self.queue.occupancy, delta, span))
            self.queue.occupancy = float(traj[span])
            row = [source.rate for source in sources]
            for g in sample_ticks(start, end, samples_every):
                rows_t.append((g + 1) * self.dt)
                rows_v.append(list(row))
        else:
            for step_index in range(start, end):
                self.queue.step(0.0, self.dt)
                if (step_index + 1) % samples_every == 0:
                    rows_t.append((step_index + 1) * self.dt)
                    rows_v.append([source.rate for source in sources])

    def _step_once(self, step_index: int, sources: List[object]) -> None:
        """One exact reference tick shared by both engines."""
        now = step_index * self.dt
        arrival = sum(s.rate for s in self._senders)
        for job in self._jobs:
            arrival += job.step(now, self.dt, 0.0) / self.dt
        dropped_before = self.queue.dropped_bytes
        self.queue.step(arrival, self.dt)
        if self.queue.dropped_bytes > dropped_before:
            # Loss is congestion feedback: every sender backs off
            # (synchronized loss — the worst case for fairness churn).
            for source in sources:
                source.cut()
        else:
            for source in sources:
                source.grow(self.dt)

    def _try_span(
        self,
        i: int,
        steps: int,
        samples_every: int,
        rows_t: List[float],
        rows_v: List[List[float]],
        sources: List[object],
    ) -> int:
        """Advance as many loss-free ticks as possible in one batch.

        Returns the number of ticks committed (0 = fall back to one
        scalar tick). Within the committed stretch every sender only
        grows, so the rate trajectories are sequential folds clamped at
        the line rate; arrivals are therefore nondecreasing, which
        bounds the queue to a single clamp-at-empty episode and makes
        the first overflow tick of the unclamped fold the first real
        drop. The span ends strictly before the earliest burst
        activation, burst completion or drop, which the per-tick
        reference path then replays exactly.
        """
        dt = self.dt
        queue = self.queue
        H = min(steps - i, self._chunk)
        for job in self._jobs:
            if job._sender is None and not job.lifecycle.done:
                gap = activation_tick(job._deadline, dt, lo=i) - i
                if gap < H:
                    H = gap
        if H < 8:
            return 0
        # Exact rate trajectories: trajs[k][m] is source k's rate at the
        # start of tick i+m (idle/done jobs carry None and send 0).
        trajs: List[Optional[np.ndarray]] = []
        job_folds: List[Optional[tuple]] = []
        arrival = np.zeros(H)
        e = H
        for sender in self._senders:
            params = sender.params
            if sender.rate > params.line_rate:
                return 0
            traj = np.minimum(
                fold_traj(sender.rate, params.increase_rate * dt, H),
                params.line_rate,
            )
            arrival += traj[:H]
            trajs.append(traj)
        for job in self._jobs:
            burst = job._sender
            if burst is None:
                trajs.append(None)
                job_folds.append(None)
                continue
            params = burst.params
            if burst.rate > params.line_rate:
                return 0
            traj = np.minimum(
                fold_traj(burst.rate, params.increase_rate * dt, H),
                params.line_rate,
            )
            sends = traj[:H] * dt
            rems = np.cumsum(np.concatenate(([burst.remaining], -sends)))
            # The burst completes at the first tick whose remaining
            # budget no longer exceeds a full rate*dt quantum.
            fin = np.nonzero(rems[:H] <= sends)[0]
            if fin.size and fin[0] < e:
                e = int(fin[0])
            arrival += sends / dt
            trajs.append(traj)
            job_folds.append((sends, rems))
        if e == 0:
            return 0
        delta = (arrival - queue.capacity) * dt
        occs = np.cumsum(np.concatenate(([queue.occupancy], delta)))
        below = np.nonzero(occs[1:] < 0.0)[0]
        if below.size:
            # Single clamp episode: pinned at empty until the (nondecreasing)
            # net inflow turns positive, then the fold restarts from 0.0.
            j = int(below[0])
            pos = np.nonzero(delta[j:] > 0.0)[0]
            k = j + int(pos[0]) if pos.size else H
            occs[j + 1 : k + 1] = 0.0
            if k < H:
                occs[k + 1 :] = np.cumsum(delta[k:])
        over = np.nonzero(occs[1:] > queue.max_occupancy)[0]
        if over.size and over[0] < e:
            e = int(over[0])
        if e == 0:
            return 0
        # Commit: write back final states and emit the sample rows the
        # scalar loop would have produced inside the stretch.
        column = 0
        for sender in self._senders:
            sender.rate = float(trajs[column][e])
            column += 1
        for job, folds in zip(self._jobs, job_folds):
            if folds is not None:
                sends, rems = folds
                burst = job._sender
                burst.rate = float(trajs[column][e])
                burst.remaining = float(rems[e])
                lifecycle = job.lifecycle
                lifecycle.comm_sent = float(
                    np.cumsum(
                        np.concatenate(([lifecycle.comm_sent], sends[:e]))
                    )[-1]
                )
            column += 1
        queue.occupancy = float(occs[e])
        for g in sample_ticks(i, i + e, samples_every):
            rows_t.append((g + 1) * dt)
            rows_v.append([
                0.0 if traj is None else float(traj[g - i + 1])
                for traj in trajs
            ])
        self._chunk = (
            min(self._chunk * 2, 8192) if e == H else max(16, 2 * e)
        )
        return e
