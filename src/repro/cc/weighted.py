"""Static-weighted unfairness.

The fluid analogue of the paper's testbed trick: shrinking DCQCN's rate-
increase timer ``T`` on one job's servers (125 µs -> 100 µs) makes that job
persistently more aggressive, observed as a ~30/15 Gbps split on a 50 Gbps
(≈45 Gbps effective) bottleneck — i.e. roughly a 2:1 weighted share. Here
the aggressiveness is expressed directly as a per-job weight; the
fine-grained model (:func:`repro.cc.dcqcn.calibrate_timer_weights`) maps a
``T`` skew to an equivalent weight ratio.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from ..errors import ConfigError
from ..net.flows import Flow
from .base import SharePolicy

#: Weight ratio between adjacent aggressiveness ranks, chosen to match the
#: paper's observed ~2:1 bandwidth split for the T=100 µs vs 125 µs skew.
DEFAULT_AGGRESSIVENESS_RATIO = 2.0


class StaticWeighted(SharePolicy):
    """Fixed per-job share weights (unfairness as a knob)."""

    name = "static-weighted"

    def __init__(self, weights: Mapping[str, float], default: float = 1.0):
        for job_id, weight in weights.items():
            if weight <= 0:
                raise ConfigError(f"job {job_id}: weight must be > 0")
        if default <= 0:
            raise ConfigError("default weight must be > 0")
        self._weights: Dict[str, float] = dict(weights)
        self._default = default

    @classmethod
    def from_aggressiveness_order(
        cls,
        job_ids: Sequence[str],
        ratio: float = DEFAULT_AGGRESSIVENESS_RATIO,
    ) -> "StaticWeighted":
        """Build weights from an ordering, most aggressive first.

        Table 1's protocol: "the order of aggressiveness is based on the
        jobs' order of appearance in the table, with each job more
        aggressive than subsequent jobs in its row". Adjacent jobs differ by
        ``ratio``.
        """
        if ratio <= 1.0:
            raise ConfigError(f"ratio must exceed 1, got {ratio}")
        n = len(job_ids)
        weights = {
            job_id: ratio ** (n - 1 - rank)
            for rank, job_id in enumerate(job_ids)
        }
        return cls(weights)

    def weight_of(self, flow: Flow) -> float:
        return self._weights.get(flow.job_id, self._default)

    def weight_for_job(self, job_id: str) -> float:
        """The configured weight of ``job_id`` (default if unset)."""
        return self._weights.get(job_id, self._default)

    @property
    def weights(self) -> Dict[str, float]:
        """The configured per-job weights (copy)."""
        return dict(self._weights)

    @property
    def default_weight(self) -> float:
        """The weight applied to jobs without an explicit entry."""
        return self._default
