"""Multi-link fabric engine for the fixed-step DCQCN fluid tier.

Generalizes the single-bottleneck model of
:class:`repro.cc.dcqcn.DcqcnFluidSimulator` to *a vector of links per
sender*: every sender carries a route (a tuple of named
:class:`repro.net.topology.Link` instances resolved through a
:class:`~repro.net.topology.Topology`), each link runs its own fluid
queue with RED/ECN marking and PFC hysteresis, and a sender reacts to
its **most congested hop** — the maximum marking probability along its
route, and a full stop while any route link is PFC-paused, failed or
storming.

Two engines share one contract, exactly as in the single-link tier:

* :func:`run_scalar_fabric` — the dt-by-dt reference loop over live
  sender objects. This defines the semantics.
* :class:`LinkSenderBank` — the vectorized engine, a subclass of
  :class:`repro.cc.sender_bank.SenderBank` that keeps the per-sender
  structure-of-arrays kernel, the :class:`~repro.cc.sender_bank.TimerCache`
  wrap schedules and the chunked RNG, and extends the deterministic span
  fast-forward to a links x senders incidence: per-link arrival folds
  (slot order, ``np.cumsum``) with the single clamp-at-empty episode per
  link, and the span cut taken at the earliest violation across *all*
  links (queue above ``kmin`` once a sender is CNP-eligible, or any
  start-of-tick occupancy at the PFC pause threshold). Span boundaries
  remain a pure cost decision — every committed quantity is
  bit-identical to the reference loop, which
  ``tests/test_fattree_equivalence.py`` pins (series, per-link queue
  series, timelines and RNG stream positions).

Fault schedules may target any named fabric link:
:func:`repro.faults.runtime.link_capacity_windows` merges the per-link
windows, faulted windows run the per-tick kernel (no span fast-forward
— fault windows are short and correctness is trivially preserved), and
per-job warps see exactly the links on the job's route.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..faults.runtime import (  # simlint: disable=ARCH001 - CC tiers execute fault windows inline for bit-equivalence; shared types pending a layer move
    MODE_FREEZE,
    MODE_NORMAL,
    MODE_STORM,
    link_capacity_windows,
)
from ..sim.trace import TimeSeries
from ..switches.queues import FluidQueue
from ..telemetry.trace import KIND_CC_RATE
from .sender_bank import (
    MAX_HORIZON,
    MIN_SPAN,
    SPAN_MARGIN,
    TICK_RETRY,
    SenderBank,
    activation_tick,
    clamp_drain,
    fold_traj,
    sample_ticks,
)


class LinkFabric:
    """Per-link queues, PFC state and route incidence for one simulator.

    Links are collected in first-use order over the senders' routes
    (plus any extra links a fault schedule names), so the fabric only
    carries the links traffic or faults can actually touch — a fat tree
    has ``5k^3/4`` directed links but a handful of jobs cross far fewer.
    """

    def __init__(
        self,
        topology,
        routes: Sequence[Tuple[str, ...]],
        extra_links: Sequence[str] = (),
        max_occupancy: float = math.inf,
    ) -> None:
        self.names: List[str] = []
        self.index: Dict[str, int] = {}
        self.links: List[object] = []
        for route in routes:
            for name in route:
                self._intern(topology, name)
        for name in extra_links:
            self._intern(topology, name)
        if not self.names:
            raise ConfigError("fabric needs at least one routed link")
        self.base_caps: List[float] = [link.capacity for link in self.links]
        self.queues: List[FluidQueue] = [
            FluidQueue(capacity, max_occupancy=max_occupancy)
            for capacity in self.base_caps
        ]
        #: Routes as tuples of link indices, one per sender slot.
        self.routes: List[Tuple[int, ...]] = [
            tuple(self.index[name] for name in route) for route in routes
        ]
        n = len(self.names)
        self.paused: List[bool] = [False] * n
        self.pause_seconds: List[float] = [0.0] * n
        # Per-fault-window effective state (mode + capacity per link).
        self.modes: List[str] = [MODE_NORMAL] * n
        self.eff_caps: List[float] = list(self.base_caps)

    def _intern(self, topology, name: str) -> None:
        if name not in self.index:
            link = topology.link_by_name(name)
            self.index[name] = len(self.names)
            self.names.append(name)
            self.links.append(link)

    def base_capacities(self) -> Dict[str, float]:
        """Link name -> base capacity, for the fault-window segmentation."""
        return dict(zip(self.names, self.base_caps))

    def apply_window(self, modes: Dict[str, Tuple[str, float]]) -> None:
        """Point every link at one fault window's mode and capacity."""
        for index, name in enumerate(self.names):
            mode, capacity = modes.get(
                name, (MODE_NORMAL, self.base_caps[index])
            )
            self.modes[index] = mode
            self.eff_caps[index] = capacity
            if mode != MODE_FREEZE:
                self.queues[index].capacity = capacity

    def restore(self) -> None:
        """Reset every link to its base capacity and normal mode."""
        for index, capacity in enumerate(self.base_caps):
            self.modes[index] = MODE_NORMAL
            self.eff_caps[index] = capacity
            self.queues[index].capacity = capacity

    def all_normal(self, modes: Dict[str, Tuple[str, float]]) -> bool:
        """Whether a window leaves every link in ``MODE_NORMAL``."""
        for mode, _capacity in modes.values():
            if mode != MODE_NORMAL:
                return False
        return True


class _LinkSampleBuffer:
    """Sample rows ``(time, per-sender rates, per-link occupancies)``.

    The multi-link sibling of :class:`repro.cc.dcqcn._SampleBuffer`:
    same flush contract (``flush(result, names, telemetry)``), but each
    row carries the whole occupancy vector and the flush materializes
    one queue series per link plus the cross-link elementwise maximum as
    the headline ``queue_series`` (the most congested hop at each
    sample, mirroring what the senders react to).
    """

    def __init__(self, link_names: Sequence[str]) -> None:
        self.link_names = list(link_names)
        self.rows: List[tuple] = []

    def snapshot(self, time: float, senders, fabric: LinkFabric) -> None:
        """Capture one sample row from live sender objects."""
        self.rows.append((
            time,
            [0.0 if sender.done else sender.rate for sender in senders],
            [queue.occupancy for queue in fabric.queues],
        ))

    def flush(self, result, names, telemetry) -> None:
        """Materialize the buffered rows into ``result``."""
        times = [row[0] for row in self.rows]
        for column, name in enumerate(names):
            result.rate_series[name] = TimeSeries.from_arrays(
                name, times, [row[1][column] for row in self.rows]
            )
        occ_columns = []
        for column, link_name in enumerate(self.link_names):
            values = [row[2][column] for row in self.rows]
            occ_columns.append(values)
            result.link_queue_series[link_name] = TimeSeries.from_arrays(
                f"queue:{link_name}", times, values
            )
        worst = [
            max(row[2]) for row in self.rows
        ]
        result.queue_series = TimeSeries.from_arrays("queue", times, worst)
        if telemetry.enabled:
            for time, rates, _occs in self.rows:
                for name, rate in zip(names, rates):
                    telemetry.event(
                        KIND_CC_RATE, t=time, sender=name, rate=rate
                    )


def build_fabric(sim) -> LinkFabric:
    """Resolve a simulator's routes against its topology into a fabric."""
    extra = () if sim.faults is None else tuple(sim.faults.link_names())
    return LinkFabric(sim.topology, sim.routes, extra_links=extra)


# ---------------------------------------------------------------------------
# Scalar reference
# ---------------------------------------------------------------------------

def run_scalar_fabric(sim, duration: float):
    """The dt-by-dt multi-link reference loop; defines the semantics.

    Per tick, in order: (1) per-link PFC hysteresis on normal-mode
    links; (2) per-link marking probability; (3) senders in insertion
    order — a sender whose route crosses any blocked link (paused,
    failed or storming) is skipped entirely, otherwise it steps under
    the maximum marking probability along its route and its bytes land
    on every route link; (4) per-link queue update — failed links hold,
    paused/storming links accrue pause time and drain, normal links
    integrate their arrivals.
    """
    from .dcqcn import DcqcnResult

    fabric = sim.fabric
    dt = sim.dt
    steps = int(round(duration / dt))
    samples_every = max(1, int(round(sim.sample_interval / dt)))
    samples = _LinkSampleBuffer(fabric.names)
    result = DcqcnResult(duration=duration)
    marker = sim.marker
    queues = fabric.queues
    modes = fabric.modes
    routes = fabric.routes
    paused = fabric.paused
    pause_seconds = fabric.pause_seconds
    n_links = len(queues)
    has_pfc = sim.pfc_pause_threshold is not None
    pause_threshold = sim.pfc_pause_threshold
    resume_threshold = sim.pfc_resume_threshold
    blocked = [False] * n_links
    p_link = [0.0] * n_links
    arrivals = [0.0] * n_links
    for window in link_capacity_windows(
        sim.faults, steps, dt, fabric.base_capacities()
    ):
        fabric.apply_window(window.modes)
        for step_index in range(window.start, window.end):
            now = step_index * dt
            for link in range(n_links):
                if modes[link] == MODE_NORMAL:
                    occupancy = queues[link].occupancy
                    if has_pfc:
                        if not paused[link] and occupancy >= pause_threshold:
                            paused[link] = True
                        elif paused[link] and occupancy <= resume_threshold:
                            paused[link] = False
                    blocked[link] = paused[link]
                    p_link[link] = marker.marking_probability(occupancy)
                else:
                    blocked[link] = True
                arrivals[link] = 0.0
            for slot, sender in enumerate(sim.senders):
                route = routes[slot]
                skip = False
                for link in route:
                    if blocked[link]:
                        skip = True
                        break
                if skip:
                    continue
                p_mark = 0.0
                for link in route:
                    if p_link[link] > p_mark:
                        p_mark = p_link[link]
                sent = sender.step(now, dt, p_mark)
                for link in route:
                    arrivals[link] += sent
            for link in range(n_links):
                mode = modes[link]
                if mode == MODE_FREEZE:
                    continue
                if mode == MODE_STORM or paused[link]:
                    pause_seconds[link] += dt
                    sim.pfc_pause_seconds += dt
                queues[link].step(
                    arrivals[link] / dt if dt > 0 else 0.0, dt
                )
            if (step_index + 1) % samples_every == 0:
                samples.snapshot((step_index + 1) * dt, sim.senders, fabric)
    fabric.restore()
    samples.flush(result, [s.name for s in sim.senders], sim.telemetry)
    if sim.telemetry.enabled:
        sim.telemetry.counter("cc.steps").inc(steps)
        cnp_counter = sim.telemetry.counter("cc.cnps")
        for sender in sim.senders:
            cnp_counter.inc(getattr(sender, "cnps_received", 0))
    from ..core.lifecycle import OnOffSource

    result.timelines = {
        sender.name: sender.timeline
        for sender in sim.senders
        if isinstance(sender, OnOffSource)
    }
    return result


# ---------------------------------------------------------------------------
# Vector engine
# ---------------------------------------------------------------------------

class LinkSenderBank(SenderBank):
    """Structure-of-arrays engine over a links x senders incidence.

    Inherits the per-sender machinery unchanged — slot layout, CNP-free
    span planning (:meth:`SenderBank._plan_sender` and the
    :class:`~repro.cc.sender_bank.TimerCache`), exact state write-back
    (:meth:`SenderBank._commit_sender`), activation/completion
    bookkeeping and the chunked-RNG write-back in
    :meth:`SenderBank._finish` — and replaces everything that touches
    *the* queue with per-link folds driven by the fabric's incidence
    lists (ascending slot order per link, matching the reference loop's
    accumulation order bit-for-bit).
    """

    @classmethod
    def build(cls, sim) -> Optional["LinkSenderBank"]:
        bank = super().build(sim)
        if bank is None:
            return None
        fabric = sim.fabric
        bank.fabric = fabric
        # Fabric queues are plain infinite FluidQueues by construction.
        bank._inline_queue = True
        bank._link_slots = [[] for _ in fabric.names]
        for slot, route in enumerate(fabric.routes):
            for link in route:
                bank._link_slots[link].append(slot)
        return bank

    def run(self, duration: float):
        sim = self.sim
        dt = sim.dt
        steps = int(round(duration / dt))
        samples_every = max(1, int(round(sim.sample_interval / dt)))
        fabric = self.fabric
        samples = _LinkSampleBuffer(fabric.names)
        for window in link_capacity_windows(
            sim.faults, steps, dt, fabric.base_capacities()
        ):
            fabric.apply_window(window.modes)
            if fabric.all_normal(window.modes):
                self._run_span(
                    window.start, window.end, samples_every, samples
                )
            else:
                # Faulted windows run per-tick: blocking is per-route,
                # so span planning would be invalid anyway, and fault
                # windows are short relative to the run.
                i = window.start
                while i < window.end:
                    i = self._tick_run(
                        i, window.end, samples_every, samples,
                        fast_exit=False,
                    )
        fabric.restore()
        return self._finish(duration, steps, samples)

    def _update_pfc_all(self) -> None:
        """Idempotent start-of-tick PFC hysteresis on every normal link."""
        sim = self.sim
        pause_threshold = sim.pfc_pause_threshold
        resume_threshold = sim.pfc_resume_threshold
        fabric = self.fabric
        paused = fabric.paused
        modes = fabric.modes
        for link, queue in enumerate(fabric.queues):
            if modes[link] != MODE_NORMAL:
                continue
            occupancy = queue.occupancy
            if not paused[link] and occupancy >= pause_threshold:
                paused[link] = True
            elif paused[link] and occupancy <= resume_threshold:
                paused[link] = False

    def _run_span(
        self, start: int, steps: int, samples_every: int, samples
    ) -> None:
        """The all-links-normal engine loop over ticks ``[start, steps)``."""
        i = start
        retry_at = start
        retry_gap = TICK_RETRY
        while i < steps:
            if self._has_pfc:
                self._update_pfc_all()
                if True in self.fabric.paused:
                    # Some routes are blocked: the per-tick kernel owns
                    # pause accrual and resume; probe again shortly.
                    end = i + 4 * TICK_RETRY
                    if end > steps:
                        end = steps
                    i = self._tick_run(
                        i, end, samples_every, samples, fast_exit=False
                    )
                    retry_gap = TICK_RETRY
                    continue
            if self._n_active == 0:
                nxt = self._next_activation()
                if nxt is None or nxt > i:
                    end = steps if nxt is None else min(nxt, steps)
                    self._bulk_idle(i, end, samples_every, samples)
                    i = end
                    retry_gap = TICK_RETRY
                    continue
            elif i >= retry_at:
                advanced = self._try_span(i, steps, samples_every, samples)
                if advanced:
                    i += advanced
                    retry_gap = TICK_RETRY
                    continue
                retry_at = i + retry_gap
                if retry_gap < 8 * TICK_RETRY:
                    retry_gap *= 2
            end = retry_at if i < retry_at else i + 1
            if end > steps:
                end = steps
            i = self._tick_run(i, end, samples_every, samples)

    def _bulk_idle(
        self, i: int, end: int, samples_every: int, samples
    ) -> None:
        """Fast-forward ticks where every source computes or is done.

        No link is PFC-paused on entry (checked by the caller after the
        hysteresis update) and occupancies only fall while draining, so
        no pause can begin mid-stretch and every queue's trajectory is
        the closed-form drain fold.
        """
        sim = self.sim
        dt = sim.dt
        span = end - i
        if span <= 0:
            return
        fabric = self.fabric
        wanted = sample_ticks(i, end, samples_every)
        need_rows = len(wanted) > 0
        trajs: List[Optional[np.ndarray]] = []
        for link, queue in enumerate(fabric.queues):
            occ0 = queue.occupancy
            delta = (0.0 / dt - fabric.eff_caps[link]) * dt
            if occ0 > 0.0 or need_rows:
                traj = clamp_drain(fold_traj(occ0, delta, span))
                queue.occupancy = float(traj[span])
                trajs.append(traj)
            else:
                trajs.append(None)
        if need_rows:
            zeros = [0.0] * len(self.objs)
            for j in wanted:
                samples.rows.append((
                    (j + 1) * dt,
                    list(zeros),
                    [float(traj[j - i + 1]) for traj in trajs],
                ))

    def _try_span(
        self, i: int, steps: int, samples_every: int, samples
    ) -> int:
        """Advance as many deterministic ticks as possible in one jump.

        The single-link logic generalized over the incidence: per-sender
        plans are unchanged; the queue fold, clamp episode, kmin cut and
        PFC cut run per link and the committed span is the minimum cut
        across all of them. Returns 0 when no profitable span exists.
        """
        if not self._red_marker:
            return 0
        sim = self.sim
        dt = sim.dt
        kmin = self._kmin
        fabric = self.fabric
        active = self.active
        n = len(self.objs)
        n_links = len(fabric.queues)
        link_slots = self._link_slots
        occ0s = [queue.occupancy for queue in fabric.queues]
        # Earliest tick offset at which any active sender becomes
        # CNP-eligible (identical to the single-link computation).
        elig = steps
        for k in range(n):
            if not active[k]:
                continue
            nc = self.next_cnp[k]
            m = 0
            if i * dt < nc:
                est = int(math.ceil(nc / dt)) - i - (SPAN_MARGIN + 1)
                m = est if est > 0 else 0
                while (i + m) * dt < nc:
                    m += 1
            if m < elig:
                elig = m
        if elig < MIN_SPAN:
            # Doomed screen, per link: a congested link that cannot
            # drain below kmin before an eligible tick kills the span.
            for link in range(n_links):
                occ0 = occ0s[link]
                if occ0 <= kmin:
                    continue
                arrival0 = 0.0
                for k in link_slots[link]:
                    if active[k]:
                        arrival0 += self.rate[k] * dt
                drain = fabric.eff_caps[link] * dt - arrival0
                if drain <= 0.0 or elig < int((occ0 - kmin) / drain):
                    return 0
        H = steps - i
        if H > MAX_HORIZON:
            H = MAX_HORIZON
        nxt = self._next_activation()
        if nxt is not None and nxt - i < H:
            H = nxt - i
        if H < MIN_SPAN:
            return 0
        # Trim the horizon to the earliest estimated cut across links.
        e_est = H
        for link in range(n_links):
            occ0 = occ0s[link]
            if occ0 > kmin:
                est_l = elig + 2 * SPAN_MARGIN
            else:
                arrival0 = 0.0
                for k in link_slots[link]:
                    if active[k]:
                        arrival0 += self.rate[k] * dt
                delta0 = arrival0 - fabric.eff_caps[link] * dt
                if delta0 > 0.0:
                    est_l = int((kmin - occ0) / delta0) + 1
                    if est_l < elig:
                        est_l = elig
                else:
                    est_l = H
            if est_l < e_est:
                e_est = est_l
        e_est += 4 * SPAN_MARGIN
        if MIN_SPAN <= e_est < H:
            H = e_est
        plans: List[Optional[object]] = [None] * n
        cap = H
        for k in range(n):
            if not active[k]:
                continue
            plan = self._plan_sender(k, H, dt)
            if plan is None:
                return 0
            plans[k] = plan
            if plan.cap < cap:
                cap = plan.cap
                if cap < MIN_SPAN:
                    return 0
        # Exact per-link queue trajectories: arrivals folded in slot
        # order, then the net-delta fold with its single clamp episode
        # (arrivals are nondecreasing between CNPs on every link).
        occs: List[np.ndarray] = []
        for link in range(n_links):
            acc = None
            for k in link_slots[link]:
                plan = plans[k]
                if plan is None:
                    continue
                if acc is None:
                    acc = plan.sent[:cap].copy()
                else:
                    acc += plan.sent[:cap]
            if acc is None:
                acc = np.zeros(cap)
            deltas = (acc / dt - fabric.eff_caps[link]) * dt
            occ = np.empty(cap + 1)
            occ[0] = occ0s[link]
            occ[1:] = deltas
            occ = occ.cumsum()
            if deltas[0] < 0.0:
                nonneg = np.nonzero(deltas >= 0.0)[0]
                jstar = int(nonneg[0]) if nonneg.size else cap
                below = np.nonzero(occ[1:jstar + 1] < 0.0)[0]
                if below.size:
                    kstar = 1 + int(below[0])
                    occ[kstar:jstar + 1] = 0.0
                    if jstar < cap:
                        tail = np.empty(cap - jstar + 1)
                        tail[0] = 0.0
                        tail[1:] = deltas[jstar:]
                        occ[jstar:] = tail.cumsum()
            occs.append(occ)
        e = cap
        for occ in occs:
            if elig < e:
                viol = np.nonzero(occ[elig:e] > kmin)[0]
                if viol.size:
                    e = elig + int(viol[0])
            if self._has_pfc and e > 1:
                hits = np.nonzero(occ[1:e] >= sim.pfc_pause_threshold)[0]
                if hits.size:
                    e = 1 + int(hits[0])
        if e < MIN_SPAN:
            return 0
        now_last = (i + e - 1) * dt
        for k in range(n):
            if plans[k] is not None:
                self._commit_sender(k, plans[k], e, dt, now_last)
        for link in range(n_links):
            fabric.queues[link].occupancy = float(occs[link][e])
        for j in sample_ticks(i, i + e, samples_every):
            u = j - i
            samples.rows.append((
                (j + 1) * dt,
                [
                    float(plans[k].rates[u + 1])
                    if plans[k] is not None
                    else 0.0
                    for k in range(n)
                ],
                [float(occs[link][u + 1]) for link in range(n_links)],
            ))
        return e

    def _tick_run(
        self, start: int, stop: int, samples_every: int, samples,
        fast_exit: bool = True,
    ) -> int:
        """Per-tick kernel mirroring :func:`run_scalar_fabric` exactly.

        ``fast_exit`` returns control early when the bank goes fully
        idle (normal windows only — faulted windows must keep stepping
        the queues and pause accounting)."""
        sim = self.sim
        dt = sim.dt
        fabric = self.fabric
        queues = fabric.queues
        modes = fabric.modes
        paused = fabric.paused
        pause_seconds = fabric.pause_seconds
        routes = fabric.routes
        n_links = len(queues)
        has_pfc = self._has_pfc
        pause_threshold = sim.pfc_pause_threshold
        resume_threshold = sim.pfc_resume_threshold
        red = self._red_marker
        kmin = self._kmin
        kmax = self._kmax
        pmax = self._pmax
        mspan = self._mspan
        marker = sim.marker
        n = len(self.objs)
        active = self.active
        rate = self.rate
        finite = self.finite
        is_job = self.is_job
        remaining = self.remaining
        bytes_sent = self.bytes_sent
        b_acc = self.b_acc
        t_acc = self.t_acc
        b_st = self.b_st
        t_st = self.t_st
        next_cnp = self.next_cnp
        next_decay = self.next_decay
        min_rate = self.min_rate
        line = self.line
        target = self.target
        objs = self.objs
        t_ph = self.t_ph
        byte_counter = self.byte_counter
        timer = self.timer
        mtu = self.mtu
        stream = self.stream
        one_minus_g = self.one_minus_g
        g = self.g
        alpha = self.alpha
        cnp_interval = self.cnp_interval
        alpha_timer = self.alpha_timer
        cnps = self.cnps
        idle_live = self._idle_live
        lifec = self.lifec
        blocked = [False] * n_links
        p_link = [0.0] * n_links
        arrivals = [0.0] * n_links
        i = start
        while i < stop:
            now = i * dt
            for link in range(n_links):
                if modes[link] == MODE_NORMAL:
                    occq = queues[link].occupancy
                    if has_pfc:
                        if not paused[link] and occq >= pause_threshold:
                            paused[link] = True
                        elif paused[link] and occq <= resume_threshold:
                            paused[link] = False
                    blocked[link] = paused[link]
                    if red:
                        if occq <= kmin:
                            p_link[link] = 0.0
                        elif occq >= kmax:
                            p_link[link] = 1.0
                        else:
                            p_link[link] = pmax * (occq - kmin) / mspan
                    else:
                        p_link[link] = marker.marking_probability(occq)
                else:
                    blocked[link] = True
                arrivals[link] = 0.0
            if idle_live:
                am = self._act_min
                if am < 0:
                    nxt = self._next_activation()
                    am = nxt if nxt is not None else (1 << 60)
                    self._act_min = am
                if i >= am:
                    for k in tuple(idle_live):
                        tick = self._act_tick[k]
                        if tick is None:
                            tick = activation_tick(objs[k]._deadline, dt)
                            self._act_tick[k] = tick
                        if i >= tick:
                            clear = True
                            for link in routes[k]:
                                if blocked[link]:
                                    clear = False
                                    break
                            # A blocked route defers activation exactly
                            # as the reference loop's skipped step().
                            if clear:
                                self._activate(k, now)
            for k in range(n):
                if not active[k]:
                    continue
                route = routes[k]
                skip = False
                for link in route:
                    if blocked[link]:
                        skip = True
                        break
                if skip:
                    continue
                p_mark = 0.0
                for link in route:
                    if p_link[link] > p_mark:
                        p_mark = p_link[link]
                r = rate[k]
                sent = r * dt
                fin = finite[k]
                if fin:
                    rem = remaining[k]
                    if rem < sent:
                        sent = rem
                    remaining[k] = rem - sent
                bytes_sent[k] += sent
                if p_mark > 0.0 and now >= next_cnp[k] and sent > 0.0:
                    packets = sent / mtu[k]
                    p_any = 1.0 - (1.0 - p_mark) ** packets
                    st = stream[k]
                    pos = st._pos
                    buf = st._buf
                    if pos >= len(buf):
                        if st._state0 is None:
                            st._state0 = st._rng.bit_generator.state
                        buf = st._rng.random(st._chunk).tolist()
                        st._buf = buf
                        pos = 0
                    st._pos = pos + 1
                    st._consumed += 1
                    if buf[pos] < p_any:
                        a = one_minus_g[k] * alpha[k] + g[k]
                        alpha[k] = a
                        target[k] = r
                        cut = r * (1.0 - a / 2.0)
                        floor = min_rate[k]
                        rate[k] = cut if cut > floor else floor
                        b_acc[k] = 0.0
                        t_acc[k] = 0.0
                        b_st[k] = 0
                        t_st[k] = 0
                        next_cnp[k] = now + cnp_interval[k]
                        next_decay[k] = now + alpha_timer[k]
                        cnps[k] += 1
                        t_ph[k] = 0
                ba = b_acc[k] + sent
                limit = byte_counter[k]
                if ba >= limit:
                    while ba >= limit:
                        ba -= limit
                        b_st[k] += 1
                        self._increase_event(k)
                b_acc[k] = ba
                ta = t_acc[k] + dt
                limit = timer[k]
                if ta >= limit:
                    while ta >= limit:
                        ta -= limit
                        t_st[k] += 1
                        self._increase_event(k)
                t_acc[k] = ta
                t_ph[k] += 1
                nd = next_decay[k]
                if now >= nd:
                    a = alpha[k]
                    shrink = one_minus_g[k]
                    period = alpha_timer[k]
                    while now >= nd:
                        a *= shrink
                        nd += period
                    alpha[k] = a
                    next_decay[k] = nd
                r = rate[k]
                floor = min_rate[k]
                ln = line[k]
                if r < floor:
                    rate[k] = floor
                elif r > ln:
                    rate[k] = ln
                if target[k] > ln:
                    target[k] = ln
                for link in route:
                    arrivals[link] += sent
                if is_job[k]:
                    lifec[k].comm_sent += sent
                    if remaining[k] <= 0.0:
                        self._complete(k, now, dt)
                elif fin and remaining[k] <= 0.0:
                    active[k] = False
                    self._n_active -= 1
            for link in range(n_links):
                mode = modes[link]
                if mode == MODE_FREEZE:
                    continue
                if mode == MODE_STORM or paused[link]:
                    pause_seconds[link] += dt
                    sim.pfc_pause_seconds += dt
                queue = queues[link]
                net = (
                    arrivals[link] / dt if dt > 0 else 0.0
                ) - queue.capacity
                occq = queue.occupancy + net * dt
                if net < 0.0 and occq <= 0.0:
                    occq = 0.0
                queue.occupancy = occq
            i += 1
            if i % samples_every == 0:
                samples.rows.append((
                    i * dt,
                    [rate[k] if active[k] else 0.0 for k in range(n)],
                    [queue.occupancy for queue in queues],
                ))
            if fast_exit and self._n_active == 0:
                return i
        return i
