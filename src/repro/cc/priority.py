"""Per-job strict priorities (§4, direction ii).

With unique priorities per job on a link, the switch serves the higher
class first; during an overlap the high-priority job takes the whole link,
which slides the lower-priority job's phase out of the way exactly like
extreme unfairness — without any congestion-control change. The paper notes
the priority values can be arbitrary as long as jobs sharing a link are
compatible and priorities are unique.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from ..errors import ConfigError
from ..net.flows import Flow
from .base import SharePolicy


class PrioritySharing(SharePolicy):
    """Strict-priority bandwidth sharing with per-job classes."""

    name = "priority"

    def __init__(self, priorities: Mapping[str, int], default: int = 0):
        self._priorities: Dict[str, int] = dict(priorities)
        self._default = int(default)

    @classmethod
    def unique_for(cls, job_ids: Sequence[str]) -> "PrioritySharing":
        """Assign each job a distinct priority, first job highest."""
        if len(set(job_ids)) != len(job_ids):
            raise ConfigError("job ids must be unique")
        n = len(job_ids)
        return cls({job_id: n - rank for rank, job_id in enumerate(job_ids)})

    def weight_of(self, flow: Flow) -> float:
        # Within a priority class (only possible for jobs that were not
        # assigned a class) the split is plain fair sharing.
        return 1.0

    def priority_of(self, flow: Flow) -> int:
        return self._priorities.get(flow.job_id, self._default)

    def priority_for_job(self, job_id: str) -> int:
        """The configured priority of ``job_id`` (default if unset)."""
        return self._priorities.get(job_id, self._default)

    @property
    def priorities(self) -> Dict[str, int]:
        """The configured per-job priorities (copy)."""
        return dict(self._priorities)

    @property
    def default_priority(self) -> int:
        """The priority applied to jobs without an explicit entry."""
        return self._default
