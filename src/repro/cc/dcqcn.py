"""Fine-grained DCQCN fluid model.

Implements the DCQCN sender state machine (Zhu et al., SIGCOMM '15) over a
fluid bottleneck queue with RED/ECN marking:

* **decrease** — the receiver returns at most one CNP per 50 µs window when
  it sees marked traffic; on CNP the sender updates
  ``alpha = (1-g)*alpha + g``, remembers ``R_T = R_C`` and cuts
  ``R_C *= 1 - alpha/2``.
* **increase** — two counters drive increase events: a *byte counter*
  (every ``B`` bytes) and a *timer* (every ``T`` seconds — **the paper's
  unfairness knob**). The first ``F`` events of both counters perform fast
  recovery (``R_C <- (R_T + R_C)/2``); once one counter passes ``F`` the
  sender adds ``R_AI`` to ``R_T`` (additive increase); once both pass ``F``
  it adds ``R_HAI`` (hyper increase).
* **alpha decay** — without CNPs for 55 µs, ``alpha *= 1 - g`` periodically.

A smaller ``T`` means more frequent increase events, so the sender recovers
from each cut faster and holds a larger share of the bottleneck in steady
state. The paper exploits exactly this: setting ``T`` to 100 µs on one
job's servers versus the default 125 µs yields a ~30 vs 15 Gbps split on
the shared link (Figure 1c). :func:`calibrate_timer_weights` measures the
steady-state share each timer value achieves, which the phase-level
simulator uses as static weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.lifecycle import JobLifecycle, OnOffSource
from ..core.timeline import JobTimeline
from ..errors import ConfigError, SimulationError
from ..faults.events import InjectionSchedule  # simlint: disable=ARCH001 - CC tiers execute fault warps inline for bit-equivalence; shared types pending a layer move
from ..faults.runtime import (  # simlint: disable=ARCH001 - same inversion as above
    MODE_FREEZE,
    MODE_NORMAL,
    build_warp,
    capacity_windows,
    emit_fault_events,
    single_link,
)
from ..sim.trace import TimeSeries
from ..switches.ecn import RedEcnMarker
from ..switches.queues import FluidQueue
from ..telemetry import session as _telemetry_session
from ..telemetry.trace import KIND_CC_RATE
from ..units import gbps, mbps

if TYPE_CHECKING:
    from ..net.topology import Topology

#: Default rate-increase timer in the paper's testbed.
DEFAULT_TIMER = 125e-6
#: The more aggressive timer used for J1 in the paper's Figure 1c.
AGGRESSIVE_TIMER = 100e-6


@dataclass(frozen=True)
class DcqcnParams:
    """DCQCN sender parameters (defaults scaled to a 50 Gbps NIC).

    Attributes:
        line_rate: NIC line rate, bytes/s.
        timer: Rate-increase timer period ``T`` in seconds — the knob the
            paper skews to create unfairness.
        byte_counter: Bytes between byte-counter increase events (``B``).
        rai: Additive-increase step, bytes/s.
        rhai: Hyper-increase step, bytes/s.
        g: EWMA gain for alpha.
        fast_recovery_rounds: ``F``; increase events in fast recovery.
        cnp_interval: Minimum spacing between CNPs (receiver side).
        alpha_timer: Period of alpha decay when no CNPs arrive.
        min_rate: Floor on the sending rate, bytes/s.
        mtu: Packet size used to convert fluid to packet counts for marking.
    """

    line_rate: float = gbps(50)
    timer: float = DEFAULT_TIMER
    byte_counter: float = 10e6
    rai: float = mbps(400)
    rhai: float = mbps(4000)
    g: float = 1.0 / 256.0
    fast_recovery_rounds: int = 5
    cnp_interval: float = 50e-6
    alpha_timer: float = 55e-6
    min_rate: float = mbps(100)
    mtu: float = 4096.0

    def __post_init__(self) -> None:
        if self.line_rate <= 0 or self.timer <= 0 or self.byte_counter <= 0:
            raise ConfigError("line_rate, timer and byte_counter must be > 0")
        if not 0 < self.g < 1:
            raise ConfigError(f"g must be in (0, 1), got {self.g}")
        if self.min_rate <= 0 or self.min_rate > self.line_rate:
            raise ConfigError("min_rate must be in (0, line_rate]")

    def with_timer(self, timer: float) -> "DcqcnParams":
        """A copy of these parameters with a different increase timer."""
        return replace(self, timer=timer)


class DcqcnSender:
    """One DCQCN-controlled flow's rate state machine."""

    def __init__(
        self,
        name: str,
        params: DcqcnParams,
        rng: np.random.Generator,
        data_bytes: Optional[float] = None,
    ) -> None:
        self.name = name
        self.params = params
        self._rng = rng
        #: Remaining bytes to send; ``None`` means a long-lived flow.
        self.remaining = data_bytes
        self.rate = params.line_rate  # DCQCN starts at line rate.
        self.target_rate = params.line_rate
        self.alpha = 1.0
        self.bytes_sent = 0.0
        self.cnps_received = 0
        self._byte_accum = 0.0
        self._timer_accum = 0.0
        self._byte_stage = 0
        self._timer_stage = 0
        self._next_cnp_time = 0.0
        self._next_alpha_decay = params.alpha_timer

    @property
    def done(self) -> bool:
        """Whether a finite flow has sent all its data."""
        return self.remaining is not None and self.remaining <= 0

    def step(self, now: float, dt: float, marking_probability: float) -> float:
        """Advance the sender by ``dt``; returns bytes injected this step."""
        if self.done:
            return 0.0
        sent = self.rate * dt
        if self.remaining is not None:
            sent = min(sent, self.remaining)
            self.remaining -= sent
        self.bytes_sent += sent

        self._maybe_receive_cnp(now, dt, sent, marking_probability)
        self._run_increase_counters(sent, dt)
        self._decay_alpha(now)
        self.rate = min(max(self.rate, self.params.min_rate), self.params.line_rate)
        self.target_rate = min(self.target_rate, self.params.line_rate)
        return sent

    # ------------------------------------------------------------------
    # State machine pieces
    # ------------------------------------------------------------------

    def _maybe_receive_cnp(
        self, now: float, dt: float, sent: float, marking_probability: float
    ) -> None:
        if marking_probability <= 0 or now < self._next_cnp_time:
            return
        packets = sent / self.params.mtu
        if packets <= 0:
            return
        p_any_marked = 1.0 - (1.0 - marking_probability) ** packets
        if self._rng.random() >= p_any_marked:
            return
        # CNP delivered: cut rate, refresh alpha, reset increase state.
        p = self.params
        self.cnps_received += 1
        self.alpha = (1.0 - p.g) * self.alpha + p.g
        self.target_rate = self.rate
        self.rate = max(self.rate * (1.0 - self.alpha / 2.0), p.min_rate)
        self._byte_accum = 0.0
        self._timer_accum = 0.0
        self._byte_stage = 0
        self._timer_stage = 0
        self._next_cnp_time = now + p.cnp_interval
        self._next_alpha_decay = now + p.alpha_timer

    def _run_increase_counters(self, sent: float, dt: float) -> None:
        p = self.params
        self._byte_accum += sent
        while self._byte_accum >= p.byte_counter:
            self._byte_accum -= p.byte_counter
            self._byte_stage += 1
            self._increase_event()
        self._timer_accum += dt
        while self._timer_accum >= p.timer:
            self._timer_accum -= p.timer
            self._timer_stage += 1
            self._increase_event()

    def _increase_event(self) -> None:
        p = self.params
        in_fast_recovery = (
            self._byte_stage < p.fast_recovery_rounds
            and self._timer_stage < p.fast_recovery_rounds
        )
        past_both = (
            self._byte_stage >= p.fast_recovery_rounds
            and self._timer_stage >= p.fast_recovery_rounds
        )
        if in_fast_recovery:
            pass  # R_T unchanged; R_C closes half the gap below.
        elif past_both:
            self.target_rate += p.rhai
        else:
            self.target_rate += p.rai
        self.target_rate = min(self.target_rate, p.line_rate)
        self.rate = (self.target_rate + self.rate) / 2.0

    def _decay_alpha(self, now: float) -> None:
        while now >= self._next_alpha_decay:
            self.alpha *= 1.0 - self.params.g
            self._next_alpha_decay += self.params.alpha_timer


class OnOffDcqcnJob(OnOffSource):
    """A training job's on-off traffic driven by the DCQCN state machine.

    Alternates compute phases (no traffic) with communication phases that
    inject ``comm_bytes`` under a fresh DCQCN sender (RDMA flows start at
    line rate). The on-off clockwork is the shared
    :class:`repro.core.lifecycle.JobLifecycle`; this class only supplies
    the DCQCN sender per burst. Plugs into :class:`DcqcnFluidSimulator`
    alongside plain senders, enabling a *cross-fidelity* check: the
    sliding effect the phase-level simulator predicts must also emerge
    from the microsecond-scale rate dynamics.
    """

    def __init__(
        self,
        name: str,
        params: DcqcnParams,
        rng: np.random.Generator,
        compute_time: float,
        comm_bytes: float,
        start_offset: float = 0.0,
        warp=None,
    ) -> None:
        self.params = params
        self._rng = rng
        self.compute_time = compute_time
        self.comm_bytes = comm_bytes
        lifecycle = JobLifecycle(
            job_id=name,
            segments=((compute_time, comm_bytes),),
            start_offset=start_offset,
            warp=warp,
        )
        super().__init__(name, lifecycle, self._make_sender)

    def _make_sender(self, data_bytes: float) -> DcqcnSender:
        # Communication phase begins: fresh DCQCN state at line rate.
        return DcqcnSender(
            self.name, self.params, self._rng, data_bytes=data_bytes
        )


class _SampleBuffer:
    """Buffered sample rows flushed into a result after the run.

    The fixed-step loop appends ``(time, per-sender rates, queue)`` rows
    and materializes the :class:`TimeSeries` objects (and any telemetry
    events) once at the end, so disabled-telemetry runs pay no
    per-sample branch in the inner loop.
    """

    def __init__(self) -> None:
        self.rows: List[tuple] = []

    def snapshot(self, time: float, senders, occupancy: float) -> None:
        """Capture one sample row from live sender objects."""
        self.rows.append((
            time,
            [0.0 if sender.done else sender.rate for sender in senders],
            occupancy,
        ))

    def flush(self, result: "DcqcnResult", names, telemetry) -> None:
        """Materialize the buffered rows into ``result``."""
        times = [row[0] for row in self.rows]
        for column, name in enumerate(names):
            result.rate_series[name] = TimeSeries.from_arrays(
                name, times, [row[1][column] for row in self.rows]
            )
        result.queue_series = TimeSeries.from_arrays(
            "queue", times, [row[2] for row in self.rows]
        )
        if telemetry.enabled:
            for time, rates, _ in self.rows:
                for name, rate in zip(names, rates):
                    telemetry.event(
                        KIND_CC_RATE, t=time, sender=name, rate=rate
                    )


@dataclass
class DcqcnResult:
    """Output of a fine-grained DCQCN run.

    Attributes:
        rate_series: Per-sender sending-rate samples (bytes/s).
        queue_series: Bottleneck queue occupancy samples (bytes). On a
            multi-link fabric this is the elementwise maximum across
            links — the most congested hop at each sample.
        duration: Simulated seconds.
        timelines: Canonical iteration timelines of every on-off job
            (plain long-lived senders have none).
        link_queue_series: Per-link occupancy samples, keyed by link
            name (empty on single-bottleneck runs).
    """

    rate_series: Dict[str, TimeSeries] = field(default_factory=dict)
    queue_series: TimeSeries = field(default_factory=lambda: TimeSeries("queue"))
    duration: float = 0.0
    timelines: Dict[str, JobTimeline] = field(default_factory=dict)
    link_queue_series: Dict[str, TimeSeries] = field(default_factory=dict)

    def timeline(self, name: str) -> JobTimeline:
        """One on-off job's canonical timeline."""
        if name not in self.timelines:
            raise SimulationError(f"no timeline recorded for {name!r}")
        return self.timelines[name]

    def mean_iteration_time(self, name: str, skip: int = 0) -> float:
        """Mean iteration time of one on-off job, seconds."""
        return self.timeline(name).mean_iteration_time(skip)

    def median_iteration_time(self, name: str, skip: int = 0) -> float:
        """Median iteration time of one on-off job, seconds."""
        return self.timeline(name).median_iteration_time(skip)

    def mean_rate(self, name: str, start: float = 0.0, end: Optional[float] = None) -> float:
        """Time-average sending rate of ``name`` over ``[start, end]``."""
        series = self.rate_series[name]
        times = series.times
        values = series.values
        if end is None:
            end = self.duration
        mask = (times >= start) & (times <= end)
        if not mask.any():
            raise SimulationError(f"no samples for {name} in [{start}, {end}]")
        return float(values[mask].mean())


class DcqcnFluidSimulator:
    """Fixed-step fluid simulation of DCQCN senders at one bottleneck.

    Optionally models **PFC** (priority flow control), RDMA's lossless
    backstop: when the queue exceeds ``pfc_pause_threshold`` the switch
    pauses all upstream senders; transmission resumes once it drains
    below ``pfc_resume_threshold``. DCQCN's whole purpose is to keep the
    queue short enough that PFC rarely fires; the ``pfc_pause_seconds``
    counter measures how well it succeeds.

    Passing ``topology`` switches the simulator to **multi-link fabric
    mode**: every sender must then carry a ``route`` — a tuple of link
    names resolved against the topology (e.g. from
    :meth:`repro.net.topology.Topology.fat_tree`) — each link runs its
    own queue, marker and PFC state, and a sender reacts to the most
    congested hop on its route (see :mod:`repro.cc.link_engine`). Fault
    schedules may then target any named fabric link instead of just the
    single bottleneck.
    """

    def __init__(
        self,
        capacity: float = gbps(50),
        marker: Optional[RedEcnMarker] = None,
        dt: float = 5e-6,
        sample_interval: float = 250e-6,
        pfc_pause_threshold: Optional[float] = None,
        pfc_resume_threshold: Optional[float] = None,
        telemetry: Optional["_telemetry_session.Telemetry"] = None,
        engine: str = "vector",
        faults: Optional[InjectionSchedule] = None,
        topology: Optional["Topology"] = None,
    ) -> None:
        if dt <= 0 or sample_interval < dt:
            raise ConfigError("need dt > 0 and sample_interval >= dt")
        if engine not in ("scalar", "vector"):
            raise ConfigError(
                f"engine must be 'scalar' or 'vector', got {engine!r}"
            )
        self.engine = engine
        self.faults = faults
        self._fault_warps_installed = False
        self.topology = topology
        self.routes: List[Tuple[str, ...]] = []
        self.fabric = None
        if topology is None:
            single_link(faults)  # reject multi-link schedules up front
        self.telemetry = _telemetry_session.resolve(telemetry)
        self.capacity = capacity
        self.marker = marker if marker is not None else RedEcnMarker()
        self.dt = dt
        self.sample_interval = sample_interval
        self.queue = FluidQueue(capacity)
        self.senders: List[DcqcnSender] = []
        if pfc_pause_threshold is not None:
            if pfc_pause_threshold <= 0:
                raise ConfigError("pfc_pause_threshold must be > 0")
            if pfc_resume_threshold is None:
                pfc_resume_threshold = pfc_pause_threshold / 2
            if not 0 < pfc_resume_threshold < pfc_pause_threshold:
                raise ConfigError(
                    "need 0 < pfc_resume_threshold < pfc_pause_threshold"
                )
        self.pfc_pause_threshold = pfc_pause_threshold
        self.pfc_resume_threshold = pfc_resume_threshold
        self.pfc_paused = False
        self.pfc_pause_seconds = 0.0

    def add_sender(
        self,
        name: str,
        params: DcqcnParams,
        rng: np.random.Generator,
        data_bytes: Optional[float] = None,
        route: Sequence[str] = (),
    ) -> DcqcnSender:
        """Register a sender whose traffic crosses the bottleneck.

        In fabric mode ``route`` names the links the sender's traffic
        traverses, in order, resolved against the simulator's topology.
        """
        sender = DcqcnSender(name, params, rng, data_bytes)
        self._register(sender, route)
        return sender

    def add_source(self, source, route: Sequence[str] = ()) -> None:
        """Register any traffic source implementing the sender protocol
        (``name``, ``rate``, ``done``, ``step(now, dt, p)``) — e.g. an
        :class:`OnOffDcqcnJob`. In fabric mode ``route`` names the links
        the source's traffic traverses."""
        self._register(source, route)

    def _register(self, source, route: Sequence[str]) -> None:
        route = tuple(route)
        if self.topology is None:
            if route:
                raise ConfigError(
                    f"sender {source.name!r} carries a route but the "
                    "simulator has no topology; pass topology= to "
                    "DcqcnFluidSimulator to enable multi-link routes"
                )
        else:
            if not route:
                raise ConfigError(
                    f"sender {source.name!r} needs a route (tuple of "
                    "link names) on a topology-backed simulator"
                )
            if len(set(route)) != len(route):
                raise ConfigError(
                    f"sender {source.name!r} route visits a link twice: "
                    f"{route}"
                )
            for link_name in route:
                self.topology.link_by_name(link_name)  # raises if unknown
        self.senders.append(source)
        self.routes.append(route)

    def run(self, duration: float) -> DcqcnResult:
        """Simulate ``duration`` seconds and return sampled traces.

        With ``engine="vector"`` (the default) the run goes through the
        :class:`repro.cc.sender_bank.SenderBank` fast path — batched
        sender updates, deterministic span advancement and idle/PFC
        fast-forward — which produces bit-identical traces. Source types
        the bank does not recognize fall back to the scalar reference
        loop automatically; ``engine="scalar"`` forces it.
        """
        if not self.senders:
            raise SimulationError("add at least one sender before run()")
        self._install_fault_warps()
        emit_fault_events(self.telemetry, self.faults)
        if self.topology is not None:
            from .link_engine import (
                LinkSenderBank,
                build_fabric,
                run_scalar_fabric,
            )

            if self.fabric is None:
                self.fabric = build_fabric(self)
            if self.engine == "vector":
                bank = LinkSenderBank.build(self)
                if bank is not None:
                    return bank.run(duration)
            return run_scalar_fabric(self, duration)
        if self.engine == "vector":
            from .sender_bank import SenderBank

            bank = SenderBank.build(self)
            if bank is not None:
                return bank.run(duration)
        return self._run_scalar(duration)

    def _install_fault_warps(self) -> None:
        """Attach per-job warps (stragglers, skew, latency spikes) once.

        On the single bottleneck the schedule's one link (if any)
        applies to every on-off job; on a fabric each job sees exactly
        the links its route traverses.
        """
        if self.faults is None or self._fault_warps_installed:
            return
        self._fault_warps_installed = True
        if self.topology is None:
            link = single_link(self.faults)
            default_links = (link,) if link is not None else ()
            routes = [default_links] * len(self.senders)
        else:
            routes = self.routes
        for sender, links in zip(self.senders, routes):
            if isinstance(sender, OnOffSource):
                warp = build_warp(self.faults, sender.name, links)
                if warp is not None:
                    sender.install_warp(warp)

    def _set_capacity(self, capacity: float) -> None:
        """Point both capacity views at the window's effective value."""
        self.capacity = capacity
        self.queue.capacity = capacity

    def _run_scalar(self, duration: float) -> DcqcnResult:
        """The dt-by-dt reference loop (``engine="scalar"``)."""
        result = DcqcnResult(duration=duration)
        steps = int(round(duration / self.dt))
        samples_every = max(1, int(round(self.sample_interval / self.dt)))
        samples = _SampleBuffer()
        base_capacity = self.capacity
        for window in capacity_windows(
            self.faults, steps, self.dt, base_capacity
        ):
            if window.mode == MODE_NORMAL:
                self._set_capacity(window.capacity)
                self._scalar_span(
                    window.start, window.end, samples_every, samples
                )
            elif window.mode == MODE_FREEZE:
                # Link failed: nothing behind it moves — senders, queue
                # and activation clockwork all hold their state.
                self._scalar_freeze(
                    window.start, window.end, samples_every, samples
                )
            else:
                # PFC storm: forced pause-step semantics regardless of
                # queue thresholds; the queue drains at base capacity.
                self._set_capacity(window.capacity)
                self._scalar_storm(
                    window.start, window.end, samples_every, samples
                )
        self._set_capacity(base_capacity)
        samples.flush(
            result, [s.name for s in self.senders], self.telemetry
        )
        if self.telemetry.enabled:
            steps_counter = self.telemetry.counter("cc.steps")
            steps_counter.inc(steps)
            cnp_counter = self.telemetry.counter("cc.cnps")
            for sender in self.senders:
                cnp_counter.inc(getattr(sender, "cnps_received", 0))
        result.timelines = {
            sender.name: sender.timeline
            for sender in self.senders
            if isinstance(sender, OnOffSource)
        }
        return result

    def _scalar_span(
        self, start: int, end: int, samples_every: int, samples: _SampleBuffer
    ) -> None:
        """The regular per-tick loop over ticks ``[start, end)``."""
        for step_index in range(start, end):
            now = step_index * self.dt
            self._update_pfc()
            p_mark = self.marker.marking_probability(self.queue.occupancy)
            arrival = 0.0
            if self.pfc_paused:
                # Upstream is paused; the queue only drains. Sender rate
                # machines idle (no bytes, no marks) for the step.
                self.pfc_pause_seconds += self.dt
            else:
                for sender in self.senders:
                    arrival += sender.step(now, self.dt, p_mark)
            self.queue.step(arrival / self.dt if self.dt > 0 else 0.0, self.dt)
            if (step_index + 1) % samples_every == 0:
                # Samples land on the sample_interval grid: the state
                # after tick k covers simulated time (k+1) * dt.
                samples.snapshot(
                    (step_index + 1) * self.dt,
                    self.senders,
                    self.queue.occupancy,
                )

    def _scalar_freeze(
        self, start: int, end: int, samples_every: int, samples: _SampleBuffer
    ) -> None:
        """Failed-link ticks: state holds, only sample rows are emitted."""
        for step_index in range(start, end):
            if (step_index + 1) % samples_every == 0:
                samples.snapshot(
                    (step_index + 1) * self.dt,
                    self.senders,
                    self.queue.occupancy,
                )

    def _scalar_storm(
        self, start: int, end: int, samples_every: int, samples: _SampleBuffer
    ) -> None:
        """PFC-storm ticks: senders idle while the queue drains."""
        for step_index in range(start, end):
            self.pfc_pause_seconds += self.dt
            self.queue.step(0.0, self.dt)
            if (step_index + 1) % samples_every == 0:
                samples.snapshot(
                    (step_index + 1) * self.dt,
                    self.senders,
                    self.queue.occupancy,
                )

    def _update_pfc(self) -> None:
        if self.pfc_pause_threshold is None:
            return
        if not self.pfc_paused and (
            self.queue.occupancy >= self.pfc_pause_threshold
        ):
            self.pfc_paused = True
        elif self.pfc_paused and (
            self.queue.occupancy <= self.pfc_resume_threshold
        ):
            self.pfc_paused = False


def calibrate_timer_weights(
    timers: Sequence[float],
    capacity: float = gbps(50),
    duration: float = 0.25,
    warmup: float = 0.05,
    seed: int = 0,
    params: Optional[DcqcnParams] = None,
    engine: str = "vector",
) -> Dict[float, float]:
    """Measure the share weight each increase-timer value earns.

    Runs one long-lived sender per timer value against the others on a
    single bottleneck and reports each sender's steady-state share,
    normalized so the *largest* timer (least aggressive sender) has
    weight 1. The phase-level simulator feeds these into
    :class:`repro.cc.weighted.StaticWeighted` so that coarse runs inherit
    the unfairness a real ``T`` skew would produce.
    """
    if len(timers) < 2:
        raise ConfigError("calibration needs at least two timer values")
    base = params if params is not None else DcqcnParams(line_rate=capacity)
    sim = DcqcnFluidSimulator(capacity=capacity, engine=engine)
    rng_root = np.random.default_rng(seed)
    names = []
    for index, timer in enumerate(timers):
        name = f"t{index}"
        names.append(name)
        child = np.random.default_rng(rng_root.integers(2**63))
        sim.add_sender(name, base.with_timer(timer), child)
    result = sim.run(duration)
    means = {
        name: result.mean_rate(name, start=warmup) for name in names
    }
    reference = means[names[int(np.argmax(timers))]]
    if reference <= 0:
        raise SimulationError("calibration reference sender starved")
    return {
        timer: means[name] / reference for timer, name in zip(timers, names)
    }
