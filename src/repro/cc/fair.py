"""Fair sharing — the baseline the paper argues against.

Every flow gets weight 1, so the allocator performs plain max-min fair
sharing: two jobs on the paper's bottleneck each get half the link (the
Figure 1b scenario), and their communication phases stay overlapped forever
(Figure 2a).
"""

from __future__ import annotations

from ..net.flows import Flow
from .base import SharePolicy


class FairSharing(SharePolicy):
    """Max-min fair sharing (models default DCQCN / TCP fairness)."""

    name = "fair"

    def weight_of(self, flow: Flow) -> float:
        return 1.0
