"""Batched multi-run grid engine: N simulations as one SoA kernel.

:class:`GridBank` stacks N independent single-bottleneck
:class:`repro.cc.dcqcn.DcqcnFluidSimulator` runs — a sweep grid of
seeds x timers x workloads — into one structure-of-arrays simulation
with state shaped ``(runs, senders)``. Each run keeps its own
:class:`repro.cc.sender_bank.SenderBank` (the within-run vector
engine), and the grid reuses that machinery wholesale: the shared
:class:`TimerCache` wrap schedules, the deterministic span
fast-forward, the idle/fault-window bulk advances, and the chunked
:class:`UniformChunks` RNG draws.

The contract is the same as the sender bank's, one level up: every
run's observable output — rate/queue series, ``timelines()``, final
sender state, RNG stream positions — is **bit-identical** to executing
that simulator alone through ``engine="vector"``. Three properties
make that possible:

* **Per-run lane control flow.** Each lane owns a generator that
  replays ``SenderBank.run`` exactly — fault-window partitioning, the
  idle fast-forward, the span probe with its retry backoff — but with
  the per-tick stretch (``_tick_run``) replaced by a *yield* into the
  shared kernel. Spans, bulk idles and fault windows still execute on
  the lane's own bank; only the stochastic tick-by-tick stretches are
  stacked. Span/probe boundaries are pure cost decisions in the sender
  bank (every committed quantity is bit-identical to per-tick
  stepping), so the grid is free to cut them differently.
* **Masked per-tick kernel.** The stacked tick replays the per-slot
  scalar sequence with ``(runs, senders)`` array ops whose operands
  are neutralized on inactive slots (``dt`` contribution 0.0,
  remaining ``inf`` on infinite senders, clamp bounds ``-inf/+inf``),
  so elementwise IEEE-754 ops land exactly where the scalar loop
  would. Order-sensitive pieces — the CNP coin flips (scalar ``**``),
  byte/timer wrap while-loops, alpha decay — run as exact scalar
  fixups over ``np.nonzero`` hits in row-major order, matching each
  lane's slot order. Per-tick arrivals fold via ``cumsum`` (sequential
  adds; the interleaved 0.0 of inactive slots are exact no-ops).
* **Writeback/reload sync.** Whenever a lane needs its bank's Python
  machinery (span probe, activation, completion, bulk window) the
  kernel writes its rows back into the bank lists, runs the original
  code, and reloads — so there is exactly one source of truth at any
  time and no grid-side reimplementation of the event logic.

Lanes must not share numpy generators (draw interleaving across runs
would change stream positions); :meth:`GridBank.build` rejects such
grids. Sharing *within* a lane is fine — slot order is preserved.

One caveat when driving this directly with a single ambient telemetry
session: per-lane counters and series are identical to solo runs, but
the *interleaving* of fault events across lanes in the shared trace
differs from running the sims back to back. The runner's batch tier
gives every spec its own session, so recorded runs are exact.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..faults.runtime import (  # simlint: disable=ARCH001 - the grid engine replays fault windows inline, same inversion as sender_bank
    MODE_FREEZE,
    MODE_NORMAL,
    capacity_windows,
    emit_fault_events,
)
from .dcqcn import DcqcnFluidSimulator, DcqcnResult, _SampleBuffer
from .sender_bank import (
    TICK_RETRY,
    SenderBank,
    TimerCache,
    activation_tick,
)

#: Tick sentinel meaning "this lane never reaches that event".
_NEVER = 1 << 62

#: Request yielded by a lane generator to the kernel:
#: ``(tick, window_end, retry_at)``.
_TickRequest = Tuple[int, int, int]


def grid_compatible(sim) -> bool:
    """Whether ``sim`` can ride in a :class:`GridBank` lane.

    The batchability rules: a plain :class:`DcqcnFluidSimulator`
    (no subclass), single bottleneck (no topology), no PFC, the
    vector engine not overridden, at least one sender, and every
    source/marker/queue type inside the sender bank's fast-path set.
    """
    return _lane_bank(sim) is not None


def _lane_bank(sim) -> Optional[SenderBank]:
    """A fresh :class:`SenderBank` for ``sim``, or ``None`` if any
    batchability rule fails. Building a bank only snapshots state —
    it never mutates the simulator — so probing is side-effect free."""
    if type(sim) is not DcqcnFluidSimulator:
        return None
    if sim.topology is not None or sim.fabric is not None:
        return None
    if sim.pfc_pause_threshold is not None:
        return None
    if sim.engine != "vector":
        return None
    if not sim.senders:
        return None
    bank = SenderBank.build(sim)
    if bank is None:
        return None
    if not bank._red_marker or not bank._inline_queue or bank._has_pfc:
        return None
    # The grid clamps rates with maximum-then-minimum, which matches
    # the scalar if/elif only while the floor sits at or below the
    # line rate (always true for sane params; reject the pathology).
    for floor, line in zip(bank.min_rate, bank.line):
        if floor > line:
            return None
    return bank


def run_grid(sims: Sequence, duration: float) -> List[DcqcnResult]:
    """Run ``sims`` for ``duration`` seconds, stacking every compatible
    same-``dt`` subset into one :class:`GridBank` and executing the
    rest (AIMD simulators, custom sources, scalar-forced engines,
    PFC/topology configs) individually. Results come back in input
    order, bit-identical to ``[sim.run(duration) for sim in sims]``."""
    sims = list(sims)
    results: List[Optional[DcqcnResult]] = [None] * len(sims)
    by_dt: Dict[float, List[int]] = {}
    for index, sim in enumerate(sims):
        if grid_compatible(sim):
            by_dt.setdefault(sim.dt, []).append(index)
    for indices in by_dt.values():
        grid = GridBank.build([sims[i] for i in indices])
        if grid is None:
            continue
        for i, trace in zip(indices, grid.run(duration)):
            results[i] = trace
    for index, sim in enumerate(sims):
        if results[index] is None:
            results[index] = sim.run(duration)
    return results


class _Lane:
    """One run's slice of the grid: its simulator, bank, sample buffer
    and the control-flow generator that replays ``SenderBank.run``."""

    __slots__ = (
        "r", "n", "sim", "bank", "samples", "samples_every", "steps",
        "gen", "job_lifec", "p_floor", "p_line", "done",
    )

    def __init__(self, r: int, sim, bank: SenderBank) -> None:
        self.r = r
        self.n = len(bank.objs)
        self.sim = sim
        self.bank = bank
        self.samples = _SampleBuffer()
        self.samples_every = 1
        self.steps = 0
        self.gen: Optional[Generator] = None
        self.job_lifec = list(bank.lifec)
        self.p_floor = np.array(bank.min_rate, dtype=float)
        self.p_line = np.array(bank.line, dtype=float)
        self.done = False


class GridBank:
    """Structure-of-arrays state for every sender of every run."""

    def __init__(self, sims: List, banks: List[SenderBank]) -> None:
        self.sims = sims
        self.banks = banks
        self.dt = sims[0].dt
        R = len(sims)
        S = max(len(bank.objs) for bank in banks)
        self._R = R
        self._S = S
        shape = (R, S)
        # Float state, (runs, senders). Padding columns are permanently
        # inactive and neutralized below.
        self._rate = np.zeros(shape)
        self._target = np.zeros(shape)
        self._alpha = np.zeros(shape)
        self._rem = np.zeros(shape)
        self._bsent = np.zeros(shape)
        self._bacc = np.zeros(shape)
        self._tacc = np.zeros(shape)
        self._ncnp = np.zeros(shape)
        self._ndecay = np.full(shape, np.inf)
        self._cs = np.zeros(shape)
        self._dt_act = np.zeros(shape)
        self._floor_eff = np.full(shape, -np.inf)
        self._line_eff = np.full(shape, np.inf)
        self._sent = np.zeros(shape)
        # Integer / boolean state.
        self._bst = np.zeros(shape, dtype=np.int64)
        self._tst = np.zeros(shape, dtype=np.int64)
        self._tph = np.zeros(shape, dtype=np.int64)
        self._cnps = np.zeros(shape, dtype=np.int64)
        self._act = np.zeros(shape, dtype=bool)
        self._finite = np.zeros(shape, dtype=bool)
        self._isjob = np.zeros(shape, dtype=bool)
        # Static per-slot parameters (padding stays inf: never wraps,
        # never draws). Full (runs, senders) arrays so the hit/wrap/
        # decay fixups can gather them with fancy indexing.
        self._p_B = np.full(shape, np.inf)
        self._p_T = np.full(shape, np.inf)
        self._p_mtu = np.full(shape, np.inf)
        self._p_g = np.zeros(shape)
        self._p_omg = np.ones(shape)
        self._p_cnpint = np.full(shape, np.inf)
        self._p_alphat = np.full(shape, np.inf)
        self._p_minrate = np.zeros(shape)
        self._p_rai = np.zeros(shape)
        self._p_rhai = np.zeros(shape)
        self._p_fast = np.zeros(shape, dtype=np.int64)
        self._p_line = np.full(shape, np.inf)
        # Reusable scratch (masks and the per-tick send matrix).
        self._elig = np.zeros(shape, dtype=bool)
        self._wrapb = np.zeros(shape, dtype=bool)
        self._decayb = np.zeros(shape, dtype=bool)
        self._compb = np.zeros(shape, dtype=bool)
        # Per-lane state, (runs,).
        self._i = np.zeros(R, dtype=np.int64)
        self._end = np.zeros(R, dtype=np.int64)
        self._retry = np.zeros(R, dtype=np.int64)
        self._sev = np.ones(R, dtype=np.int64)
        self._act_min = np.full(R, _NEVER, dtype=np.int64)
        self._nact = np.zeros(R, dtype=np.int64)
        self._occ = np.zeros(R)
        self._cap = np.zeros(R)
        self._kmin = np.zeros(R)
        self._kmax = np.zeros(R)
        self._pmax = np.zeros(R)
        self._mspan = np.ones(R)
        self._ticking = np.zeros(R, dtype=bool)
        self._n_ticking = 0
        # Chunked RNG stream per slot, for the CNP draw loop, and the
        # static per-slot MTU as plain Python floats (the draw loop is
        # scalar by necessity — vectorized ``**`` is not bit-identical
        # — so keep its operands out of numpy).
        self._slot_stream: List[List[Optional[object]]] = []
        self._mtu_l: List[List[float]] = []
        self._lanes: List[_Lane] = []
        for r, (sim, bank) in enumerate(zip(sims, banks)):
            n = len(bank.objs)
            self._finite[r, :n] = bank.finite
            self._isjob[r, :n] = bank.is_job
            self._p_B[r, :n] = bank.byte_counter
            self._p_T[r, :n] = bank.timer
            self._p_mtu[r, :n] = bank.mtu
            self._p_g[r, :n] = bank.g
            self._p_omg[r, :n] = bank.one_minus_g
            self._p_cnpint[r, :n] = bank.cnp_interval
            self._p_alphat[r, :n] = bank.alpha_timer
            self._p_minrate[r, :n] = bank.min_rate
            self._p_rai[r, :n] = bank.rai
            self._p_rhai[r, :n] = bank.rhai
            self._p_fast[r, :n] = bank.fast_rounds
            self._p_line[r, :n] = bank.line
            self._kmin[r] = bank._kmin
            self._kmax[r] = bank._kmax
            self._pmax[r] = bank._pmax
            self._mspan[r] = bank._mspan
            stream_row: List[Optional[object]] = [None] * S
            for s in range(n):
                stream_row[s] = bank.stream[s]
            self._slot_stream.append(stream_row)
            mtu_row = [1.0] * S
            mtu_row[:n] = [float(m) for m in bank.mtu]
            self._mtu_l.append(mtu_row)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, sims: Sequence) -> Optional["GridBank"]:
        """A grid for ``sims``, or ``None`` if any simulator breaks a
        batchability rule (see :func:`grid_compatible`), the time steps
        differ, or two lanes share a numpy generator."""
        sims = list(sims)
        if not sims:
            return None
        banks: List[SenderBank] = []
        dt0 = sims[0].dt
        seen_rngs: set = set()
        for sim in sims:
            if sim.dt != dt0:
                return None
            bank = _lane_bank(sim)
            if bank is None:
                return None
            lane_rngs = set(bank._streams_by_rng)
            if lane_rngs & seen_rngs:
                # A generator shared across lanes would interleave
                # draws between runs; stream positions could not match
                # solo execution.
                return None
            seen_rngs |= lane_rngs
            banks.append(bank)
        # One TimerCache per (timer, dt) for the whole grid: the
        # trajectory is a pure function of the key, so lanes share the
        # lazily-extended wrap schedules instead of rebuilding them.
        shared: Dict[Tuple[float, float], TimerCache] = {}
        for bank in banks:
            for key, cache in list(bank._tcaches.items()):
                bank._tcaches[key] = shared.setdefault(key, cache)
            bank.tcache = [
                bank._tcaches[(bank.timer[k], dt0)]
                for k in range(len(bank.objs))
            ]
        return cls(sims, banks)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self, duration: float) -> List[DcqcnResult]:
        """Simulate every lane for ``duration`` seconds; same contract
        as ``[sim.run(duration) for sim in sims]`` with the vector
        engine, including the fault-event emission and final sender
        writeback each solo run performs."""
        dt = self.dt
        steps = int(round(duration / dt))
        self._lanes = []
        for r, (sim, bank) in enumerate(zip(self.sims, self.banks)):
            if not sim.senders:
                raise SimulationError(
                    "add at least one sender before run()"
                )
            sim._install_fault_warps()
            emit_fault_events(sim.telemetry, sim.faults)
            lane = _Lane(r, sim, bank)
            lane.steps = steps
            lane.samples_every = max(
                1, int(round(sim.sample_interval / dt))
            )
            self._sev[r] = lane.samples_every
            lane.gen = self._drive(lane)
            self._lanes.append(lane)
        for lane in self._lanes:
            self._advance(lane, first=True)
        self._kernel()
        # The kernel appends sample rows as array views to keep the hot
        # loop cheap; normalize them to the plain lists the bank's
        # bulk/span paths append before handing off to _finish.
        for lane in self._lanes:
            rows = lane.samples.rows
            for idx, row in enumerate(rows):
                rates = row[1]
                if isinstance(rates, np.ndarray):
                    rows[idx] = (row[0], rates.tolist(), row[2])
        return [
            bank._finish(duration, steps, lane.samples)
            for lane, bank in zip(self._lanes, self.banks)
        ]

    # ------------------------------------------------------------------
    # Lane control flow (replays SenderBank.run / _run_span)
    # ------------------------------------------------------------------

    def _drive(self, lane: _Lane) -> Generator[_TickRequest, int, None]:
        """Replay of :meth:`SenderBank.run`'s window loop for one lane;
        stochastic stretches yield tick requests into the kernel."""
        sim = lane.sim
        bank = lane.bank
        base_capacity = sim.capacity
        for window in capacity_windows(
            sim.faults, lane.steps, self.dt, base_capacity
        ):
            if window.mode == MODE_NORMAL:
                sim._set_capacity(window.capacity)
                yield from self._drive_span(lane, window.start, window.end)
            elif window.mode == MODE_FREEZE:
                bank._bulk_freeze(
                    window.start, window.end, lane.samples_every,
                    lane.samples,
                )
            else:
                sim._set_capacity(window.capacity)
                bank._bulk_storm(
                    window.start, window.end, lane.samples_every,
                    lane.samples,
                )
        sim._set_capacity(base_capacity)

    def _drive_span(
        self, lane: _Lane, start: int, steps: int
    ) -> Generator[_TickRequest, int, None]:
        """Replay of :meth:`SenderBank._run_span` (PFC branch excluded
        by the batchability rules) with ``_tick_run`` replaced by a
        yield. The kernel resumes the generator with the lane's current
        tick whenever the lane hits the window end, goes fully idle, or
        passes ``retry_at`` with a span-friendly gate — at which point
        the original probe/backoff logic runs unchanged on the bank."""
        bank = lane.bank
        i = start
        retry_at = start
        retry_gap = TICK_RETRY
        while i < steps:
            if bank._n_active == 0:
                nxt = bank._next_activation()
                if nxt is None or nxt > i:
                    end = steps if nxt is None else min(nxt, steps)
                    bank._bulk_idle(
                        i, end, lane.samples_every, lane.samples
                    )
                    i = end
                    retry_gap = TICK_RETRY
                    continue
            elif i >= retry_at:
                advanced = bank._try_span(
                    i, steps, lane.samples_every, lane.samples
                )
                if advanced:
                    i += advanced
                    retry_gap = TICK_RETRY
                    continue
                retry_at = i + retry_gap
                if retry_gap < 8 * TICK_RETRY:
                    retry_gap *= 2
            i = yield (i, steps, retry_at)

    def _advance(
        self, lane: _Lane, value: Optional[int] = None,
        first: bool = False,
    ) -> None:
        """Resume a lane's generator; load its next tick request into
        the arrays, or retire the lane when the run is finished."""
        try:
            if first:
                request = next(lane.gen)
            else:
                request = lane.gen.send(value)
        except StopIteration:
            lane.done = True
            self._retire_row(lane.r)
            return
        i, end, retry_at = request
        r = lane.r
        self._i[r] = i
        self._end[r] = end
        self._retry[r] = retry_at
        self._load_row(lane)
        if not self._ticking[r]:
            self._ticking[r] = True
            self._n_ticking += 1

    # ------------------------------------------------------------------
    # Array <-> bank synchronization
    # ------------------------------------------------------------------

    def _load_row(self, lane: _Lane) -> None:
        """Refresh lane ``r``'s rows from its bank and simulator."""
        r = lane.r
        n = lane.n
        bank = lane.bank
        self._rate[r, :n] = bank.rate
        self._target[r, :n] = bank.target
        self._alpha[r, :n] = bank.alpha
        self._bsent[r, :n] = bank.bytes_sent
        self._bacc[r, :n] = bank.b_acc
        self._tacc[r, :n] = bank.t_acc
        self._ncnp[r, :n] = bank.next_cnp
        self._ndecay[r, :n] = bank.next_decay
        self._bst[r, :n] = bank.b_st
        self._tst[r, :n] = bank.t_st
        self._tph[r, :n] = bank.t_ph
        self._cnps[r, :n] = bank.cnps
        act_row = np.array(bank.active, dtype=bool)
        self._act[r, :n] = act_row
        # Infinite senders carry +inf here so the shared remaining
        # clamp is an exact no-op; the placeholder 0.0 the bank stores
        # is restored on writeback.
        self._rem[r, :n] = np.where(
            self._finite[r, :n], np.array(bank.remaining), np.inf
        )
        # Masked operands: inactive slots contribute dt 0.0 and clamp
        # against -inf/+inf, so full-row ops cannot disturb them.
        self._dt_act[r, :n] = np.where(act_row, self.dt, 0.0)
        self._floor_eff[r, :n] = np.where(act_row, lane.p_floor, -np.inf)
        self._line_eff[r, :n] = np.where(act_row, lane.p_line, np.inf)
        for s, lifecycle in enumerate(lane.job_lifec):
            if lifecycle is not None:
                self._cs[r, s] = lifecycle.comm_sent
        sim = lane.sim
        self._occ[r] = sim.queue.occupancy
        self._cap[r] = sim.queue.capacity
        self._nact[r] = bank._n_active
        nxt = bank._next_activation() if bank._idle_live else None
        self._act_min[r] = _NEVER if nxt is None else nxt

    def _writeback(self, lane: _Lane) -> None:
        """Write lane ``r``'s rows back into its bank and simulator so
        the original Python machinery sees exact current state."""
        r = lane.r
        n = lane.n
        bank = lane.bank
        bank.rate = self._rate[r, :n].tolist()
        bank.target = self._target[r, :n].tolist()
        bank.alpha = self._alpha[r, :n].tolist()
        bank.bytes_sent = self._bsent[r, :n].tolist()
        bank.b_acc = self._bacc[r, :n].tolist()
        bank.t_acc = self._tacc[r, :n].tolist()
        bank.next_cnp = self._ncnp[r, :n].tolist()
        bank.next_decay = self._ndecay[r, :n].tolist()
        bank.b_st = self._bst[r, :n].tolist()
        bank.t_st = self._tst[r, :n].tolist()
        bank.t_ph = self._tph[r, :n].tolist()
        bank.cnps = self._cnps[r, :n].tolist()
        bank.active = self._act[r, :n].tolist()
        bank.remaining = np.where(
            self._finite[r, :n], self._rem[r, :n], 0.0
        ).tolist()
        for s, lifecycle in enumerate(lane.job_lifec):
            if lifecycle is not None:
                lifecycle.comm_sent = float(self._cs[r, s])
        bank._n_active = int(self._nact[r])
        lane.sim.queue.occupancy = float(self._occ[r])

    def _retire_row(self, r: int) -> None:
        """Neutralize a finished lane so full-grid ops ignore it."""
        if self._ticking[r]:
            self._ticking[r] = False
            self._n_ticking -= 1
        self._act[r, :] = False
        self._dt_act[r, :] = 0.0
        self._rate[r, :] = 0.0
        self._floor_eff[r, :] = -np.inf
        self._line_eff[r, :] = np.inf
        self._occ[r] = 0.0
        self._cap[r] = 0.0
        self._nact[r] = 0
        self._act_min[r] = _NEVER

    # ------------------------------------------------------------------
    # Bank-side events (activation / completion)
    # ------------------------------------------------------------------

    def _run_activations(self, r: int) -> None:
        """Replay ``_tick_run``'s activation block for lane ``r``."""
        lane = self._lanes[r]
        bank = lane.bank
        i = int(self._i[r])
        now = i * self.dt
        self._writeback(lane)
        for k in tuple(bank._idle_live):
            tick = bank._act_tick[k]
            if tick is None:
                tick = activation_tick(bank.objs[k]._deadline, self.dt)
                bank._act_tick[k] = tick
            if i >= tick:
                bank._activate(k, now)
        self._load_row(lane)

    def _run_completions(self, r: int, cols: List[int]) -> None:
        """Replay the per-slot completion branch for lane ``r``."""
        lane = self._lanes[r]
        bank = lane.bank
        now = int(self._i[r]) * self.dt
        self._writeback(lane)
        for k in cols:
            if bank.is_job[k]:
                bank._complete(k, now, self.dt)
            else:
                bank.active[k] = False
                bank._n_active -= 1
        self._load_row(lane)

    # ------------------------------------------------------------------
    # The stacked tick kernel
    # ------------------------------------------------------------------

    def _kernel(self) -> None:
        """Step every ticking lane one tick at a time, all lanes at
        once, until each lane's generator finishes its run. The op
        sequence per tick replays ``_tick_run``'s per-slot order with
        the order-sensitive pieces as exact scalar fixups."""
        dt = self.dt
        rate = self._rate
        target = self._target
        rem = self._rem
        bsent = self._bsent
        bacc = self._bacc
        tacc = self._tacc
        ncnp = self._ncnp
        ndecay = self._ndecay
        cs = self._cs
        act = self._act
        sent = self._sent
        iarr = self._i
        occ_arr = self._occ
        while self._n_ticking:
            ticking = self._ticking
            # Activation block: burst starts due at this tick.
            due = ticking & (iarr >= self._act_min)
            if due.any():
                for r in np.nonzero(due)[0].tolist():
                    self._run_activations(r)
            now = iarr * dt
            # RED marking probability per lane (same operand order as
            # the scalar marking_probability fast path).
            kmin = self._kmin
            ramp = self._pmax * (occ_arr - kmin) / self._mspan
            p_mark = np.where(
                occ_arr <= kmin,
                0.0,
                np.where(occ_arr >= self._kmax, 1.0, ramp),
            )
            # Per-slot send: rate * dt on active slots, clamped to the
            # remaining bytes (inf on infinite senders = exact no-op).
            np.multiply(rate, self._dt_act, out=sent)
            np.minimum(sent, rem, out=sent)
            rem -= sent
            bsent += sent
            cs += sent
            # CNP coin flips: scalar ``**`` and the inlined chunk draw,
            # in row-major (lane, slot) order — each lane's slot order,
            # and therefore each stream's draw order, matches solo.
            elig = self._elig
            np.greater(sent, 0.0, out=elig)
            elig &= now[:, None] >= ncnp
            elig &= p_mark[:, None] > 0.0
            if elig.any():
                self._cnp_pass(elig, p_mark, now)
            # Byte counter: accumulate post-CNP (a reset this tick
            # still counts this tick's bytes), then exact wrap loops.
            bacc += sent
            wrap = self._wrapb
            np.greater_equal(bacc, self._p_B, out=wrap)
            if wrap.any():
                self._wrap_pass(wrap, byte=True)
            # Timer: advance active slots by dt, then wrap loops.
            tacc += self._dt_act
            np.greater_equal(tacc, self._p_T, out=wrap)
            if wrap.any():
                self._wrap_pass(wrap, byte=False)
            self._tph += act
            # Alpha decay.
            decay = self._decayb
            np.greater_equal(now[:, None], ndecay, out=decay)
            decay &= act
            if decay.any():
                self._decay_pass(decay, now)
            # Rate/target clamps. Maximum-then-minimum equals the
            # scalar if/elif because build() guarantees floor <= line;
            # inactive slots clamp against -inf/+inf (exact no-ops).
            np.maximum(rate, self._floor_eff, out=rate)
            np.minimum(rate, self._line_eff, out=rate)
            np.minimum(target, self._line_eff, out=target)
            # Queue: arrivals fold in slot order (cumsum is the exact
            # sequential sum; inactive slots add 0.0).
            arrival = sent.cumsum(axis=1)[:, -1]
            net = arrival / dt - self._cap
            occ_next = occ_arr + net * dt
            occ_arr[...] = np.where(
                (net < 0.0) & (occ_next <= 0.0), 0.0, occ_next
            )
            # Completions (finite slots that just drained).
            comp = self._compb
            np.less_equal(rem, 0.0, out=comp)
            comp &= act
            if comp.any():
                comp_r, comp_s = np.nonzero(comp)
                for r in np.unique(comp_r).tolist():
                    cols = comp_s[comp_r == r].tolist()
                    self._run_completions(r, cols)
            iarr += ticking
            # Sample rows land at tick boundaries, post-update.
            due = ticking & (iarr % self._sev == 0)
            if due.any():
                rates_now = np.where(act, rate, 0.0)
                for r in np.nonzero(due)[0].tolist():
                    lane = self._lanes[r]
                    lane.samples.rows.append((
                        int(iarr[r]) * dt,
                        rates_now[r, : lane.n],
                        float(occ_arr[r]),
                    ))
            # Lane exits: window end, full idle, or a span-friendly
            # probe gate past retry_at. The gate is a pure cost filter
            # — the bank's _try_span remains the deterministic
            # authority — so a conservative miss only costs ticks.
            # Kernel iterations are shared across lanes, so a span only
            # pays when it can run long: gate on an unmarked queue
            # (spans may reach MAX_HORIZON) and skip the short
            # between-CNP spans the solo engine would take.
            gate = occ_arr <= kmin
            exits = ticking & (
                (iarr >= self._end)
                | (self._nact == 0)
                | ((iarr >= self._retry) & gate)
            )
            if exits.any():
                for r in np.nonzero(exits)[0].tolist():
                    lane = self._lanes[r]
                    self._ticking[r] = False
                    self._n_ticking -= 1
                    self._writeback(lane)
                    self._advance(lane, int(iarr[r]))

    # ------------------------------------------------------------------
    # Scalar fixup passes (order-sensitive pieces of the tick)
    # ------------------------------------------------------------------

    def _cnp_pass(
        self, elig: np.ndarray, p_mark: np.ndarray, now: np.ndarray
    ) -> None:
        """Replay the scalar CNP block for every eligible slot.

        The marking probability comes from the vectorized RED ramp
        (elementwise IEEE ops, bit-identical to the scalar path), but
        the coin itself uses Python-float ``**`` — the vectorized power
        op is *not* bit-identical to the scalar one — and the inlined
        chunk draw, in row-major order, exactly as ``_tick_run`` does.
        The slots whose coin lands then update in one fancy-indexed
        batch of elementwise ops (same op sequence per slot).
        """
        el_r, el_s = np.nonzero(elig)
        rows = el_r.tolist()
        cols = el_s.tolist()
        sent_l = self._sent[el_r, el_s].tolist()
        q_mark_l = (1.0 - p_mark)[el_r].tolist()
        slot_stream = self._slot_stream
        mtu_l = self._mtu_l
        hits: List[int] = []
        append_hit = hits.append
        for j, (r, c, sent_b, q_mark) in enumerate(
            zip(rows, cols, sent_l, q_mark_l)
        ):
            p_hit = 1.0 - q_mark ** (sent_b / mtu_l[r][c])
            stream = slot_stream[r][c]
            pos = stream._pos
            buf = stream._buf
            if pos >= len(buf):
                if stream._state0 is None:
                    stream._state0 = stream._rng.bit_generator.state
                buf = stream._rng.random(stream._chunk).tolist()
                stream._buf = buf
                pos = 0
            stream._pos = pos + 1
            stream._consumed += 1
            if buf[pos] < p_hit:
                append_hit(j)
        if not hits:
            return
        hr = el_r[hits]
        hs = el_s[hits]
        alpha = self._alpha
        rate = self._rate
        # a = (1 - g) * alpha + g; rate cut to max(r * (1 - a/2), floor)
        # with target parked at the pre-cut rate — all elementwise.
        a_new = self._p_omg[hr, hs] * alpha[hr, hs] + self._p_g[hr, hs]
        alpha[hr, hs] = a_new
        r_now = rate[hr, hs]
        self._target[hr, hs] = r_now
        cut = r_now * (1.0 - a_new / 2.0)
        rate[hr, hs] = np.maximum(cut, self._p_minrate[hr, hs])
        self._bacc[hr, hs] = 0.0
        self._tacc[hr, hs] = 0.0
        self._bst[hr, hs] = 0
        self._tst[hr, hs] = 0
        now_sel = now[hr]
        self._ncnp[hr, hs] = now_sel + self._p_cnpint[hr, hs]
        self._ndecay[hr, hs] = now_sel + self._p_alphat[hr, hs]
        self._cnps[hr, hs] += 1
        self._tph[hr, hs] = 0

    def _wrap_pass(self, wrap: np.ndarray, byte: bool) -> None:
        """Byte/timer wrap loops with increase events, vectorized one
        wrap round at a time (per-slot op order matches the scalar
        while-loop; slots are independent across rounds)."""
        accum = self._bacc if byte else self._tacc
        stage = self._bst if byte else self._tst
        limit = self._p_B if byte else self._p_T
        bst = self._bst
        tst = self._tst
        rate = self._rate
        target = self._target
        fast = self._p_fast
        while True:
            w_r, w_s = np.nonzero(wrap)
            if not w_r.size:
                return
            accum[w_r, w_s] -= limit[w_r, w_s]
            stage[w_r, w_s] += 1
            # _increase_event on the wrapped slots: the in-fast branch
            # adds exactly 0.0 (a no-op on positive targets), matching
            # the scalar "pass"; the clamp applies unconditionally.
            f = fast[w_r, w_s]
            b = bst[w_r, w_s]
            t = tst[w_r, w_s]
            in_fast = (b < f) & (t < f)
            past_both = (b >= f) & (t >= f)
            bump = np.where(
                in_fast,
                0.0,
                np.where(
                    past_both, self._p_rhai[w_r, w_s],
                    self._p_rai[w_r, w_s],
                ),
            )
            tgt = target[w_r, w_s] + bump
            np.minimum(tgt, self._p_line[w_r, w_s], out=tgt)
            target[w_r, w_s] = tgt
            rate[w_r, w_s] = (tgt + rate[w_r, w_s]) / 2.0
            wrap[w_r, w_s] = accum[w_r, w_s] >= limit[w_r, w_s]

    def _decay_pass(self, decay: np.ndarray, now: np.ndarray) -> None:
        """Alpha-decay while-loops, vectorized one round at a time."""
        alpha = self._alpha
        ndecay = self._ndecay
        omg = self._p_omg
        period = self._p_alphat
        while True:
            d_r, d_s = np.nonzero(decay)
            if not d_r.size:
                return
            alpha[d_r, d_s] *= omg[d_r, d_s]
            ndecay[d_r, d_s] += period[d_r, d_s]
            decay[d_r, d_s] = now[d_r] >= ndecay[d_r, d_s]
