"""Congestion control.

Two layers:

* **Share policies** (:mod:`repro.cc.base` and friends) — answer "given the
  flows communicating right now, how is link bandwidth split?". The
  phase-level simulator consumes these. Fair sharing, static-weighted
  unfairness (the fluid analogue of skewing DCQCN's ``T``), the paper's
  adaptively-unfair rule (§4(i)), and per-job strict priorities (§4(ii))
  are all policies.
* **Fine-grained DCQCN** (:mod:`repro.cc.dcqcn`) — a fluid-model DCQCN
  simulator with the actual rate state machine (ECN/CNP decrease, byte- and
  timer-driven increase). It reproduces Figure 1b/1c and calibrates the
  weight that a given ``T`` skew corresponds to.
"""

from .base import SharePolicy
from .fair import FairSharing
from .weighted import StaticWeighted
from .adaptive import AdaptiveUnfair
from .priority import PrioritySharing
from .dcqcn import DcqcnParams, DcqcnSender, DcqcnFluidSimulator, calibrate_timer_weights
from .sender_bank import SenderBank
from .aimd import AimdParams, AimdFluidSimulator
from .factory import make_policy

__all__ = [
    "SharePolicy",
    "FairSharing",
    "StaticWeighted",
    "AdaptiveUnfair",
    "PrioritySharing",
    "DcqcnParams",
    "DcqcnSender",
    "DcqcnFluidSimulator",
    "calibrate_timer_weights",
    "SenderBank",
    "AimdParams",
    "AimdFluidSimulator",
    "make_policy",
]
