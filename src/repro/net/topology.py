"""Network topology: nodes, directed links, and standard builders.

Links are directed and full-duplex: ``add_link`` creates one :class:`Link`
per direction. Capacities are in bytes/second (use :func:`repro.units.gbps`
at call sites). Builders cover the shapes used in the paper and its
evaluation context:

* :meth:`Topology.dumbbell` — the Figure 1 testbed shape: two groups of
  hosts whose traffic shares one bottleneck link ``L1``.
* :meth:`Topology.single_switch` — a rack: N hosts under one ToR.
* :meth:`Topology.leaf_spine` — a multi-rack cluster for the scheduler
  experiments, with configurable oversubscription.
* :meth:`Topology.fat_tree` — a three-tier k-ary fat tree with named
  edge/agg/core uplinks, the shape for cluster-scale multi-link runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..errors import TopologyError
from ..units import gbps

#: Name of the shared bottleneck link in generated dumbbells — the
#: paper's ``L1`` (Figure 1). The single home for this constant; the
#: runner backends and the experiment helpers both import it.
BOTTLENECK = "L1"


class NodeKind(enum.Enum):
    """Role of a node in the cluster fabric."""

    HOST = "host"
    TOR = "tor"
    SPINE = "spine"
    CORE = "core"


@dataclass(frozen=True)
class Node:
    """A vertex in the topology."""

    name: str
    kind: NodeKind

    def __str__(self) -> str:
        return self.name


@dataclass
class Link:
    """A directed link with a fixed capacity.

    Attributes:
        src: Name of the transmitting node.
        dst: Name of the receiving node.
        capacity: Capacity in bytes/second.
        name: Stable identifier, e.g. ``"L1"`` for the paper's bottleneck.
    """

    src: str
    dst: str
    capacity: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise TopologyError(
                f"link {self.src}->{self.dst} needs positive capacity, "
                f"got {self.capacity}"
            )
        if not self.name:
            self.name = f"{self.src}->{self.dst}"

    def __hash__(self) -> int:
        return hash((self.src, self.dst))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Link):
            return NotImplemented
        return (self.src, self.dst) == (other.src, other.dst)

    def __repr__(self) -> str:
        return f"Link({self.name}, {self.capacity:.3g} B/s)"


class Topology:
    """A directed network of named nodes and capacity-labelled links."""

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._rack_cache: Optional[Dict[str, str]] = None
        self._links_by_name: Dict[str, Link] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, name: str, kind: NodeKind = NodeKind.HOST) -> Node:
        """Add a node; re-adding the same name with the same kind is a no-op."""
        existing = self._nodes.get(name)
        if existing is not None:
            if existing.kind is not kind:
                raise TopologyError(
                    f"node {name!r} already exists with kind {existing.kind}"
                )
            return existing
        node = Node(name, kind)
        self._nodes[name] = node
        return node

    def add_link(
        self,
        a: str,
        b: str,
        capacity: float,
        name: str = "",
        bidirectional: bool = True,
    ) -> Link:
        """Connect ``a`` and ``b``; returns the ``a -> b`` direction.

        With ``bidirectional`` (the default) the reverse direction is added
        with the same capacity, modelling a full-duplex cable.
        """
        for endpoint in (a, b):
            if endpoint not in self._nodes:
                raise TopologyError(f"unknown node {endpoint!r}")
        if (a, b) in self._links:
            raise TopologyError(f"duplicate link {a}->{b}")
        forward = Link(a, b, capacity, name=name)
        reverse: Optional[Link] = None
        if bidirectional and (b, a) not in self._links:
            reverse_name = f"{name}_rev" if name else ""
            reverse = Link(b, a, capacity, name=reverse_name)
        for link in (forward, reverse):
            if link is not None and link.name in self._links_by_name:
                raise TopologyError(f"duplicate link name {link.name!r}")
        self._links[(a, b)] = forward
        self._links_by_name[forward.name] = forward
        if reverse is not None:
            self._links[(b, a)] = reverse
            self._links_by_name[reverse.name] = reverse
        self._rack_cache = None
        return forward

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def link(self, src: str, dst: str) -> Link:
        """Look up the directed link ``src -> dst``."""
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise TopologyError(f"no link {src}->{dst}") from None

    def link_by_name(self, name: str) -> Link:
        """Look up a link by its stable name (e.g. ``"L1"``).

        O(1): ``add_link`` maintains a name index (and rejects duplicate
        names, so the mapping is unambiguous), mirroring the ``rack_of``
        memoization.
        """
        try:
            return self._links_by_name[name]
        except KeyError:
            raise TopologyError(f"no link named {name!r}") from None

    def has_link(self, src: str, dst: str) -> bool:
        """Whether the directed link ``src -> dst`` exists."""
        return (src, dst) in self._links

    @property
    def nodes(self) -> List[Node]:
        """All nodes, in insertion order."""
        return list(self._nodes.values())

    @property
    def links(self) -> List[Link]:
        """All directed links, in insertion order."""
        return list(self._links.values())

    def hosts(self) -> List[Node]:
        """All nodes of kind HOST."""
        return [n for n in self._nodes.values() if n.kind is NodeKind.HOST]

    def graph(self) -> nx.DiGraph:
        """Export as a :class:`networkx.DiGraph` (for routing)."""
        graph = nx.DiGraph()
        for node in self._nodes.values():
            graph.add_node(node.name, kind=node.kind)
        for (src, dst), link in self._links.items():
            graph.add_edge(src, dst, capacity=link.capacity, link=link)
        return graph

    def path_links(self, path: Iterable[str]) -> List[Link]:
        """Convert a node path into the list of directed links along it."""
        path = list(path)
        return [self.link(u, v) for u, v in zip(path, path[1:])]

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @classmethod
    def dumbbell(
        cls,
        hosts_per_side: int = 2,
        host_capacity: float = gbps(50),
        bottleneck_capacity: Optional[float] = None,
        bottleneck_name: str = BOTTLENECK,
    ) -> "Topology":
        """The Figure 1 testbed shape.

        ``hosts_per_side`` hosts hang off each of two switches ``S0`` and
        ``S1``; the inter-switch link (named ``L1`` by default) is the
        shared bottleneck. Host NIC links default to 50 Gbps, matching the
        paper's ConnectX-5 NICs; the bottleneck defaults to the same rate so
        that two senders crossing it must share.
        """
        if hosts_per_side < 1:
            raise TopologyError("dumbbell needs at least one host per side")
        topo = cls()
        topo.add_node("S0", NodeKind.TOR)
        topo.add_node("S1", NodeKind.TOR)
        if bottleneck_capacity is None:
            bottleneck_capacity = host_capacity
        topo.add_link("S0", "S1", bottleneck_capacity, name=bottleneck_name)
        for side, switch in (("a", "S0"), ("b", "S1")):
            for index in range(hosts_per_side):
                host = f"h{side}{index}"
                topo.add_node(host, NodeKind.HOST)
                topo.add_link(host, switch, host_capacity)
        return topo

    @classmethod
    def single_switch(
        cls,
        n_hosts: int,
        host_capacity: float = gbps(50),
        switch_name: str = "tor0",
    ) -> "Topology":
        """N hosts under a single ToR switch."""
        if n_hosts < 1:
            raise TopologyError("need at least one host")
        topo = cls()
        topo.add_node(switch_name, NodeKind.TOR)
        for index in range(n_hosts):
            host = f"h{index}"
            topo.add_node(host, NodeKind.HOST)
            topo.add_link(host, switch_name, host_capacity)
        return topo

    @classmethod
    def leaf_spine(
        cls,
        n_racks: int,
        hosts_per_rack: int,
        n_spines: int = 2,
        host_capacity: float = gbps(50),
        uplink_capacity: Optional[float] = None,
    ) -> "Topology":
        """A two-tier leaf-spine cluster.

        Every ToR connects to every spine. ``uplink_capacity`` defaults to
        ``host_capacity``, giving an oversubscription ratio of
        ``hosts_per_rack / n_spines`` — cross-rack contention is the point
        of the scheduler experiments.
        """
        if n_racks < 1 or hosts_per_rack < 1 or n_spines < 1:
            raise TopologyError("leaf_spine dimensions must be positive")
        if uplink_capacity is None:
            uplink_capacity = host_capacity
        topo = cls()
        for spine_index in range(n_spines):
            topo.add_node(f"spine{spine_index}", NodeKind.SPINE)
        for rack in range(n_racks):
            tor = f"tor{rack}"
            topo.add_node(tor, NodeKind.TOR)
            for spine_index in range(n_spines):
                topo.add_link(
                    tor,
                    f"spine{spine_index}",
                    uplink_capacity,
                    name=f"up_{rack}_{spine_index}",
                )
            for host_index in range(hosts_per_rack):
                host = f"h{rack}_{host_index}"
                topo.add_node(host, NodeKind.HOST)
                topo.add_link(host, tor, host_capacity)
        return topo

    @classmethod
    def fat_tree(
        cls,
        k: int,
        host_capacity: float = gbps(50),
        uplink_capacity: Optional[float] = None,
        core_capacity: Optional[float] = None,
    ) -> "Topology":
        """A three-tier k-ary fat tree (Al-Fares et al.).

        ``k`` pods, each with ``k/2`` edge (ToR) and ``k/2`` aggregation
        switches; ``(k/2)**2`` core switches; ``k/2`` hosts per edge switch
        — ``k**3/4`` hosts total. Aggregation switch ``a`` of every pod
        connects to core switches ``a*k/2 .. (a+1)*k/2 - 1``, so ECMP over
        shortest paths spreads inter-pod traffic across the core.

        Naming: hosts ``h{pod}_{edge}_{i}``, edge switches
        ``edge{pod}_{e}`` (rack granularity for placement), aggregation
        switches ``agg{pod}_{a}``, cores ``core{c}``. Uplinks carry stable
        names — ``up_{pod}_{e}_{a}`` for edge->agg and ``core_{pod}_{a}_{c}``
        for agg->core — so fault schedules and per-link audits can target
        any tier. ``uplink_capacity`` and ``core_capacity`` default to
        ``host_capacity`` (non-blocking at equal rates; lower them to model
        oversubscription).
        """
        if k < 2 or k % 2 != 0:
            raise TopologyError(f"fat_tree needs an even k >= 2, got {k}")
        if uplink_capacity is None:
            uplink_capacity = host_capacity
        if core_capacity is None:
            core_capacity = uplink_capacity
        half = k // 2
        topo = cls()
        for core in range(half * half):
            topo.add_node(f"core{core}", NodeKind.CORE)
        for pod in range(k):
            for agg in range(half):
                topo.add_node(f"agg{pod}_{agg}", NodeKind.SPINE)
                for port in range(half):
                    core = agg * half + port
                    topo.add_link(
                        f"agg{pod}_{agg}",
                        f"core{core}",
                        core_capacity,
                        name=f"core_{pod}_{agg}_{core}",
                    )
            for edge in range(half):
                tor = f"edge{pod}_{edge}"
                topo.add_node(tor, NodeKind.TOR)
                for agg in range(half):
                    topo.add_link(
                        tor,
                        f"agg{pod}_{agg}",
                        uplink_capacity,
                        name=f"up_{pod}_{edge}_{agg}",
                    )
                for index in range(half):
                    host = f"h{pod}_{edge}_{index}"
                    topo.add_node(host, NodeKind.HOST)
                    topo.add_link(host, tor, host_capacity)
        return topo

    def rack_of(self, host: str) -> Optional[str]:
        """Return the ToR a host attaches to, or ``None``.

        Memoized: placement policies call this for every host on every
        decision, and a linear link scan per call dominates large-fabric
        runs. ``add_link`` invalidates the cache.
        """
        node = self.node(host)
        if node.kind is not NodeKind.HOST:
            return None
        cache = self._rack_cache
        if cache is None:
            cache = {}
            for (src, dst) in self._links:
                if (
                    self._nodes[src].kind is NodeKind.HOST
                    and self._nodes[dst].kind is NodeKind.TOR
                ):
                    cache.setdefault(src, dst)
            self._rack_cache = cache
        return cache.get(host)
