"""Weighted max-min fluid bandwidth allocation with strict priorities.

This is the arbiter both simulators use to convert a congestion-control
policy into instantaneous rates. The classical *progressive filling*
algorithm is extended two ways:

* **weights** — each flow fills at a rate proportional to its weight, so a
  2:1 weight ratio on a shared bottleneck yields a 2:1 rate split. This is
  the fluid equivalent of making one DCQCN sender more aggressive (the
  paper's ``T`` skew); the fine-grained model in :mod:`repro.cc.dcqcn`
  validates the correspondence.
* **strict priorities** — flows are grouped by priority class (highest
  first) and each class is allocated over the capacity the classes above it
  left behind. This models the paper's §4(ii) switch priority queues.

Rate caps (NIC line rate, app limits) are respected by freezing a flow at
its cap during filling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

from ..errors import AllocationError
from .flows import Flow
from .topology import Link

#: Tolerance for capacity comparisons, relative to link capacity.
_REL_EPS = 1e-9


@dataclass
class Allocation:
    """Result of one allocation round.

    Attributes:
        rates: Allocated rate per flow, bytes/s.
        link_loads: Total allocated rate crossing each involved link.
    """

    rates: Dict[Flow, float] = field(default_factory=dict)
    link_loads: Dict[Link, float] = field(default_factory=dict)

    def rate_of(self, flow: Flow) -> float:
        """Allocated rate for ``flow`` (0 if it was not in the round)."""
        return self.rates.get(flow, 0.0)

    def utilization(self, link: Link) -> float:
        """Fraction of ``link``'s capacity in use, in [0, 1]."""
        return self.link_loads.get(link, 0.0) / link.capacity


class FluidAllocator:
    """Computes weighted max-min allocations with strict priorities."""

    def allocate(self, flows: Sequence[Flow]) -> Allocation:
        """Allocate rates to ``flows`` over their (shared) links.

        Flows with a higher ``priority`` value are allocated first and see
        the full link capacities; each lower class sees what remains.
        Within a class the split is weighted max-min fair.
        """
        allocation = Allocation()
        if not flows:
            return allocation

        residual: Dict[Link, float] = {}
        for flow in flows:
            for link in flow.links:
                residual.setdefault(link, link.capacity)

        for priority in sorted({f.priority for f in flows}, reverse=True):
            class_flows = [f for f in flows if f.priority == priority]
            class_rates = self._weighted_max_min(class_flows, residual)
            for flow, rate in class_rates.items():
                allocation.rates[flow] = rate
                for link in flow.links:
                    residual[link] = max(0.0, residual[link] - rate)

        for link in residual:
            allocation.link_loads[link] = link.capacity - residual[link]
        self._check(allocation)
        return allocation

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _weighted_max_min(
        flows: Sequence[Flow],
        capacities: Mapping[Link, float],
    ) -> Dict[Flow, float]:
        """Progressive filling of one priority class.

        Every unfrozen flow grows at ``weight * theta``; at each step we
        find the smallest ``theta`` increment that saturates a link or hits
        a flow's rate cap, freeze the affected flows, and repeat.
        """
        rates: Dict[Flow, float] = {flow: 0.0 for flow in flows}
        frozen: set[Flow] = set()
        remaining = {link: cap for link, cap in capacities.items()}

        while len(frozen) < len(flows):
            active = [f for f in flows if f not in frozen]
            # Per-link active weight, computed once per fill round and
            # reused when subtracting usage below.
            active_weight: Dict[Link, float] = {}
            for link in remaining:
                active_weight[link] = sum(
                    f.weight for f in active if link in f.links
                )
            # Smallest theta increment that saturates some constraint.
            best_delta: Optional[float] = None
            for link, cap in remaining.items():
                weight = active_weight[link]
                if weight <= 0:
                    continue
                delta = cap / weight
                if best_delta is None or delta < best_delta:
                    best_delta = delta
            for flow in active:
                if flow.rate_cap is None:
                    continue
                headroom = flow.rate_cap - rates[flow]
                delta = headroom / flow.weight
                if best_delta is None or delta < best_delta:
                    best_delta = delta
            if best_delta is None:
                # No active flow crosses any constrained link and none has
                # a cap: rates are unbounded in the fluid model, which means
                # the caller built flows with empty paths and no caps.
                raise AllocationError(
                    "flows without links must carry a rate_cap"
                )
            best_delta = max(best_delta, 0.0)

            for flow in active:
                rates[flow] += flow.weight * best_delta
            for link in remaining:
                used = best_delta * active_weight[link]
                remaining[link] = max(0.0, remaining[link] - used)

            # Freeze flows on saturated links or at their caps.
            newly_frozen: set[Flow] = set()
            for flow in active:
                if flow.rate_cap is not None and (
                    rates[flow] >= flow.rate_cap * (1 - _REL_EPS)
                ):
                    rates[flow] = min(rates[flow], flow.rate_cap)
                    newly_frozen.add(flow)
            for link, cap in remaining.items():
                if cap <= capacities[link] * _REL_EPS:
                    for flow in active:
                        if link in flow.links:
                            newly_frozen.add(flow)
            if not newly_frozen:
                # Numerical safety net: freeze everything rather than spin.
                newly_frozen = set(active)
            frozen |= newly_frozen
        return rates

    @staticmethod
    def _check(allocation: Allocation) -> None:
        """Assert no link is oversubscribed (guards against regressions)."""
        for link, load in allocation.link_loads.items():
            if load > link.capacity * (1 + 1e-6):
                raise AllocationError(
                    f"link {link.name} oversubscribed: "
                    f"{load:.6g} > {link.capacity:.6g}"
                )
