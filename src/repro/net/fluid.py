"""Weighted max-min fluid bandwidth allocation with strict priorities.

This is the arbiter both simulators use to convert a congestion-control
policy into instantaneous rates. The classical *progressive filling*
algorithm is extended two ways:

* **weights** — each flow fills at a rate proportional to its weight, so a
  2:1 weight ratio on a shared bottleneck yields a 2:1 rate split. This is
  the fluid equivalent of making one DCQCN sender more aggressive (the
  paper's ``T`` skew); the fine-grained model in :mod:`repro.cc.dcqcn`
  validates the correspondence.
* **strict priorities** — flows are grouped by priority class (highest
  first) and each class is allocated over the capacity the classes above it
  left behind. This models the paper's §4(ii) switch priority queues.

Rate caps (NIC line rate, app limits) are respected by freezing a flow at
its cap during filling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import AllocationError
from .flows import Flow
from .topology import Link

#: Tolerance for capacity comparisons, relative to link capacity.
_REL_EPS = 1e-9


@dataclass
class Allocation:
    """Result of one allocation round.

    Attributes:
        rates: Allocated rate per flow, bytes/s.
        link_loads: Total allocated rate crossing each involved link.
    """

    rates: Dict[Flow, float] = field(default_factory=dict)
    link_loads: Dict[Link, float] = field(default_factory=dict)

    def rate_of(self, flow: Flow) -> float:
        """Allocated rate for ``flow`` (0 if it was not in the round)."""
        return self.rates.get(flow, 0.0)

    def utilization(self, link: Link) -> float:
        """Fraction of ``link``'s capacity in use, in [0, 1]."""
        return self.link_loads.get(link, 0.0) / link.capacity


class FluidAllocator:
    """Computes weighted max-min allocations with strict priorities."""

    def allocate(self, flows: Sequence[Flow]) -> Allocation:
        """Allocate rates to ``flows`` over their (shared) links.

        Flows with a higher ``priority`` value are allocated first and see
        the full link capacities; each lower class sees what remains.
        Within a class the split is weighted max-min fair.
        """
        allocation = Allocation()
        if not flows:
            return allocation

        residual: Dict[Link, float] = {}
        for flow in flows:
            for link in flow.links:
                residual.setdefault(link, link.capacity)

        for priority in sorted({f.priority for f in flows}, reverse=True):
            class_flows = [f for f in flows if f.priority == priority]
            class_rates = self._weighted_max_min(class_flows, residual)
            for flow, rate in class_rates.items():
                allocation.rates[flow] = rate
                for link in flow.links:
                    residual[link] = max(0.0, residual[link] - rate)

        for link in residual:
            allocation.link_loads[link] = link.capacity - residual[link]
        self._check(allocation)
        return allocation

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _weighted_max_min(
        flows: Sequence[Flow],
        capacities: Mapping[Link, float],
    ) -> Dict[Flow, float]:
        """Progressive filling of one priority class.

        Every unfrozen flow grows at ``weight * theta``; at each step we
        find the smallest ``theta`` increment that saturates a link or hits
        a flow's rate cap, freeze the affected flows, and repeat.

        Path membership (``link in flow.links``) is resolved once up front
        into a link -> flow-index incidence map; the fill rounds then touch
        only incident flows, which keeps wide fabrics (hundreds of links,
        long paths) out of the O(links x flows x path-length) trap. The
        incidence lists preserve flow order, so the per-link weight sums
        accumulate in the same order as the naive scan and the resulting
        rates are bit-identical.
        """
        rates: Dict[Flow, float] = {flow: 0.0 for flow in flows}
        remaining = {link: cap for link, cap in capacities.items()}

        # One pass over every flow's path: per-link incident flow indices
        # (deduplicated, in flow order) and per-flow membership sets.
        incident: Dict[Link, List[int]] = {link: [] for link in remaining}
        for index, flow in enumerate(flows):
            on_path: set[Link] = set()
            for link in flow.links:
                if link in incident and link not in on_path:
                    incident[link].append(index)
                    on_path.add(link)

        frozen = [False] * len(flows)
        n_frozen = 0
        while n_frozen < len(flows):
            active = [i for i in range(len(flows)) if not frozen[i]]
            # Per-link active weight, computed once per fill round and
            # reused when subtracting usage below.
            active_weight: Dict[Link, float] = {}
            for link in remaining:
                active_weight[link] = sum(
                    flows[i].weight for i in incident[link] if not frozen[i]
                )
            # Smallest theta increment that saturates some constraint.
            best_delta: Optional[float] = None
            for link, cap in remaining.items():
                weight = active_weight[link]
                if weight <= 0:
                    continue
                delta = cap / weight
                if best_delta is None or delta < best_delta:
                    best_delta = delta
            for i in active:
                flow = flows[i]
                if flow.rate_cap is None:
                    continue
                headroom = flow.rate_cap - rates[flow]
                delta = headroom / flow.weight
                if best_delta is None or delta < best_delta:
                    best_delta = delta
            if best_delta is None:
                # No active flow crosses any constrained link and none has
                # a cap: rates are unbounded in the fluid model, which means
                # the caller built flows with empty paths and no caps.
                raise AllocationError(
                    "flows without links must carry a rate_cap"
                )
            best_delta = max(best_delta, 0.0)

            for i in active:
                rates[flows[i]] += flows[i].weight * best_delta
            for link in remaining:
                used = best_delta * active_weight[link]
                remaining[link] = max(0.0, remaining[link] - used)

            # Freeze flows on saturated links or at their caps.
            newly_frozen: set[int] = set()
            for i in active:
                flow = flows[i]
                if flow.rate_cap is not None and (
                    rates[flow] >= flow.rate_cap * (1 - _REL_EPS)
                ):
                    rates[flow] = min(rates[flow], flow.rate_cap)
                    newly_frozen.add(i)
            for link, cap in remaining.items():
                if cap <= capacities[link] * _REL_EPS:
                    for i in incident[link]:
                        if not frozen[i]:
                            newly_frozen.add(i)
            if not newly_frozen:
                # Numerical safety net: freeze everything rather than spin.
                newly_frozen = set(active)
            for i in sorted(newly_frozen):
                frozen[i] = True
            n_frozen += len(newly_frozen)
        return rates

    @staticmethod
    def _check(allocation: Allocation) -> None:
        """Assert no link is oversubscribed (guards against regressions)."""
        for link, load in allocation.link_loads.items():
            if load > link.capacity * (1 + 1e-6):
                raise AllocationError(
                    f"link {link.name} oversubscribed: "
                    f"{load:.6g} > {link.capacity:.6g}"
                )
