"""Network substrate: topology, routing, flows, and fluid bandwidth sharing.

The substrate replaces the paper's physical testbed (A100 hosts, 50 Gbps
ConnectX-5 NICs, a Tofino switch). Two simulators are built on top of it:

* :mod:`repro.net.fluid` — an instantaneous weighted max-min allocator used
  by both simulators to turn a congestion-control policy into rates.
* :mod:`repro.net.phasesim` — the phase-level event simulator that runs ML
  training jobs (compute/communication phases) over the topology and is the
  workhorse behind Table 1 and Figures 1d and 2.
"""

from .topology import Node, NodeKind, Link, Topology
from .routing import Router, EcmpRouter
from .flows import Flow
from .fluid import FluidAllocator, Allocation
from .phasesim import PhaseLevelSimulator, JobRun, SimulationResult

__all__ = [
    "Node",
    "NodeKind",
    "Link",
    "Topology",
    "Router",
    "EcmpRouter",
    "Flow",
    "FluidAllocator",
    "Allocation",
    "PhaseLevelSimulator",
    "JobRun",
    "SimulationResult",
]
