"""Flow objects: the unit of bandwidth allocation.

A :class:`Flow` represents one job's traffic across the network during its
communication phase. The fluid models treat a flow as infinitely divisible
traffic along a fixed path. Weight and priority are the levers the paper's
mechanisms pull: static-weighted unfairness scales ``weight``; the switch
priority-queue mechanism sets ``priority``; the adaptively-unfair congestion
control derives an effective weight from ``progress`` (§4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ConfigError
from .topology import Link


@dataclass
class Flow:
    """A fluid flow with a fixed route.

    Attributes:
        flow_id: Unique identifier (stable across allocation rounds).
        src: Source host name.
        dst: Destination host name.
        links: Directed links the flow traverses, in order.
        weight: Relative share weight for weighted-fair policies (> 0).
        priority: Strict priority class; higher values are served first.
        rate_cap: Optional cap in bytes/s (e.g. sender NIC or app limit).
        job_id: Identifier of the training job this flow belongs to.
        progress: Fraction of the current communication phase already sent,
            in [0, 1]; drives the adaptively-unfair policy.
    """

    flow_id: str
    src: str
    dst: str
    links: List[Link] = field(default_factory=list)
    weight: float = 1.0
    priority: int = 0
    rate_cap: Optional[float] = None
    job_id: str = ""
    progress: float = 0.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError(f"flow {self.flow_id}: weight must be > 0")
        if self.rate_cap is not None and self.rate_cap <= 0:
            raise ConfigError(f"flow {self.flow_id}: rate_cap must be > 0")
        if not 0.0 <= self.progress <= 1.0:
            raise ConfigError(f"flow {self.flow_id}: progress not in [0, 1]")

    def __hash__(self) -> int:
        return hash(self.flow_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Flow):
            return NotImplemented
        return self.flow_id == other.flow_id

    def traverses(self, link: Link) -> bool:
        """Whether this flow crosses ``link``."""
        return link in self.links
