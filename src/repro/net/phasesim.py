"""Phase-level event simulation of ML training jobs on a network.

Jobs alternate compute phases (no traffic) and communication phases
(``comm_bytes`` injected along the job's route). Whenever the set of
communicating jobs changes — or, for progress-dependent policies, on a
periodic tick — the simulator asks the share policy for weights/priorities
and the fluid allocator for rates. Between such events rates are constant,
so phase completions are computed *exactly*; there is no time-stepping
error. This is the engine behind Table 1, Figure 1d and Figure 2.

The on-off state machine itself lives in
:class:`repro.core.lifecycle.JobLifecycle`, shared with the fluid and
engine tiers; this module drives it from scheduled events and adds the
network: routed flows, the share policy, and the fluid rate allocator.

The sliding effect the paper describes needs no special code: with a
weighted (unfair) policy, the favoured job's communication phase ends
earlier, its next compute phase starts earlier, and after a few iterations
the jobs' phases interleave — exactly the Figure 2b dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..core.lifecycle import Gate, JobLifecycle, JobState
from ..core.timeline import IterationSample, JobTimeline
from ..errors import ConfigError, SimulationError, WorkloadError
from ..faults.events import (  # simlint: disable=ARCH001 - phase sim applies injection schedules directly; fault event types pending a layer move
    CAPACITY_EVENT_TYPES,
    InjectionSchedule,
    RateChange,
)
from ..faults.runtime import build_warp  # simlint: disable=ARCH001 - same inversion as above
from ..sim.engine import Simulator
from ..sim.rng import RandomStreams
from ..sim.trace import StepFunction
from ..telemetry import session as _telemetry_session
from ..telemetry.trace import (
    KIND_COMM,
    KIND_FAULT,
    KIND_ITERATION,
    KIND_PHASE,
    KIND_RATE,
)
from .flows import Flow
from .fluid import FluidAllocator
from .routing import Router
from .topology import Topology

if TYPE_CHECKING:  # imported lazily to avoid a package import cycle
    from ..cc.base import SharePolicy
    from ..workloads.job import JobSpec

#: Residual bytes below which a communication phase counts as finished.
_BYTES_EPSILON = 1.0

#: Backwards-compatible name for the canonical per-iteration record.
IterationRecord = IterationSample

__all__ = [
    "Gate",
    "IterationRecord",
    "IterationSample",
    "JobRun",
    "JobState",
    "JobTimeline",
    "PhaseLevelSimulator",
    "SimulationResult",
]


class JobRun:
    """Runtime state of one job inside the simulator.

    Thin shell around the shared :class:`JobLifecycle`: it adds what is
    network-specific — the routed flows and the rate trace — and
    delegates every lifecycle question to the state machine.
    """

    def __init__(
        self,
        spec: JobSpec,
        flows: List[Flow],
        n_iterations: int,
        start_offset: float,
        gate: Optional[Gate],
        rng: np.random.Generator,
    ) -> None:
        self.spec = spec
        #: Plain attribute (not a delegating property): it is read in
        #: the simulator's per-event telemetry paths.
        self.job_id = spec.job_id
        #: The job's flows. Classic jobs have one; ring-allreduce jobs
        #: have one per hop, moving in lockstep (synchronous collective).
        self.flows = flows
        #: The primary flow (handed to policy hooks); plain attribute
        #: for the same hot-path reason as ``job_id``. The engine
        #: backend runs flowless jobs, hence the ``None`` fallback.
        self.flow = flows[0] if flows else None
        self.lifecycle = JobLifecycle.for_spec(
            spec,
            n_iterations=n_iterations,
            start_offset=start_offset,
            gate=gate,
            rng=rng,
        )
        self.rate_trace = StepFunction(0.0, name=f"rate:{spec.job_id}")
        self._finish_event = None

    @property
    def timeline(self) -> JobTimeline:
        """The job's canonical iteration record."""
        return self.lifecycle.timeline

    @property
    def records(self) -> List[IterationSample]:
        """Completed iterations (the timeline's samples)."""
        return self.lifecycle.timeline.samples

    @property
    def state(self) -> JobState:
        """Current lifecycle state."""
        return self.lifecycle.state

    @state.setter
    def state(self, value: JobState) -> None:
        self.lifecycle.state = value

    @property
    def done(self) -> bool:
        """Whether all requested iterations completed."""
        return self.lifecycle.done

    @property
    def iterations_done(self) -> int:
        """Completed iterations."""
        return self.lifecycle.iterations_done

    @property
    def n_iterations(self) -> int:
        """Requested iteration count."""
        return self.lifecycle.n_iterations

    @property
    def start_offset(self) -> float:
        """Simulation time of the first compute phase."""
        return self.lifecycle.start_offset

    @property
    def gate(self) -> Optional[Gate]:
        """The job's admission gate, if any."""
        return self.lifecycle.gate

    @property
    def segment_index(self) -> int:
        """Index of the current sub-phase within the iteration."""
        return self.lifecycle.segment_index

    @property
    def n_segments(self) -> int:
        """Sub-phases per iteration (1 for the classic on-off job)."""
        return self.lifecycle.n_segments

    @property
    def comm_sent(self) -> float:
        """Bytes credited toward the current communication segment."""
        return self.lifecycle.comm_sent

    @property
    def compute_factor(self) -> float:
        """This iteration's multiplicative compute jitter."""
        return self.lifecycle.compute_factor

    def iteration_times(self, skip: int = 0) -> np.ndarray:
        """Durations of completed iterations, seconds."""
        return self.lifecycle.timeline.iteration_times(skip)

    def sample_compute_factor(self) -> float:
        """Per-iteration multiplicative compute jitter (1.0 when none)."""
        return self.lifecycle.sample_compute_factor()

    def segment_compute_time(self) -> float:
        """Jittered compute time of the current segment."""
        return self.lifecycle.segment_compute_time()

    def segment_comm_bytes(self) -> float:
        """Communication bytes of the current segment."""
        return self.lifecycle.segment_comm_bytes()


@dataclass
class SimulationResult:
    """Everything a phase-level run produced.

    Attributes:
        jobs: Completed job runs keyed by job id.
        link_loads: Piecewise-constant total load on every traversed link.
        duration: Simulation time at which the run ended.
    """

    jobs: Dict[str, JobRun] = field(default_factory=dict)
    link_loads: Dict[str, StepFunction] = field(default_factory=dict)
    duration: float = 0.0

    def timeline(self, job_id: str) -> JobTimeline:
        """One job's canonical timeline."""
        return self.jobs[job_id].timeline

    def timelines(self) -> Dict[str, JobTimeline]:
        """Every job's timeline, keyed by job id."""
        return {job_id: run.timeline for job_id, run in self.jobs.items()}

    def iteration_times(self, job_id: str) -> np.ndarray:
        """Iteration durations for one job, seconds."""
        return self.timeline(job_id).iteration_times()

    def mean_iteration_time(self, job_id: str, skip: int = 0) -> float:
        """Mean iteration time, optionally skipping warm-up iterations."""
        return self.timeline(job_id).mean_iteration_time(skip)

    def median_iteration_time(self, job_id: str, skip: int = 0) -> float:
        """Median iteration time, optionally skipping warm-up iterations."""
        return self.timeline(job_id).median_iteration_time(skip)


class PhaseLevelSimulator:
    """Runs training jobs over a topology under a share policy."""

    def __init__(
        self,
        topology: Topology,
        policy: "SharePolicy",
        router: Optional[Router] = None,
        allocator: Optional[FluidAllocator] = None,
        seed: int = 0,
        telemetry: Optional["_telemetry_session.Telemetry"] = None,
    ) -> None:
        self.topology = topology
        self.policy = policy
        self.router = router if router is not None else Router(topology)
        self.allocator = allocator if allocator is not None else FluidAllocator()
        self._streams = RandomStreams(seed)
        self.telemetry = _telemetry_session.resolve(telemetry)
        self._sim = Simulator(telemetry=self.telemetry)
        self._realloc_counter = self.telemetry.counter(
            "phasesim.reallocations"
        )
        self._iteration_counter = self.telemetry.counter(
            "phasesim.iterations"
        )
        self._iteration_histogram = self.telemetry.histogram(
            "phasesim.iteration_seconds"
        )
        self._jobs: List[JobRun] = []
        self._active: List[JobRun] = []
        self._rates: Dict[JobRun, float] = {}
        self._last_progress_update = 0.0
        self._link_loads: Dict[str, StepFunction] = {}
        self._tick_event = None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def add_job(
        self,
        spec: JobSpec,
        src: str,
        dst: str,
        n_iterations: int,
        start_offset: float = 0.0,
        gate: Optional[Gate] = None,
    ) -> JobRun:
        """Register a job whose traffic flows ``src -> dst``.

        Args:
            spec: The job's phase profile.
            src: Sending host.
            dst: Receiving host.
            n_iterations: Iterations to run before the job stops.
            start_offset: Simulation time of the first compute phase.
            gate: Optional flow-scheduling gate (§4, direction iii).
        """
        return self._register(
            spec, [(src, dst)], n_iterations, start_offset, gate
        )

    def add_ring_job(
        self,
        spec: JobSpec,
        worker_hosts: Sequence[str],
        n_iterations: int,
        start_offset: float = 0.0,
        gate: Optional[Gate] = None,
    ) -> JobRun:
        """Register a ring-allreduce job across ``worker_hosts``.

        One flow is created per ring hop between *distinct* hosts
        (including the closing hop back to the first worker). Ring
        allreduce is synchronous: every hop carries the same bytes and
        the collective advances at the rate of the slowest hop, which is
        exactly how the simulator treats the job's flows.
        """
        hosts = list(worker_hosts)
        if len(hosts) < 2:
            raise ConfigError("a ring job needs at least two workers")
        pairs = []
        ring = hosts + [hosts[0]]
        for a, b in zip(ring, ring[1:]):
            if a != b:
                pairs.append((a, b))
        if not pairs:
            raise ConfigError("ring workers must span at least two hosts")
        return self._register(
            spec, pairs, n_iterations, start_offset, gate
        )

    def _register(
        self,
        spec: JobSpec,
        endpoints: Sequence[tuple],
        n_iterations: int,
        start_offset: float,
        gate: Optional[Gate],
    ) -> JobRun:
        if n_iterations < 1:
            raise WorkloadError("n_iterations must be >= 1")
        if start_offset < 0:
            raise ConfigError("start_offset must be >= 0")
        if any(run.job_id == spec.job_id for run in self._jobs):
            raise ConfigError(f"duplicate job id {spec.job_id!r}")
        flows: List[Flow] = []
        for index, (src, dst) in enumerate(endpoints):
            links = self.router.route(
                src, dst, flow_label=f"{spec.job_id}:{index}"
            )
            flows.append(
                Flow(
                    flow_id=f"flow:{spec.job_id}:{index}",
                    src=src,
                    dst=dst,
                    links=links,
                    job_id=spec.job_id,
                )
            )
        run = JobRun(
            spec=spec,
            flows=flows,
            n_iterations=n_iterations,
            start_offset=start_offset,
            gate=gate,
            rng=self._streams.get(f"job:{spec.job_id}"),
        )
        self._jobs.append(run)
        for flow in flows:
            for link in flow.links:
                self._link_loads.setdefault(
                    link.name, StepFunction(0.0, name=f"load:{link.name}")
                )
        return run

    def install_faults(
        self, schedule: Optional[InjectionSchedule]
    ) -> None:
        """Arm an injection schedule on the simulator clock.

        Call after every :meth:`add_job`, before :meth:`run`. Capacity
        events (rate changes, failures, PFC storms — the latter degrade
        to transient failures in this tier, which has no PFC model)
        become boundary callbacks that mutate the named link's capacity
        and trigger a reallocation; job events and latency spikes become
        lifecycle warps. Link names must exist in the topology; job
        events naming unknown jobs are ignored (a schedule may span more
        jobs than one placement runs).
        """
        if schedule is None or schedule.is_empty:
            return
        known = {link.name for link in self.topology.links}
        for name in schedule.link_names():
            if name not in known:
                raise ConfigError(
                    f"fault schedule names unknown link {name!r}"
                )
        for event in schedule.events:
            if not isinstance(event, CAPACITY_EVENT_TYPES):
                continue
            # Directed topologies may reuse a name per direction; the
            # fault hits every link carrying it.
            targets = [
                link for link in self.topology.links
                if link.name == event.link
            ]
            for link in targets:
                base = link.capacity
                faulted = (
                    base * event.factor
                    if isinstance(event, RateChange)
                    else 0.0
                )
                # priority=-1: capacity flips before any same-time job
                # event sees the link, mirroring the fluid tiers where
                # the window starts at the tick boundary.
                self._sim.schedule_at(
                    event.start, self._apply_link_fault,
                    link, faulted, event.kind, "start", priority=-1,
                )
                self._sim.schedule_at(
                    event.end, self._apply_link_fault,
                    link, base, event.kind, "end", priority=-1,
                )
        for run in self._jobs:
            link_names = sorted({
                link.name for flow in run.flows for link in flow.links
            })
            warp = build_warp(schedule, run.job_id, link_names)
            if warp is not None:
                run.lifecycle.warp = warp

    def _apply_link_fault(
        self, link, capacity: float, kind: str, edge: str
    ) -> None:
        link.capacity = capacity
        if self.telemetry.enabled:
            self.telemetry.event(
                KIND_FAULT,
                t=self._sim.now,
                fault=kind,
                target=link.name,
                edge=edge,
                capacity=capacity,
            )
        self._reallocate()

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> SimulationResult:
        """Execute the simulation and collect results.

        Runs until every job finishes its iterations or the clock reaches
        ``until``.
        """
        if not self._jobs:
            raise SimulationError("add at least one job before run()")
        self.policy.prepare(
            [flow for run in self._jobs for flow in run.flows]
        )
        for run in self._jobs:
            self._sim.schedule_at(run.start_offset, self._begin_iteration, run)
        end_time = self._sim.run(until=until)
        return SimulationResult(
            jobs={run.job_id: run for run in self._jobs},
            link_loads=self._link_loads,
            duration=end_time,
        )

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------

    def _begin_iteration(self, run: JobRun) -> None:
        lifecycle = run.lifecycle
        compute_time = lifecycle.begin_iteration(self._sim.now)
        if self.telemetry.enabled:
            self.telemetry.event(
                KIND_PHASE,
                t=self._sim.now,
                job=run.job_id,
                state=JobState.COMPUTE.value,
                iteration=len(lifecycle.timeline),
            )
        self._sim.schedule(compute_time, self._finish_compute, run)

    def _finish_compute(self, run: JobRun) -> None:
        now = self._sim.now
        lifecycle = run.lifecycle
        if lifecycle.gate is None:  # ungated fast path
            self._begin_comm(run)
            return
        allowed = lifecycle.release_time(now)
        if allowed > now:
            lifecycle.enter_waiting()
            if self.telemetry.enabled:
                self.telemetry.event(
                    KIND_PHASE,
                    t=now,
                    job=run.job_id,
                    state=JobState.WAITING.value,
                    until=allowed,
                )
            self._sim.schedule_at(allowed, self._begin_comm, run)
            return
        self._begin_comm(run)

    def _begin_comm(self, run: JobRun) -> None:
        run.lifecycle.begin_comm(self._sim.now)
        if self.telemetry.enabled:
            self.telemetry.event(
                KIND_PHASE,
                t=self._sim.now,
                job=run.job_id,
                state=JobState.COMM.value,
                segment=run.lifecycle.segment_index,
            )
        for flow in run.flows:
            flow.progress = 0.0
        self.policy.on_phase_start(run.flow)
        self._active.append(run)
        self._reallocate()

    def _finish_comm(self, run: JobRun) -> None:
        now = self._sim.now
        run._finish_event = None
        self._advance_progress(now)
        lifecycle = run.lifecycle
        # Guard against spurious events racing a reallocation.
        if lifecycle.comm_budget - lifecycle.comm_sent > _BYTES_EPSILON:
            self._reallocate()
            return
        self.policy.on_phase_end(run.flow)
        self._active.remove(run)
        self._rates.pop(run, None)
        run.rate_trace.set(now, 0.0)
        if self.telemetry.enabled:
            self.telemetry.event(
                KIND_COMM,
                t=now,
                job=run.job_id,
                flow=run.flow.flow_id,
                segment=lifecycle.segment_index,
                bytes=lifecycle.comm_budget,
            )
        if lifecycle.has_more_segments:
            # More sub-phases this iteration (layer-wise allreduce).
            compute_time = lifecycle.advance_segment(now)
            self._sim.schedule(compute_time, self._finish_compute, run)
            self._reallocate()
            return
        sample = lifecycle.close_iteration(now)
        if self.telemetry.enabled:
            self._iteration_counter.inc()
            self._iteration_histogram.observe(sample.duration)
            self.telemetry.event(
                KIND_ITERATION,
                t=now,
                job=run.job_id,
                index=sample.index,
                duration=sample.duration,
                comm_duration=sample.comm_duration,
            )
        if lifecycle.state is not JobState.DONE:
            self._begin_iteration(run)
        self._reallocate()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def _advance_progress(self, now: float) -> None:
        """Credit bytes sent since the last rate change to each flow."""
        dt = now - self._last_progress_update
        if dt > 0:
            rates = self._rates
            for run in self._active:
                # Inlined lifecycle.credit(): this runs once per active
                # job per rate change — the simulator's hottest loop.
                run.lifecycle.comm_sent += rates.get(run, 0.0) * dt
        self._last_progress_update = now

    def _reallocate(self) -> None:
        now = self._sim.now
        self._advance_progress(now)

        flows: List[Flow] = []
        for run in self._active:
            lifecycle = run.lifecycle
            progress = min(
                lifecycle.comm_sent / lifecycle.comm_budget, 1.0
            )
            for flow in run.flows:
                flow.progress = progress
                flow.weight = self.policy.weight_of(flow)
                flow.priority = self.policy.priority_of(flow)
                flow.rate_cap = None  # reset any prior lockstep cap
                flows.append(flow)

        allocation = self.allocator.allocate(flows)

        def job_rate(run: JobRun) -> float:
            # Synchronous collectives advance at the slowest hop.
            return min(allocation.rate_of(flow) for flow in run.flows)

        if any(len(run.flows) > 1 for run in self._active):
            # Lockstep redistribution: cap every hop of a multi-flow job
            # at its slowest hop's rate and re-allocate once, so flows
            # sharing links with the bottleneck hop reclaim the slack.
            for run in self._active:
                rate = job_rate(run)
                if rate > 0:
                    for flow in run.flows:
                        flow.rate_cap = rate
            allocation = self.allocator.allocate(flows)

        # Update rates and reschedule each active job's completion.
        self._realloc_counter.inc()
        for run in self._active:
            rate = job_rate(run)
            if self.telemetry.enabled and rate != self._rates.get(run):
                self.telemetry.event(
                    KIND_RATE,
                    t=now,
                    job=run.job_id,
                    flow=run.flow.flow_id,
                    rate=rate,
                )
            self._rates[run] = rate
            run.rate_trace.set(now, rate)
            if run._finish_event is not None:
                self._sim.cancel(run._finish_event)
                run._finish_event = None
            lifecycle = run.lifecycle
            remaining = lifecycle.comm_budget - lifecycle.comm_sent
            if remaining <= _BYTES_EPSILON:
                run._finish_event = self._sim.schedule(
                    0.0, self._finish_comm, run
                )
            elif rate > 0:
                run._finish_event = self._sim.schedule(
                    remaining / rate, self._finish_comm, run
                )
            # rate == 0 (starved by a higher priority class): no event; the
            # next state change will reallocate and reschedule.

        self._record_link_loads(now, allocation)
        self._manage_tick()

    def _record_link_loads(self, now: float, allocation) -> None:
        loads: Dict[str, float] = {name: 0.0 for name in self._link_loads}
        for run in self._active:
            rate = self._rates.get(run, 0.0)
            for flow in run.flows:
                for link in flow.links:
                    loads[link.name] += rate
        for name, load in loads.items():
            self._link_loads[name].set(now, load)

    def _manage_tick(self) -> None:
        """Keep a periodic reallocation tick alive for adaptive policies."""
        interval = self.policy.reallocation_interval
        if interval is None:
            return
        if self._tick_event is not None:
            self._sim.cancel(self._tick_event)
            self._tick_event = None
        # Only re-arm while some active job is actually moving: with
        # every rate at zero (e.g. a failed link) progress cannot change,
        # so a tick would reschedule itself forever and an unbounded run
        # would never drain its event queue. Whatever external event revives a
        # flow (fault boundary, phase change) reallocates and re-arms.
        if self._active and any(
            self._rates.get(run, 0.0) > 0.0 for run in self._active
        ):
            self._tick_event = self._sim.schedule(
                interval, self._tick, priority=1
            )

    def _tick(self) -> None:
        self._tick_event = None
        if self._active:
            self._reallocate()
