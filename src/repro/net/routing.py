"""Routing: shortest-path and ECMP route selection.

The paper's placement discussion (§4) notes that the scheduler must learn
network routes ("e.g. ECMP routing decisions") before it can reason about
which jobs share which links. :class:`EcmpRouter` models switch-style ECMP:
among all shortest paths it picks one by a deterministic hash of the flow
five-tuple surrogate ``(src, dst, flow_label)``, so the same flow is always
routed the same way, while different flows spread across equal-cost paths.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from ..errors import RoutingError
from .topology import Link, Topology


class Router:
    """Deterministic single-shortest-path routing."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._graph = topology.graph()
        self._path_cache: Dict[Tuple[str, str], List[str]] = {}

    @property
    def topology(self) -> Topology:
        """The topology this router routes over."""
        return self._topology

    def route(self, src: str, dst: str, flow_label: str = "") -> List[Link]:
        """Return the links along the route from ``src`` to ``dst``.

        Raises:
            RoutingError: if no path exists.
        """
        return self._topology.path_links(self.node_path(src, dst, flow_label))

    def node_path(self, src: str, dst: str, flow_label: str = "") -> List[str]:
        """Return the node sequence of the route (see :meth:`route`)."""
        key = (src, dst)
        if key not in self._path_cache:
            try:
                self._path_cache[key] = nx.shortest_path(self._graph, src, dst)
            except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
                raise RoutingError(f"no route {src} -> {dst}") from exc
        return self._path_cache[key]


class EcmpRouter(Router):
    """Equal-cost multipath routing with deterministic flow hashing."""

    def __init__(self, topology: Topology, salt: int = 0) -> None:
        super().__init__(topology)
        self._salt = salt
        self._ecmp_cache: Dict[Tuple[str, str], List[List[str]]] = {}

    def equal_cost_paths(self, src: str, dst: str) -> List[List[str]]:
        """All shortest node paths between ``src`` and ``dst``, sorted."""
        key = (src, dst)
        if key not in self._ecmp_cache:
            try:
                paths = sorted(nx.all_shortest_paths(self._graph, src, dst))
            except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
                raise RoutingError(f"no route {src} -> {dst}") from exc
            self._ecmp_cache[key] = paths
        return self._ecmp_cache[key]

    def node_path(self, src: str, dst: str, flow_label: str = "") -> List[str]:
        """Pick one equal-cost path by hashing the flow identity."""
        paths = self.equal_cost_paths(src, dst)
        if len(paths) == 1:
            return paths[0]
        digest = hashlib.sha256(
            f"{self._salt}|{src}|{dst}|{flow_label}".encode("utf-8")
        ).digest()
        index = int.from_bytes(digest[:8], "little") % len(paths)
        return paths[index]


def links_shared_by(
    router: Router,
    endpoints: Sequence[Tuple[str, str, str]],
) -> Dict[Link, List[int]]:
    """Map each link to the indices of the flows routed over it.

    Args:
        router: Router used to resolve each flow's path.
        endpoints: ``(src, dst, flow_label)`` triples, one per flow.

    Returns:
        ``{link: [flow indices]}`` including only links carrying >= 1 flow.
    """
    sharing: Dict[Link, List[int]] = {}
    for index, (src, dst, label) in enumerate(endpoints):
        for link in router.route(src, dst, label):
            sharing.setdefault(link, []).append(index)
    return sharing
