"""The online cluster service (ROADMAP item 3).

A long-lived, heap-driven scheduler: jobs *arrive* (are placed, queued,
or rejected), *depart* (free their GPUs and links), and queued jobs
*retry* deterministically after every departure. Placement feasibility is
GPU capacity (the policy's concern); compatibility is tracked live by an
:class:`repro.core.incremental.IncrementalCompatibilityEngine`, so each
admission is audited *cluster-wide* — one rotation per job across all its
links — rather than link-by-link, and untouched connected components are
never re-solved.

Event ordering at equal timestamps is departures → retries → arrivals
(capacity frees before anyone tries to use it), with a submission
sequence number as the final tie-break — the whole run is a pure
function of the arrival schedule, the policy, and the seed.

Every decision produces an :class:`AdmissionRecord`; the aggregate
:class:`ServiceStats` carries the admission rate, compatibility rate and
a slowdown proxy (1 + the fraction of the job's own circle colliding
with its neighbours' live phases). Placement latency is wall-clock and
therefore flows only into telemetry histograms (``service.place_ms``),
never into result data — runs stay byte-deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.compatibility import CompatibilityChecker
from ..core.incremental import IncrementalCompatibilityEngine
from ..errors import PlacementError, SimulationError
from ..telemetry import session as _telemetry_session
from ..units import to_milliseconds
from ..workloads.traces import JobArrival
from .cluster import ClusterState
from .placement import CompatibilityAwarePlacement, PlacementPolicy

#: Event kinds, in same-timestamp processing order.
EVENT_DEPARTURE = "departure"
EVENT_RETRY = "retry"
EVENT_ARRIVAL = "arrival"

_PRIORITY = {EVENT_DEPARTURE: 0, EVENT_RETRY: 1, EVENT_ARRIVAL: 2}

#: Seconds per simulated day (for sustained-throughput reporting).
SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class AdmissionRecord:
    """One admission decision, fully deterministic.

    Attributes:
        time: Simulated decision time, seconds.
        job_id: The job concerned.
        outcome: ``"admitted"``, ``"queued"`` or ``"rejected"``.
        attempt: 0 on first placement, ``n`` after ``n`` queue retries.
        hosts: Hosts bound on admission (empty otherwise).
        links: Link names of the aggregate flow (empty for rack-local).
        compatible: Cluster-wide verdict for the job's component (None
            when not admitted).
        method: How the verdict was reached (``screen``/``dfs``/
            ``annealing``/``unsat``/``local``...).
        slowdown_proxy: 1.0 for compatible admissions; 1 + the colliding
            fraction of the job's circle otherwise.
        violated: Links of the job's component still seeing simultaneous
            communication after this admission.
        queue_depth: Queue length *after* this decision.
        concurrent: Running jobs *after* this decision.
    """

    time: float
    job_id: str
    outcome: str
    attempt: int = 0
    hosts: Tuple[str, ...] = ()
    links: Tuple[str, ...] = ()
    compatible: Optional[bool] = None
    method: str = ""
    slowdown_proxy: float = 1.0
    violated: Tuple[str, ...] = ()
    queue_depth: int = 0
    concurrent: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form for run results."""
        return {
            "time": self.time,
            "job_id": self.job_id,
            "outcome": self.outcome,
            "attempt": self.attempt,
            "hosts": list(self.hosts),
            "links": list(self.links),
            "compatible": self.compatible,
            "method": self.method,
            "slowdown_proxy": self.slowdown_proxy,
            "violated": list(self.violated),
            "queue_depth": self.queue_depth,
            "concurrent": self.concurrent,
        }


@dataclass
class ServiceStats:
    """Aggregate outcome of one service run.

    ``submitted`` counts arrival events processed; ``queued`` counts
    enqueue decisions (a job later admitted from the queue contributes to
    both ``queued`` and ``admitted``).
    """

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    queued: int = 0
    retry_admissions: int = 0
    departures: int = 0
    compatible_admissions: int = 0
    incompatible_admissions: int = 0
    peak_concurrent: int = 0
    peak_queue_depth: int = 0
    horizon: float = 0.0
    records: List[AdmissionRecord] = field(default_factory=list)

    @property
    def admission_rate(self) -> float:
        """Fraction of submitted jobs eventually admitted."""
        if self.submitted == 0:
            return 1.0
        return self.admitted / self.submitted

    @property
    def compatibility_rate(self) -> float:
        """Fraction of admissions that kept their component compatible."""
        if self.admitted == 0:
            return 1.0
        return self.compatible_admissions / self.admitted

    @property
    def mean_slowdown_proxy(self) -> float:
        """Mean slowdown proxy over admitted jobs (NaN when none)."""
        proxies = [
            record.slowdown_proxy
            for record in self.records
            if record.outcome == "admitted"
        ]
        if not proxies:
            return float("nan")
        return sum(proxies) / len(proxies)

    @property
    def admitted_per_day(self) -> float:
        """Admissions normalized to one simulated day."""
        if self.horizon <= 0:
            return 0.0
        return self.admitted * SECONDS_PER_DAY / self.horizon


class ClusterService:
    """Event-driven online scheduler over one cluster."""

    def __init__(
        self,
        cluster: ClusterState,
        policy: PlacementPolicy,
        checker: Optional[CompatibilityChecker] = None,
        engine: Optional[IncrementalCompatibilityEngine] = None,
        queue_limit: int = 16,
        seed: int = 0,
    ) -> None:
        """Create the service.

        Args:
            cluster: GPU/link state; must be exclusively driven by this
                service once the first event is processed.
            policy: Placement policy. A
                :class:`CompatibilityAwarePlacement` without an engine is
                wired to this service's engine so candidate scoring uses
                cached feasible sets instead of per-link solver calls.
            checker: Circle profiler shared with the engine.
            engine: Incremental compatibility engine (constructed from
                ``checker``/``seed`` when omitted).
            queue_limit: Bounded admission queue; 0 rejects immediately.
            seed: Engine seed (component solves).
        """
        if queue_limit < 0:
            raise SimulationError("queue_limit must be >= 0")
        self.cluster = cluster
        self.policy = policy
        if engine is None:
            engine = IncrementalCompatibilityEngine(
                checker=checker, seed=seed
            )
        elif checker is not None and engine.checker is not checker:
            raise SimulationError(
                "pass either a checker or an engine, not both"
            )
        self.engine = engine
        if (
            isinstance(policy, CompatibilityAwarePlacement)
            and policy.engine is None
        ):
            policy.engine = engine
        self.queue_limit = queue_limit
        self.stats = ServiceStats()
        self._heap: List[Tuple[float, int, int, str, Any]] = []
        self._seq = 0
        self._queue: List[Tuple[JobArrival, int]] = []
        self._active: Dict[str, float] = {}
        self._retry_time: Optional[float] = None
        self._now = 0.0

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------

    def submit(self, arrival: JobArrival) -> None:
        """Schedule one arrival event."""
        if arrival.time < 0:
            raise SimulationError("arrival time must be >= 0")
        if arrival.lifetime <= 0:
            raise SimulationError("arrival lifetime must be > 0")
        self._push(arrival.time, EVENT_ARRIVAL, arrival)

    def submit_all(self, arrivals: Sequence[JobArrival]) -> None:
        """Schedule a whole arrival stream."""
        for arrival in arrivals:
            self.submit(arrival)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> ServiceStats:
        """Drain the event heap (optionally up to ``until`` seconds)."""
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            time, _, _, kind, payload = heapq.heappop(self._heap)
            self._now = time
            if kind == EVENT_ARRIVAL:
                self._handle_arrival(time, payload, attempt=0)
            elif kind == EVENT_DEPARTURE:
                self._handle_departure(time, payload)
            else:
                self._handle_retry(time)
        self.stats.horizon = until if until is not None else self._now
        return self.stats

    @property
    def concurrent(self) -> int:
        """Jobs currently running."""
        return len(self._active)

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting in the admission queue."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _push(self, time: float, kind: str, payload: Any) -> None:
        heapq.heappush(
            self._heap, (time, _PRIORITY[kind], self._seq, kind, payload)
        )
        self._seq += 1

    def _try_place(self, arrival: JobArrival) -> Optional[List[str]]:
        """One placement attempt, timed into the latency histogram."""
        telemetry = _telemetry_session.current()
        with telemetry.span("service.place") as span:
            try:
                hosts = self.policy.place(
                    self.cluster, arrival.spec, arrival.n_workers
                )
            except PlacementError:
                hosts = None
        if telemetry.enabled:
            telemetry.histogram("service.place_ms").observe(
                to_milliseconds(span.duration)
            )
        return hosts

    def _handle_arrival(
        self, time: float, arrival: JobArrival, attempt: int
    ) -> None:
        self.stats.submitted += 1
        hosts = self._try_place(arrival)
        if hosts is not None:
            self._admit(time, arrival, hosts, attempt)
            return
        if len(self._queue) < self.queue_limit:
            self._queue.append((arrival, attempt))
            self.stats.queued += 1
            self.stats.peak_queue_depth = max(
                self.stats.peak_queue_depth, len(self._queue)
            )
            self._record(time, arrival.spec.job_id, "queued", attempt)
        else:
            self.stats.rejected += 1
            self._record(time, arrival.spec.job_id, "rejected", attempt)

    def _admit(
        self,
        time: float,
        arrival: JobArrival,
        hosts: Sequence[str],
        attempt: int,
    ) -> None:
        spec = arrival.spec
        placed = self.cluster.place(spec, hosts)
        link_names: Tuple[str, ...] = ()
        violated: Tuple[str, ...] = ()
        if placed.uses_network:
            circle = self.engine.circle(spec)
            link_names = tuple(link.name for link in placed.links)
            clean, fraction = self.engine.candidate_score(
                circle, link_names
            )
            verdict = self.engine.add(circle, link_names)
            compatible = verdict.compatible
            method = verdict.method
            violated = verdict.violated_links
            proxy = 1.0 if compatible else 1.0 + fraction
        else:
            compatible, method, proxy = True, "local", 1.0
        self._active[spec.job_id] = time + arrival.lifetime
        self._push(time + arrival.lifetime, EVENT_DEPARTURE, spec.job_id)
        self.stats.admitted += 1
        if attempt > 0:
            self.stats.retry_admissions += 1
        if compatible:
            self.stats.compatible_admissions += 1
        else:
            self.stats.incompatible_admissions += 1
        self.stats.peak_concurrent = max(
            self.stats.peak_concurrent, len(self._active)
        )
        self._record(
            time,
            spec.job_id,
            "admitted",
            attempt,
            hosts=tuple(hosts),
            links=link_names,
            compatible=compatible,
            method=method,
            slowdown_proxy=proxy,
            violated=violated,
        )

    def _handle_departure(self, time: float, job_id: str) -> None:
        if job_id not in self._active:
            raise SimulationError(f"departure for unknown job {job_id!r}")
        del self._active[job_id]
        job = self.cluster.job(job_id)
        if job.uses_network and job_id in self.engine:
            self.engine.remove(job_id)
        self.cluster.remove(job_id)
        self.stats.departures += 1
        if self._queue and self._retry_time != time:
            self._retry_time = time
            self._push(time, EVENT_RETRY, None)

    def _handle_retry(self, time: float) -> None:
        self._retry_time = None
        pending = list(self._queue)
        self._queue.clear()
        for arrival, attempt in pending:
            hosts = self._try_place(arrival)
            if hosts is None:
                self._queue.append((arrival, attempt + 1))
            else:
                self._admit(time, arrival, hosts, attempt + 1)

    def _record(
        self,
        time: float,
        job_id: str,
        outcome: str,
        attempt: int,
        hosts: Tuple[str, ...] = (),
        links: Tuple[str, ...] = (),
        compatible: Optional[bool] = None,
        method: str = "",
        slowdown_proxy: float = 1.0,
        violated: Tuple[str, ...] = (),
    ) -> None:
        self.stats.records.append(
            AdmissionRecord(
                time=time,
                job_id=job_id,
                outcome=outcome,
                attempt=attempt,
                hosts=hosts,
                links=links,
                compatible=compatible,
                method=method,
                slowdown_proxy=slowdown_proxy,
                violated=violated,
                queue_depth=len(self._queue),
                concurrent=len(self._active),
            )
        )


# ---------------------------------------------------------------------------
# Runner integration (the ``service`` backend's worker-side entry point)
# ---------------------------------------------------------------------------

def run_service_spec(spec) -> "Any":
    """Execute one ``service`` :class:`repro.runner.spec.RunSpec`.

    Options (all plain data, so specs hash and cache):

    * ``arrival_process`` — ``"poisson"`` (default) or ``"trace"``.
    * ``n_arrivals`` / ``mean_interarrival_s`` / ``mean_lifetime_s`` /
      ``lifetime_model`` / ``pareto_shape`` — Poisson-process knobs.
    * ``trace`` — list of arrival rows (see
      :func:`repro.workloads.traces.trace_arrivals`) for trace mode.
    * ``placement`` — ``"random"`` / ``"consolidated"`` /
      ``"compatibility-aware"`` (+ ``max_candidates``).
    * ``topology`` — fabric recipe when ``spec.topology`` is None:
      ``"leaf-spine"`` (default; shaped by ``n_racks`` /
      ``hosts_per_rack``) or ``"fat-tree"`` (shaped by ``fat_tree_k``).
    * ``gpus_per_host`` — GPUs per host in the built cluster.
    * ``cluster_level`` — have the compatibility-aware policy demand the
      §5 cluster-wide unified-circle audit (one rotation per job across
      *all* its links) rather than per-link checks.
    * ``queue_limit`` — admission queue bound.
    """
    from ..net.topology import Topology
    from ..runner.spec import (  # simlint: disable=ARCH001 - lazy import; the online service reuses RunResult for its report format by design
        RunResult,
        safe_content_hash,
    )
    from ..units import gbps
    from ..workloads.traces import poisson_arrivals, trace_arrivals
    from .placement import ConsolidatedPlacement, RandomPlacement

    options = spec.options_dict()
    capacity = spec.capacity or gbps(42)
    topology = spec.topology
    if topology is None:
        recipe = str(options.get("topology", "leaf-spine"))
        if recipe == "leaf-spine":
            topology = Topology.leaf_spine(
                n_racks=int(options.get("n_racks", 8)),
                hosts_per_rack=int(options.get("hosts_per_rack", 2)),
                host_capacity=capacity,
            )
        elif recipe == "fat-tree":
            topology = Topology.fat_tree(
                k=int(options.get("fat_tree_k", 4)),
                host_capacity=capacity,
            )
        else:
            raise SimulationError(
                f"unknown topology recipe {recipe!r} "
                "(expected 'leaf-spine' or 'fat-tree')"
            )
    cluster = ClusterState(
        topology, gpus_per_host=int(options.get("gpus_per_host", 4))
    )
    checker = CompatibilityChecker(capacity=capacity)
    placement = str(options.get("placement", "consolidated"))
    policy: PlacementPolicy
    if placement == "random":
        policy = RandomPlacement(seed=spec.seed)
    elif placement == "consolidated":
        policy = ConsolidatedPlacement()
    elif placement == "compatibility-aware":
        policy = CompatibilityAwarePlacement(
            checker=checker,
            max_candidates=int(options.get("max_candidates", 16)),
            cluster_level=bool(options.get("cluster_level", False)),
        )
    else:
        raise SimulationError(f"unknown placement policy {placement!r}")

    process = str(options.get("arrival_process", "poisson"))
    if process == "poisson":
        arrivals = poisson_arrivals(
            count=int(options.get("n_arrivals", 50)),
            seed=spec.seed,
            mean_interarrival_s=float(
                options.get("mean_interarrival_s", 60.0)
            ),
            mean_lifetime_s=float(options.get("mean_lifetime_s", 600.0)),
            lifetime_model=str(
                options.get("lifetime_model", "exponential")
            ),
            pareto_shape=float(options.get("pareto_shape", 2.5)),
            capacity=capacity,
        )
    elif process == "trace":
        arrivals = trace_arrivals(options.get("trace", ()))
    else:
        raise SimulationError(f"unknown arrival process {process!r}")

    service = ClusterService(
        cluster,
        policy,
        checker=checker,
        queue_limit=int(options.get("queue_limit", 16)),
        seed=spec.seed,
    )
    service.submit_all(arrivals)
    stats = service.run(until=spec.until)
    return RunResult(
        spec_hash=safe_content_hash(spec),
        backend="service",
        label=spec.label,
        data={
            "submitted": stats.submitted,
            "admitted": stats.admitted,
            "rejected": stats.rejected,
            "queued": stats.queued,
            "retry_admissions": stats.retry_admissions,
            "departures": stats.departures,
            "compatible_admissions": stats.compatible_admissions,
            "incompatible_admissions": stats.incompatible_admissions,
            "peak_concurrent": stats.peak_concurrent,
            "peak_queue_depth": stats.peak_queue_depth,
            "horizon": stats.horizon,
            "admission_rate": stats.admission_rate,
            "compatibility_rate": stats.compatibility_rate,
            "mean_slowdown_proxy": stats.mean_slowdown_proxy,
            "engine": service.engine.stats(),
            "records": [record.to_dict() for record in stats.records],
        },
    )
