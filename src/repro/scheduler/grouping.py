"""Partitioning a job population into compatible link groups.

The placement problem, abstracted: a cluster offers a limited number of
bottleneck links (rack-pair uplinks, spine ports); many jobs must be
split among them. The paper wants each link's tenant set *fully
compatible*. :func:`group_jobs` performs first-fit-decreasing bin packing
with the exact incremental checker as the fit test: each group keeps its
members' rotations fixed, and a job joins only if a collision-free
rotation exists against them — so every group ships with a valid
communication schedule at all times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.circle import JobCircle
from ..core.compatibility import CompatibilityChecker
from ..errors import CompatibilityError


@dataclass
class LinkGroup:
    """One link's tenant set with its rotation schedule."""

    index: int
    circles: List[JobCircle] = field(default_factory=list)
    rotations: Dict[str, int] = field(default_factory=dict)

    @property
    def job_ids(self) -> List[str]:
        """Members in admission order."""
        return [circle.job_id for circle in self.circles]

    @property
    def comm_load(self) -> float:
        """Sum of members' communication fractions (a fill level)."""
        return sum(circle.comm_fraction for circle in self.circles)


@dataclass
class GroupingResult:
    """Outcome of packing a population onto links.

    Attributes:
        groups: The compatible groups, one per used link.
        unplaced: Jobs that fit no group within the link budget.
    """

    groups: List[LinkGroup]
    unplaced: List[str] = field(default_factory=list)

    @property
    def placed_count(self) -> int:
        """Jobs successfully grouped."""
        return sum(len(group.circles) for group in self.groups)

    def group_of(self, job_id: str) -> Optional[int]:
        """The group index hosting ``job_id``, or None."""
        for group in self.groups:
            if job_id in group.rotations:
                return group.index
        return None


def group_jobs(
    circles: Sequence[JobCircle],
    max_groups: Optional[int] = None,
    checker: Optional[CompatibilityChecker] = None,
) -> GroupingResult:
    """First-fit-decreasing packing with exact compatibility as the fit.

    Jobs are considered in decreasing communication-fraction order (the
    classic bin-packing heuristic); each tries existing groups in order
    and joins the first that admits it *without re-rotating* the members
    already there. A new group opens while the budget allows; jobs that
    fit nowhere are reported unplaced rather than force-colliding.

    Args:
        circles: The population to pack.
        max_groups: Link budget (None = unlimited).
        checker: Supplies the incremental feasibility test.
    """
    if max_groups is not None and max_groups < 1:
        raise CompatibilityError("max_groups must be >= 1")
    ids = [circle.job_id for circle in circles]
    if len(set(ids)) != len(ids):
        raise CompatibilityError(f"duplicate job ids: {ids}")
    checker = checker if checker is not None else CompatibilityChecker()

    ordered = sorted(circles, key=lambda c: -c.comm_fraction)
    groups: List[LinkGroup] = []
    unplaced: List[str] = []
    for circle in ordered:
        placed = False
        for group in groups:
            result = checker.check_incremental(
                group.circles, group.rotations, circle
            )
            if result.compatible:
                group.circles.append(circle)
                group.rotations[circle.job_id] = result.rotations[
                    circle.job_id
                ]
                placed = True
                break
        if placed:
            continue
        if max_groups is None or len(groups) < max_groups:
            groups.append(
                LinkGroup(
                    index=len(groups),
                    circles=[circle],
                    rotations={circle.job_id: 0},
                )
            )
        else:
            unplaced.append(circle.job_id)
    return GroupingResult(groups=groups, unplaced=unplaced)
