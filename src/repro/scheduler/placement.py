"""Placement policies.

Three policies span the design space the paper discusses:

* :class:`RandomPlacement` — scatter workers anywhere there are free GPUs
  (the pathological baseline).
* :class:`ConsolidatedPlacement` — pack workers into as few racks as
  possible (today's locality-first approach, à la Themis/Gandiva): it
  minimizes the *probability* of sharing a link but ignores *who* is
  shared with when spilling across racks is unavoidable.
* :class:`CompatibilityAwarePlacement` — the paper's proposal: when a job
  must cross racks, prefer uplinks where the set of jobs it would share
  with remains fully compatible; otherwise maximize the compatibility
  score (minimize unavoidable overlap).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.compatibility import CompatibilityChecker
from ..errors import PlacementError
from ..sim.rng import RandomStreams
from ..workloads.job import JobSpec
from .cluster import ClusterState


class PlacementPolicy(abc.ABC):
    """Chooses hosts (one GPU each) for a job's workers."""

    name: str = "policy"

    @abc.abstractmethod
    def place(
        self, cluster: ClusterState, spec: JobSpec, n_workers: int
    ) -> List[str]:
        """Return ``n_workers`` hosts (repeats allowed, rack-ordered).

        Raises:
            PlacementError: when the job cannot be placed.
        """

    @staticmethod
    def _slots_by_rack(cluster: ClusterState) -> Dict[str, List[str]]:
        """Free GPU slots per rack as repeated host names."""
        slots: Dict[str, List[str]] = {}
        for rack, hosts in cluster.hosts_by_rack().items():
            rack_slots = [
                host
                for host in hosts
                for _ in range(cluster.free_gpus(host))
            ]
            if rack_slots:
                slots[rack] = rack_slots
        return slots


class RandomPlacement(PlacementPolicy):
    """Uniformly random free GPU slots."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = RandomStreams(seed).get("random-placement")

    def place(
        self, cluster: ClusterState, spec: JobSpec, n_workers: int
    ) -> List[str]:
        slots = [
            host
            for rack_slots in self._slots_by_rack(cluster).values()
            for host in rack_slots
        ]
        if len(slots) < n_workers:
            raise PlacementError(
                f"{spec.job_id}: {n_workers} workers > {len(slots)} free GPUs"
            )
        picked = list(
            self._rng.choice(len(slots), size=n_workers, replace=False)
        )
        hosts = [slots[i] for i in picked]
        # Rack-order the hosts so the aggregate flow is well-defined.
        rack_of = {
            h: cluster.topology.rack_of(h) or "" for h in sorted(set(hosts))
        }
        hosts.sort(key=lambda h: (rack_of[h], h))
        return hosts


class ConsolidatedPlacement(PlacementPolicy):
    """Fewest racks first (locality-only, Themis-style)."""

    name = "consolidated"

    def place(
        self, cluster: ClusterState, spec: JobSpec, n_workers: int
    ) -> List[str]:
        slots_by_rack = self._slots_by_rack(cluster)
        # A single rack that fits wins outright.
        for rack in sorted(
            slots_by_rack, key=lambda r: len(slots_by_rack[r])
        ):
            if len(slots_by_rack[rack]) >= n_workers:
                return slots_by_rack[rack][:n_workers]
        # Otherwise greedily take the fullest racks.
        hosts: List[str] = []
        for rack in sorted(
            slots_by_rack, key=lambda r: -len(slots_by_rack[r])
        ):
            take = min(n_workers - len(hosts), len(slots_by_rack[rack]))
            hosts.extend(slots_by_rack[rack][:take])
            if len(hosts) == n_workers:
                return hosts
        raise PlacementError(
            f"{spec.job_id}: {n_workers} workers > "
            f"{cluster.total_free_gpus()} free GPUs"
        )


class CompatibilityAwarePlacement(PlacementPolicy):
    """Locality first; compatibility decides among cross-rack spills.

    Candidate placements are generated rack-locally when possible (no
    shared links, trivially safe); otherwise every pair of racks that
    jointly fits the job is scored: a candidate is *clean* if, on every
    uplink the new job would traverse, the set of sharing jobs (existing
    plus new) remains fully compatible. Clean candidates win; otherwise
    the candidate with the highest residual compatibility (lowest overlap
    fraction) is chosen.
    """

    name = "compatibility-aware"

    def __init__(
        self,
        checker: Optional[CompatibilityChecker] = None,
        max_candidates: int = 16,
        cluster_level: bool = False,
        engine=None,
    ) -> None:
        """Create the policy.

        Args:
            checker: Compatibility checker (profiling bandwidth etc.).
            max_candidates: Cross-rack candidate placements to score.
            cluster_level: When True, a candidate is *clean* only if one
                rotation per job satisfies **every** link simultaneously
                (the §5 cluster-level criterion via
                :class:`repro.core.cluster_compat.
                ClusterCompatibilityProblem`); the default checks each
                link independently, which is necessary but not
                sufficient when jobs span several contended links.
            engine: Optional :class:`repro.core.incremental.
                IncrementalCompatibilityEngine` tracking the live
                cluster. When set, candidates are scored against the
                engine's cached feasible sets (cluster-level by
                construction, no per-candidate solver calls);
                :class:`repro.scheduler.service.ClusterService` injects
                its own engine here automatically.
        """
        if max_candidates < 1:
            raise PlacementError("max_candidates must be >= 1")
        self.checker = checker if checker is not None else CompatibilityChecker()
        self.max_candidates = max_candidates
        self.cluster_level = cluster_level
        self.engine = engine

    def place(
        self, cluster: ClusterState, spec: JobSpec, n_workers: int
    ) -> List[str]:
        slots_by_rack = self._slots_by_rack(cluster)
        # Rack-local placement shares no uplinks: always safe.
        for rack in sorted(
            slots_by_rack, key=lambda r: len(slots_by_rack[r])
        ):
            if len(slots_by_rack[rack]) >= n_workers:
                return slots_by_rack[rack][:n_workers]

        candidates = self._cross_rack_candidates(
            slots_by_rack, n_workers
        )
        if not candidates:
            raise PlacementError(
                f"{spec.job_id}: {n_workers} workers > "
                f"{cluster.total_free_gpus()} free GPUs"
            )
        best_hosts: Optional[List[str]] = None
        best_key: Optional[Tuple[int, float]] = None
        for hosts in candidates:
            compatible, overlap = self._score(cluster, spec, hosts)
            key = (0 if compatible else 1, overlap)
            if best_key is None or key < best_key:
                best_key, best_hosts = key, hosts
                if key == (0, 0.0):
                    break
        assert best_hosts is not None
        return best_hosts

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _cross_rack_candidates(
        self,
        slots_by_rack: Dict[str, List[str]],
        n_workers: int,
    ) -> List[List[str]]:
        """Rack pairs (then greedy multi-rack) that fit the job."""
        racks = sorted(slots_by_rack, key=lambda r: -len(slots_by_rack[r]))
        candidates: List[List[str]] = []
        for i, first in enumerate(racks):
            for second in racks[i + 1:]:
                total = len(slots_by_rack[first]) + len(slots_by_rack[second])
                if total < n_workers:
                    continue
                take_first = min(n_workers, len(slots_by_rack[first]))
                hosts = (
                    slots_by_rack[first][:take_first]
                    + slots_by_rack[second][: n_workers - take_first]
                )
                candidates.append(hosts)
                if len(candidates) >= self.max_candidates:
                    return candidates
        if not candidates:
            # Fall back to a greedy spread over many racks.
            hosts = []
            for rack in racks:
                take = min(n_workers - len(hosts), len(slots_by_rack[rack]))
                hosts.extend(slots_by_rack[rack][:take])
                if len(hosts) == n_workers:
                    candidates.append(hosts)
                    break
        return candidates

    def _score(
        self,
        cluster: ClusterState,
        spec: JobSpec,
        hosts: Sequence[str],
    ) -> Tuple[bool, float]:
        """(all-links-compatible, worst overlap fraction) for a candidate."""
        links = cluster.router.route(
            hosts[0], hosts[-1], flow_label=spec.job_id
        )
        if self.engine is not None:
            return self.engine.candidate_score(
                self.engine.circle(spec),
                [link.name for link in links],
            )
        sharing = cluster.jobs_sharing_links_with(links)
        worst_overlap = 0.0
        all_compatible = True
        for link_jobs in sharing.values():
            specs = [job.spec for job in link_jobs if job.uses_network]
            if not specs:
                continue
            result = self.checker.check(specs + [spec])
            if not result.compatible:
                all_compatible = False
                worst_overlap = max(worst_overlap, result.overlap_fraction)
        if all_compatible and self.cluster_level:
            all_compatible = self._cluster_level_clean(cluster, spec, links)
        return all_compatible, worst_overlap

    def _cluster_level_clean(
        self,
        cluster: ClusterState,
        spec: JobSpec,
        links,
    ) -> bool:
        """§5 check: one rotation per job must satisfy every link."""
        from ..core.cluster_compat import ClusterCompatibilityProblem

        network_jobs = [job for job in cluster.jobs if job.uses_network]
        circles = [self.checker.circle(job.spec) for job in network_jobs]
        circles.append(self.checker.circle(spec))
        links_by_job = {
            job.job_id: [link.name for link in job.links]
            for job in network_jobs
        }
        links_by_job[spec.job_id] = [link.name for link in links]
        problem = ClusterCompatibilityProblem.from_assignments(
            circles, links_by_job
        )
        return problem.solve().compatible
