"""Dynamic job arrivals and departures (legacy replay facade).

Historically this module owned a small ad-hoc replay loop; the online
scheduler now lives in :mod:`repro.scheduler.service` as the event-driven
:class:`~repro.scheduler.service.ClusterService`, and :func:`replay` here
is a thin shim over it kept for its simple batch-style interface.

Two behavioural notes versus the original loop:

* The compatibility audit is now **cluster-wide**: each admission is
  judged by whether a single rotation per job can satisfy *every* link of
  the job's connected component (the §5 criterion, via the incremental
  engine), not by checking each link's sharer set independently. The
  per-link audit was necessary but not sufficient — a job can be pairwise
  feasible on each link separately yet have no single phase satisfying
  both; ``tests/test_scheduler_service.py`` pins a fixture where the two
  audits disagree.
* Event ordering is unchanged: a departure at exactly an arrival's time
  frees capacity first (the old ``depart_time <= arrival.time`` sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.compatibility import CompatibilityChecker
from ..workloads.generator import WorkloadGenerator
from ..workloads.traces import JobArrival
from .cluster import ClusterState
from .placement import PlacementPolicy

__all__ = [
    "JobArrival",
    "ReplayStats",
    "arrival_schedule",
    "replay",
]


def arrival_schedule(
    generator: WorkloadGenerator,
    count: int,
    mean_interarrival_s: float = 60.0,
    mean_lifetime_s: float = 600.0,
) -> List[JobArrival]:
    """Draw a Poisson arrival schedule from a workload generator."""
    times = generator.arrival_times(count, mean_interarrival_s)
    arrivals: List[JobArrival] = []
    for index, time in enumerate(times):
        spec = generator.job(f"dyn-{index}")
        arrivals.append(
            JobArrival(
                time=float(time),
                spec=spec,
                n_workers=spec.n_workers,
                lifetime=mean_lifetime_s,
            )
        )
    return arrivals


@dataclass
class ReplayStats:
    """Outcome of replaying an arrival schedule against a policy.

    Attributes:
        placed: Jobs successfully placed.
        rejected: Jobs that did not fit.
        compatible_placements: Placements whose connected component stayed
            cluster-compatible (rack-local placements count — they share
            no link).
        incompatible_placements: Placements whose component admitted no
            zero-overlap rotation assignment.
        incompatible_links: Violated links recorded at each incompatible
            placement, in admission order.
    """

    placed: int = 0
    rejected: int = 0
    compatible_placements: int = 0
    incompatible_placements: int = 0
    incompatible_links: List[str] = field(default_factory=list)

    @property
    def compatibility_rate(self) -> float:
        """Fraction of placements that kept all links compatible."""
        if self.placed == 0:
            return 1.0
        return self.compatible_placements / self.placed


def replay(
    cluster: ClusterState,
    policy: PlacementPolicy,
    arrivals: Sequence[JobArrival],
    checker: Optional[CompatibilityChecker] = None,
) -> ReplayStats:
    """Apply arrivals/departures in time order and audit compatibility.

    Delegates to :class:`~repro.scheduler.service.ClusterService` with a
    zero-length admission queue, so jobs that do not fit are rejected
    immediately — the original replay semantics.
    """
    from .service import ClusterService

    service = ClusterService(
        cluster, policy, checker=checker, queue_limit=0
    )
    ordered = sorted(arrivals, key=lambda a: a.time)
    service.submit_all(ordered)
    # Stop at the last arrival: like the original sweep, jobs outliving
    # it stay placed in ``cluster`` for the caller to inspect.
    until = ordered[-1].time if ordered else None
    outcome = service.run(until=until)
    stats = ReplayStats(
        placed=outcome.admitted,
        rejected=outcome.rejected,
        compatible_placements=outcome.compatible_admissions,
        incompatible_placements=outcome.incompatible_admissions,
    )
    for record in outcome.records:
        if record.outcome == "admitted" and record.compatible is False:
            stats.incompatible_links.extend(record.violated)
    return stats
