"""Dynamic job arrivals and departures.

A lightweight queueing layer over :class:`~repro.scheduler.cluster.
ClusterState`: jobs arrive on a Poisson process, are placed by a policy
(or rejected), and leave after a lifetime. :func:`replay` records, at each
arrival, whether the placement kept every shared link fully compatible —
the statistic the paper's §4 placement argument is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.compatibility import CompatibilityChecker
from ..errors import PlacementError
from ..workloads.generator import WorkloadGenerator
from ..workloads.job import JobSpec
from .cluster import ClusterState
from .placement import PlacementPolicy


@dataclass(frozen=True)
class JobArrival:
    """One job arriving at ``time`` and departing at ``time + lifetime``."""

    time: float
    spec: JobSpec
    n_workers: int
    lifetime: float


def arrival_schedule(
    generator: WorkloadGenerator,
    count: int,
    mean_interarrival_s: float = 60.0,
    mean_lifetime_s: float = 600.0,
) -> List[JobArrival]:
    """Draw a Poisson arrival schedule from a workload generator."""
    times = generator.arrival_times(count, mean_interarrival_s)
    arrivals: List[JobArrival] = []
    for index, time in enumerate(times):
        spec = generator.job(f"dyn-{index}")
        arrivals.append(
            JobArrival(
                time=float(time),
                spec=spec,
                n_workers=spec.n_workers,
                lifetime=mean_lifetime_s,
            )
        )
    return arrivals


@dataclass
class ReplayStats:
    """Outcome of replaying an arrival schedule against a policy.

    Attributes:
        placed: Jobs successfully placed.
        rejected: Jobs that did not fit.
        compatible_placements: Placements where every shared link stayed
            fully compatible (rack-local placements count — they share no
            link).
        incompatible_placements: Placements that created at least one
            incompatible link.
    """

    placed: int = 0
    rejected: int = 0
    compatible_placements: int = 0
    incompatible_placements: int = 0
    incompatible_links: List[str] = field(default_factory=list)

    @property
    def compatibility_rate(self) -> float:
        """Fraction of placements that kept all links compatible."""
        if self.placed == 0:
            return 1.0
        return self.compatible_placements / self.placed


def replay(
    cluster: ClusterState,
    policy: PlacementPolicy,
    arrivals: Sequence[JobArrival],
    checker: Optional[CompatibilityChecker] = None,
) -> ReplayStats:
    """Apply arrivals/departures in time order and audit compatibility."""
    checker = checker if checker is not None else CompatibilityChecker()
    stats = ReplayStats()
    departures: List[tuple[float, str]] = []
    for arrival in sorted(arrivals, key=lambda a: a.time):
        # Free any jobs that completed before this arrival.
        still_running = []
        for depart_time, job_id in departures:
            if depart_time <= arrival.time:
                cluster.remove(job_id)
            else:
                still_running.append((depart_time, job_id))
        departures = still_running

        try:
            hosts = policy.place(cluster, arrival.spec, arrival.n_workers)
        except PlacementError:
            stats.rejected += 1
            continue
        cluster.place(arrival.spec, hosts)
        departures.append(
            (arrival.time + arrival.lifetime, arrival.spec.job_id)
        )
        stats.placed += 1

        # Audit: did this placement keep all its links compatible?
        job = cluster.job(arrival.spec.job_id)
        clean = True
        for link_name, sharers in cluster.jobs_sharing_links_with(
            job.links
        ).items():
            specs = [j.spec for j in sharers if j.uses_network]
            if len(specs) < 2:
                continue
            if not checker.check(specs).compatible:
                clean = False
                stats.incompatible_links.append(link_name)
        if clean:
            stats.compatible_placements += 1
        else:
            stats.incompatible_placements += 1
    return stats
