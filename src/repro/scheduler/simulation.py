"""Cluster-level simulation and slowdown reporting.

Runs every placed job in the phase-level simulator under a chosen share
policy and reports each job's *slowdown* — mean iteration time over its
solo iteration time. Solo time is the paper's yardstick: compatible jobs
under engineered unfairness should approach slowdown 1.0 even on shared
links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..cc.base import SharePolicy
from ..core.timeline import JobTimeline
from ..errors import SimulationError
from ..net.phasesim import PhaseLevelSimulator
from ..units import gbps, to_milliseconds
from .cluster import ClusterState


@dataclass
class ClusterReport:
    """Per-job and aggregate slowdowns of one cluster run.

    Attributes:
        iteration_ms: Mean iteration time per job, milliseconds.
        solo_ms: Solo (dedicated-network) iteration time per job.
        slowdown: ``iteration_ms / solo_ms`` per job.
        policy_name: The share policy that produced this run.
        timelines: Canonical iteration timelines of the simulated jobs
            (single-host jobs never enter the network simulator and
            therefore have none).
    """

    iteration_ms: Dict[str, float] = field(default_factory=dict)
    solo_ms: Dict[str, float] = field(default_factory=dict)
    slowdown: Dict[str, float] = field(default_factory=dict)
    policy_name: str = ""
    timelines: Dict[str, JobTimeline] = field(default_factory=dict)

    @property
    def mean_slowdown(self) -> float:
        """Average slowdown across jobs (NaN for an empty report)."""
        if not self.slowdown:
            return float("nan")
        return float(np.mean(list(self.slowdown.values())))

    @property
    def max_slowdown(self) -> float:
        """Worst job's slowdown (NaN for an empty report)."""
        if not self.slowdown:
            return float("nan")
        return float(max(self.slowdown.values()))

    @property
    def jobs_at_solo_speed(self) -> int:
        """Jobs within 2% of their dedicated-network speed."""
        return sum(1 for s in self.slowdown.values() if s <= 1.02)


class ClusterSimulation:
    """Drives a placed cluster through the phase-level simulator."""

    def __init__(
        self,
        cluster: ClusterState,
        reference_capacity: float = gbps(42),
        seed: int = 0,
        flow_model: str = "aggregate",
    ) -> None:
        """Create the simulation.

        Args:
            cluster: The placed cluster.
            reference_capacity: Bandwidth used for solo-time baselines.
            seed: Simulation seed.
            flow_model: ``"aggregate"`` models each job as one flow from
                its first to its last worker; ``"ring"`` creates one flow
                per ring hop between the job's distinct hosts (synchronous
                ring allreduce — the collective advances at the slowest
                hop).
        """
        if flow_model not in ("aggregate", "ring"):
            raise SimulationError(
                f"unknown flow model {flow_model!r}"
            )
        self.cluster = cluster
        self.reference_capacity = reference_capacity
        self.seed = seed
        self.flow_model = flow_model

    def run(
        self,
        policy: SharePolicy,
        n_iterations: int = 50,
        warmup_iterations: int = 10,
        until: Optional[float] = None,
        stagger: float = 0.005,
        gates: Optional[Dict[str, object]] = None,
        faults=None,
    ) -> ClusterReport:
        """Simulate all placed jobs under ``policy``.

        Jobs that never leave their rack still run through the simulator
        (their flows cross only host links), so rack-local contention on a
        shared host NIC is captured too.

        ``stagger`` offsets each job's start by a few milliseconds (job
        *i* starts at ``i * stagger``): real jobs never start in perfect
        lockstep, and progress-driven policies rely on that asymmetry.
        Set it to 0 for exactly simultaneous starts.

        ``gates`` optionally supplies per-job admission gates (flow
        scheduling), e.g. from a
        :class:`~repro.mechanisms.controller.DeploymentPlan`.

        ``faults`` optionally injects an
        :class:`repro.faults.InjectionSchedule` of perturbations. A job
        starved for the whole run (e.g. behind a link that fails until
        the horizon) reports ``nan`` for its iteration time and
        slowdown instead of crashing the report.
        """
        gates = gates or {}
        jobs = self.cluster.jobs
        if not jobs:
            raise SimulationError("no jobs placed on the cluster")
        if warmup_iterations >= n_iterations:
            raise SimulationError(
                "warmup_iterations must be < n_iterations"
            )
        sim = PhaseLevelSimulator(
            self.cluster.topology, policy, router=self.cluster.router,
            seed=self.seed,
        )
        local_jobs: List[str] = []
        for index, job in enumerate(jobs):
            src, dst = job.endpoints
            if src == dst:
                # Single-host job: no network phase to simulate.
                local_jobs.append(job.job_id)
                continue
            if self.flow_model == "ring":
                distinct_hosts = list(dict.fromkeys(job.hosts))
                sim.add_ring_job(
                    job.spec, distinct_hosts, n_iterations=n_iterations,
                    start_offset=index * stagger,
                    gate=gates.get(job.job_id),
                )
            else:
                sim.add_job(
                    job.spec, src, dst, n_iterations=n_iterations,
                    start_offset=index * stagger,
                    gate=gates.get(job.job_id),
                )
        sim.install_faults(faults)
        report = ClusterReport(policy_name=policy.name)
        result = sim.run(until=until) if len(local_jobs) < len(jobs) else None
        for job in jobs:
            solo_s = job.spec.solo_iteration_time(self.reference_capacity)
            report.solo_ms[job.job_id] = to_milliseconds(solo_s)
            if job.job_id in local_jobs:
                mean_s = solo_s
            else:
                assert result is not None
                timeline = result.timeline(job.job_id)
                report.timelines[job.job_id] = timeline
                try:
                    mean_s = timeline.mean_iteration_time(
                        skip=warmup_iterations
                    )
                except SimulationError:
                    # Starved job (zero post-warmup iterations, e.g. a
                    # link failure spanning the horizon): the timeline
                    # stays well-formed and empty; the report carries
                    # nan rather than crashing.
                    mean_s = float("nan")
            report.iteration_ms[job.job_id] = to_milliseconds(mean_s)
            report.slowdown[job.job_id] = mean_s / solo_s
        return report
