"""Cluster state for placement decisions.

Tracks GPU occupancy per host and, crucially for this paper, which jobs'
traffic crosses which links. A placed job's network footprint is modelled
as one aggregate flow from its first worker to its last worker (hosts are
kept in rack order): for rack-local jobs the path never leaves the ToR;
for cross-rack jobs it crosses ToR uplinks, which is where compatibility
matters. This aggregate-flow approximation is documented in DESIGN.md —
the paper's abstraction likewise treats a job's communication phase as one
on-off demand on each link it uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import PlacementError
from ..net.routing import Router
from ..net.topology import Link, Topology
from ..telemetry import session as _telemetry_session
from ..telemetry.trace import KIND_PLACEMENT
from ..workloads.job import JobSpec


@dataclass
class PlacedJob:
    """A job bound to hosts, with its aggregate network route."""

    spec: JobSpec
    hosts: List[str]
    links: List[Link] = field(default_factory=list)

    @property
    def job_id(self) -> str:
        """The job's identifier."""
        return self.spec.job_id

    @property
    def uses_network(self) -> bool:
        """Whether the job spans more than one host."""
        return len(self.links) > 0

    @property
    def endpoints(self) -> Tuple[str, str]:
        """Source and destination hosts of the aggregate flow."""
        return self.hosts[0], self.hosts[-1]


class ClusterState:
    """GPU occupancy plus the job->link sharing map."""

    def __init__(
        self,
        topology: Topology,
        gpus_per_host: int = 4,
        router: Optional[Router] = None,
    ) -> None:
        if gpus_per_host < 1:
            raise PlacementError("gpus_per_host must be >= 1")
        self.topology = topology
        self.gpus_per_host = gpus_per_host
        self.router = router if router is not None else Router(topology)
        self._free: Dict[str, int] = {
            host.name: gpus_per_host for host in topology.hosts()
        }
        self._jobs: Dict[str, PlacedJob] = {}
        # The rack grouping is static (the topology doesn't change under
        # a live cluster) but queried on every placement decision.
        self._racks: Dict[str, List[str]] = {}
        for host in topology.hosts():
            rack = topology.rack_of(host.name) or "_norack"
            self._racks.setdefault(rack, []).append(host.name)

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------

    def free_gpus(self, host: str) -> int:
        """Free GPU slots on ``host``."""
        try:
            return self._free[host]
        except KeyError:
            raise PlacementError(f"unknown host {host!r}") from None

    def total_free_gpus(self) -> int:
        """Free GPU slots across the cluster."""
        return sum(self._free.values())

    def hosts_by_rack(self) -> Dict[str, List[str]]:
        """Hosts grouped by their ToR (rack), insertion-ordered."""
        return {rack: list(hosts) for rack, hosts in self._racks.items()}

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------

    def place(self, spec: JobSpec, hosts: Sequence[str]) -> PlacedJob:
        """Bind one GPU per listed host (a host may repeat for several).

        Hosts must be given in rack order; the aggregate flow runs from
        the first to the last host when they differ.
        """
        if spec.job_id in self._jobs:
            raise PlacementError(f"job {spec.job_id!r} already placed")
        if not hosts:
            raise PlacementError("need at least one host")
        demand: Dict[str, int] = {}
        for host in hosts:
            demand[host] = demand.get(host, 0) + 1
        for host, count in demand.items():
            if self.free_gpus(host) < count:
                raise PlacementError(
                    f"host {host} lacks {count} free GPUs for {spec.job_id}"
                )
        for host, count in demand.items():
            self._free[host] -= count
        first, last = hosts[0], hosts[-1]
        links: List[Link] = []
        if first != last:
            links = self.router.route(first, last, flow_label=spec.job_id)
        job = PlacedJob(spec=spec, hosts=list(hosts), links=links)
        self._jobs[spec.job_id] = job
        telemetry = _telemetry_session.current()
        if telemetry.enabled:
            telemetry.counter("scheduler.placements").inc()
            telemetry.event(
                KIND_PLACEMENT,
                t=0.0,
                job=spec.job_id,
                hosts=list(hosts),
                links=[link.name for link in links],
                cross_rack=bool(links),
            )
        return job

    def remove(self, job_id: str) -> None:
        """Release a job's GPUs and links."""
        job = self._jobs.pop(job_id, None)
        if job is None:
            raise PlacementError(f"job {job_id!r} not placed")
        for host in job.hosts:
            self._free[host] += 1

    # ------------------------------------------------------------------
    # Sharing queries
    # ------------------------------------------------------------------

    @property
    def jobs(self) -> List[PlacedJob]:
        """All placed jobs, insertion-ordered."""
        return list(self._jobs.values())

    def job(self, job_id: str) -> PlacedJob:
        """Look up a placed job."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise PlacementError(f"job {job_id!r} not placed") from None

    def link_sharing(self) -> Dict[str, Set[str]]:
        """Map link name -> ids of jobs whose aggregate flow crosses it."""
        sharing: Dict[str, Set[str]] = {}
        for job in self._jobs.values():
            for link in job.links:
                sharing.setdefault(link.name, set()).add(job.job_id)
        return sharing

    def jobs_sharing_links_with(
        self, links: Sequence[Link]
    ) -> Dict[str, List[PlacedJob]]:
        """Placed jobs crossing each of the given links (by link name)."""
        wanted = {link.name for link in links}
        result: Dict[str, List[PlacedJob]] = {
            name: [] for name in sorted(wanted)
        }
        for job in self._jobs.values():
            for link in job.links:
                if link.name in wanted:
                    result[link.name].append(job)
        return result
