"""Compatibility-aware cluster scheduling (§4-§5).

The paper argues job placement "should be related not only to available
resources on servers but also to compatibility on links". This package
provides:

* :mod:`repro.scheduler.cluster` — cluster state: topology, per-host GPU
  slots, placed jobs and the job->links mapping via routing.
* :mod:`repro.scheduler.placement` — placement policies: random,
  consolidated (locality-first, Themis-style) and compatibility-aware.
* :mod:`repro.scheduler.simulation` — runs the placed cluster in the
  phase-level simulator and reports per-job slowdown versus solo.
* :mod:`repro.scheduler.service` — the online cluster service: an
  event-driven scheduler over arrivals, departures and queued retries,
  backed by the incremental compatibility engine.
* :mod:`repro.scheduler.events` — batch replay facade and arrival
  schedules for queueing studies.
"""

from .cluster import ClusterState, PlacedJob
from .placement import (
    PlacementPolicy,
    RandomPlacement,
    ConsolidatedPlacement,
    CompatibilityAwarePlacement,
)
from .simulation import ClusterSimulation, ClusterReport
from .events import JobArrival, arrival_schedule
from .grouping import GroupingResult, LinkGroup, group_jobs
from .service import AdmissionRecord, ClusterService, ServiceStats

__all__ = [
    "ClusterState",
    "PlacedJob",
    "PlacementPolicy",
    "RandomPlacement",
    "ConsolidatedPlacement",
    "CompatibilityAwarePlacement",
    "ClusterSimulation",
    "ClusterReport",
    "JobArrival",
    "arrival_schedule",
    "GroupingResult",
    "LinkGroup",
    "group_jobs",
    "AdmissionRecord",
    "ClusterService",
    "ServiceStats",
]
