"""The training-job specification.

A :class:`JobSpec` is the paper's abstraction of a data-parallel training
job as seen from the network: every iteration is a *compute phase* (the
forward pass — no traffic) followed by a *communication phase*
(backpropagation + allreduce — ``comm_bytes`` injected into the network;
the paper folds backprop into the communication phase because congestion
matters whenever data is in flight).

``solo_iteration_time(capacity)`` gives the iteration time with dedicated
network resources — the paper's target: compatible jobs sharing a link
should achieve this.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence, Tuple

from ..errors import WorkloadError
from .allreduce import AllreduceAlgorithm, bytes_per_worker
from .models import ModelSpec, model


@dataclass(frozen=True)
class JobSpec:
    """A periodic on-off training job.

    Attributes:
        job_id: Unique identifier.
        model_name: Architecture name (informational).
        batch_size: Per-job global batch size (informational).
        compute_time: Compute-phase duration, seconds.
        comm_bytes: Bytes injected into the network per iteration.
        compute_jitter: Std-dev of per-iteration compute time as a fraction
            of ``compute_time`` (real jobs show a few percent of noise).
        n_workers: Number of data-parallel workers.
        segments: Optional fine structure of the iteration as
            ``(compute seconds, comm bytes)`` sub-phases — e.g. layer-wise
            allreduce emits several bursts per iteration (the pipelining
            the paper's §2 reviews). Empty means one compute phase
            followed by one communication phase. When present,
            ``compute_time`` and ``comm_bytes`` must equal the segment
            sums (use :meth:`multi_phase`).
    """

    job_id: str
    compute_time: float
    comm_bytes: float
    model_name: str = ""
    batch_size: int = 0
    compute_jitter: float = 0.0
    n_workers: int = 2
    segments: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if not self.job_id:
            raise WorkloadError("job_id must be non-empty")
        if self.compute_time < 0:
            raise WorkloadError(f"{self.job_id}: compute_time must be >= 0")
        if self.comm_bytes <= 0:
            raise WorkloadError(f"{self.job_id}: comm_bytes must be > 0")
        if not 0.0 <= self.compute_jitter < 1.0:
            raise WorkloadError(
                f"{self.job_id}: compute_jitter must be in [0, 1)"
            )
        if self.n_workers < 1:
            raise WorkloadError(f"{self.job_id}: n_workers must be >= 1")
        if self.segments:
            for compute_s, bytes_ in self.segments:
                if compute_s < 0 or bytes_ <= 0:
                    raise WorkloadError(
                        f"{self.job_id}: segments need compute >= 0 and "
                        f"comm bytes > 0"
                    )
            total_compute = sum(c for c, _ in self.segments)
            total_bytes = sum(b for _, b in self.segments)
            if abs(total_compute - self.compute_time) > 1e-9 or (
                abs(total_bytes - self.comm_bytes) > 1e-3
            ):
                raise WorkloadError(
                    f"{self.job_id}: segment sums must match compute_time "
                    f"and comm_bytes (use JobSpec.multi_phase)"
                )

    @classmethod
    def multi_phase(
        cls,
        job_id: str,
        segments: Sequence[Tuple[float, float]],
        **kwargs,
    ) -> "JobSpec":
        """Build a job from ``(compute seconds, comm bytes)`` sub-phases."""
        segments = tuple(segments)
        if not segments:
            raise WorkloadError("multi_phase needs at least one segment")
        return cls(
            job_id=job_id,
            compute_time=sum(c for c, _ in segments),
            comm_bytes=sum(b for _, b in segments),
            segments=segments,
            **kwargs,
        )

    def effective_segments(self) -> Tuple[Tuple[float, float], ...]:
        """The iteration's sub-phases (a single pair when unspecified)."""
        if self.segments:
            return self.segments
        return ((self.compute_time, self.comm_bytes),)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    def solo_comm_time(self, capacity: float) -> float:
        """Communication-phase duration with the full link, seconds."""
        if capacity <= 0:
            raise WorkloadError(f"capacity must be > 0, got {capacity}")
        return self.comm_bytes / capacity

    def solo_iteration_time(self, capacity: float) -> float:
        """Iteration time with dedicated network resources, seconds."""
        return self.compute_time + self.solo_comm_time(capacity)

    def comm_fraction(self, capacity: float) -> float:
        """Fraction of a solo iteration spent communicating, in (0, 1]."""
        return self.solo_comm_time(capacity) / self.solo_iteration_time(capacity)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_model(
        cls,
        job_id: str,
        model_name: str,
        batch_size: int,
        n_workers: int = 8,
        algorithm: AllreduceAlgorithm = AllreduceAlgorithm.RING,
        compute_jitter: float = 0.0,
    ) -> "JobSpec":
        """Derive a spec from the model zoo.

        Compute time scales linearly with batch size via the zoo's
        per-sample coefficient; communication bytes come from the model's
        gradient size and the allreduce algorithm's per-worker cost.
        """
        spec: ModelSpec = model(model_name)
        return cls(
            job_id=job_id,
            model_name=spec.name,
            batch_size=batch_size,
            compute_time=spec.compute_time(batch_size),
            comm_bytes=bytes_per_worker(
                spec.gradient_bytes, n_workers, algorithm
            ),
            compute_jitter=compute_jitter,
            n_workers=n_workers,
        )

    def with_id(self, job_id: str) -> "JobSpec":
        """A copy of this spec under a different job id."""
        return replace(self, job_id=job_id)

    def with_jitter(self, compute_jitter: float) -> "JobSpec":
        """A copy of this spec with per-iteration compute noise."""
        return replace(self, compute_jitter=compute_jitter)
