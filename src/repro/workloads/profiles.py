"""Profiles calibrated to the paper's reported numbers.

The paper measured its workloads on an A100/ConnectX-5 testbed we do not
have, so each profile here is a *calibrated synthetic equivalent*: the
compute-phase duration and communication-phase bytes are chosen so the
job's **solo** iteration time and comm/compute split are consistent with
the numbers the paper reports. The fair/unfair outcomes are then *produced
by the simulator*, never hard-coded.

Calibration sources:

* **Figure 3a** pins VGG16 exactly: 255 ms iteration, first 141 ms pure
  compute.
* **Figure 2** pins the VGG19 pair: compute ≈ 100 ms (second communication
  phase starts 100 ms after the first iteration ends), and the first-
  iteration endpoints (J1 at 0.28 s, J2 at 0.32 s under a ~2:1 split)
  imply a ≈110 ms solo communication phase.
* **Table 1** pins each row's *unfair* iteration time, which for compatible
  groups equals the solo time (that is the paper's point), and the
  fair-vs-unfair gap, which bounds the communication-phase length
  (for two identical overlapped jobs, fair ≈ compute + 2×comm).

The paper reports bandwidth on the shared 50 Gbps link saturating around
21+21 Gbps (fair) to 30+15 Gbps (unfair), so the *effective* bottleneck
goodput is ≈42-45 Gbps; :data:`EFFECTIVE_BOTTLENECK` uses 42 Gbps and all
byte counts are expressed against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import WorkloadError
from ..units import gbps, ms
from .job import JobSpec

#: Effective goodput of the paper's 50 Gbps bottleneck link (see module doc).
EFFECTIVE_BOTTLENECK = gbps(42)


def _spec(
    job_id: str,
    model_name: str,
    batch_size: int,
    compute_ms: float,
    comm_ms: float,
    jitter: float = 0.0,
) -> JobSpec:
    """Build a JobSpec from (compute ms, solo comm ms at full bottleneck)."""
    return JobSpec(
        job_id=job_id,
        model_name=model_name,
        batch_size=batch_size,
        compute_time=ms(compute_ms),
        comm_bytes=ms(comm_ms) * EFFECTIVE_BOTTLENECK,
        compute_jitter=jitter,
    )


# ---------------------------------------------------------------------------
# Figure 2 / Figure 1 workload: two VGG19 jobs on the dumbbell bottleneck
# ---------------------------------------------------------------------------

def figure2_vgg19_pair(jitter: float = 0.0) -> Tuple[JobSpec, JobSpec]:
    """The two VGG19 jobs of Figures 1 and 2.

    Compute 100 ms, solo communication 110 ms (see module docstring for the
    derivation from the Figure 2 time anchors). Both jobs start together,
    as the paper assumes for the Figure 2 presentation.
    """
    j1 = _spec("J1", "vgg19", 1024, compute_ms=100, comm_ms=110, jitter=jitter)
    j2 = _spec("J2", "vgg19", 1024, compute_ms=100, comm_ms=110, jitter=jitter)
    return j1, j2


# ---------------------------------------------------------------------------
# Figure 3 workload: VGG16, iteration 255 ms with 141 ms of pure compute
# ---------------------------------------------------------------------------

def figure3_vgg16() -> JobSpec:
    """The VGG16 job of Figure 3 (255 ms iteration, 141 ms compute)."""
    return _spec("vgg16-fig3", "vgg16", 1100, compute_ms=141, comm_ms=114)


# ---------------------------------------------------------------------------
# Table 1: five groups of jobs competing on one bottleneck
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Entry:
    """One row of Table 1: a job plus the paper's reported outcomes."""

    spec: JobSpec
    paper_fair_ms: float
    paper_unfair_ms: float
    paper_speedup: float


@dataclass(frozen=True)
class Table1Group:
    """A group of jobs sharing the bottleneck, with the paper's verdict."""

    name: str
    entries: Tuple[Table1Entry, ...]
    paper_compatible: bool

    @property
    def specs(self) -> List[JobSpec]:
        """The job specs in aggressiveness order (first = most aggressive)."""
        return [entry.spec for entry in self.entries]


def table1_groups(jitter: float = 0.0) -> List[Table1Group]:
    """The five Table 1 groups with calibrated profiles.

    Per-row calibration (ms, at the 42 Gbps effective bottleneck):

    * *BERT(8)*: solo 150 = 95 compute + 55 comm. Short iterations and a
      mid-sized comm arc; its 95 ms compute gap is smaller than VGG19's
      145 ms comm arc, which is what makes group 1 incompatible.
    * *VGG19(1200)*: solo 250 = 105 + 145 (comm-heavy, fraction 0.58).
    * *DLRM(2000)*: solo 1001 = 701 + 300; the paper's fair time 1301 =
      701 + 2x300 confirms the fully-overlapped fair schedule.
    * *VGG19(1400) (group 3)*: compute scaled from the group-1 profile by
      batch (105 x 1400/1200 ~ 122), same gradient so same 145 ms comm.
    * *WideResNet(800)*: solo 273 = 251 + 22 (comm-light).
    * *group 4* uses equal 274 ms periods (251+23 / 254+20): the paper's
      295/294 fair vs 273/274 unfair times are consistent with equal
      periods and small arcs, which is exactly the fully-compatible case.
    * *group 5* uses periods 330/330/165 (the ResNet50 period is half the
      VGG periods, so the unified circle is only 330 ms) with comm arcs
      50/50/8 — compatible with room to spare, matching the paper's green
      verdict and its 1.18x/1.18x/1.01x speedups.
    """
    groups: List[Table1Group] = []

    groups.append(Table1Group(
        name="group1",
        paper_compatible=False,
        entries=(
            Table1Entry(
                _spec("bert-g1", "bert", 8, 95, 55, jitter),
                paper_fair_ms=183, paper_unfair_ms=157, paper_speedup=1.17,
            ),
            Table1Entry(
                _spec("vgg19-g1", "vgg19", 1200, 105, 145, jitter),
                paper_fair_ms=297, paper_unfair_ms=315, paper_speedup=0.94,
            ),
        ),
    ))

    groups.append(Table1Group(
        name="group2",
        paper_compatible=True,
        entries=(
            Table1Entry(
                _spec("dlrm-a-g2", "dlrm", 2000, 701, 300, jitter),
                paper_fair_ms=1301, paper_unfair_ms=1001, paper_speedup=1.3,
            ),
            Table1Entry(
                _spec("dlrm-b-g2", "dlrm", 2000, 701, 300, jitter),
                paper_fair_ms=1300, paper_unfair_ms=1019, paper_speedup=1.28,
            ),
        ),
    ))

    groups.append(Table1Group(
        name="group3",
        paper_compatible=False,
        entries=(
            Table1Entry(
                _spec("bert-g3", "bert", 8, 95, 55, jitter),
                paper_fair_ms=320, paper_unfair_ms=216, paper_speedup=1.48,
            ),
            Table1Entry(
                _spec("vgg19-g3", "vgg19", 1400, 122, 145, jitter),
                paper_fair_ms=494, paper_unfair_ms=466, paper_speedup=1.06,
            ),
            Table1Entry(
                _spec("wrn-g3", "wideresnet", 800, 251, 22, jitter),
                paper_fair_ms=466, paper_unfair_ms=505, paper_speedup=0.92,
            ),
        ),
    ))

    groups.append(Table1Group(
        name="group4",
        paper_compatible=True,
        entries=(
            Table1Entry(
                _spec("wrn-g4", "wideresnet", 800, 251, 23, jitter),
                paper_fair_ms=295, paper_unfair_ms=273, paper_speedup=1.08,
            ),
            Table1Entry(
                _spec("vgg16-g4", "vgg16", 1400, 254, 20, jitter),
                paper_fair_ms=294, paper_unfair_ms=274, paper_speedup=1.07,
            ),
        ),
    ))

    groups.append(Table1Group(
        name="group5",
        paper_compatible=True,
        entries=(
            Table1Entry(
                _spec("vgg19-g5", "vgg19", 1400, 280, 50, jitter),
                paper_fair_ms=389, paper_unfair_ms=329, paper_speedup=1.18,
            ),
            Table1Entry(
                _spec("vgg16-g5", "vgg16", 1700, 280, 50, jitter),
                paper_fair_ms=389, paper_unfair_ms=329, paper_speedup=1.18,
            ),
            Table1Entry(
                _spec("resnet50-g5", "resnet50", 1600, 157, 8, jitter),
                paper_fair_ms=167, paper_unfair_ms=165, paper_speedup=1.01,
            ),
        ),
    ))

    return groups


def paper_profile(name: str, jitter: float = 0.0) -> JobSpec:
    """Look up a calibrated profile by its job id (e.g. ``"dlrm-a-g2"``).

    Also accepts ``"vgg19-fig2"`` / ``"vgg16-fig3"`` for the figure
    workloads.

    Raises:
        WorkloadError: for an unknown profile name.
    """
    if name == "vgg19-fig2":
        return figure2_vgg19_pair(jitter)[0]
    if name == "vgg16-fig3":
        return figure3_vgg16()
    for group in table1_groups(jitter):
        for entry in group.entries:
            if entry.spec.job_id == name:
                return entry.spec
    raise WorkloadError(f"unknown paper profile {name!r}")
