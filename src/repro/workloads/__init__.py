"""ML training workload models.

Replaces the paper's real DNN training jobs with calibrated synthetic
equivalents: a :class:`JobSpec` captures exactly what the paper's geometric
abstraction consumes — the compute-phase duration, the bytes injected into
the network per iteration, and the resulting periodic on-off pattern.

* :mod:`repro.workloads.models` — the model zoo (VGG16/19, ResNet50,
  WideResNet, BERT, DLRM) with parameter counts and per-sample compute
  coefficients.
* :mod:`repro.workloads.allreduce` — bytes-on-wire accounting for ring,
  tree, parameter-server and hierarchical allreduce.
* :mod:`repro.workloads.profiles` — profiles calibrated to the paper's
  reported numbers (Figure 3's VGG16, Table 1's rows, Figure 2's VGG19).
* :mod:`repro.workloads.generator` — random job mixes for the scheduler
  experiments.
* :mod:`repro.workloads.traces` — on-off network demand traces.
"""

from .models import ModelSpec, MODEL_ZOO, model
from .allreduce import (
    AllreduceAlgorithm,
    bytes_per_worker,
    allreduce_steps,
)
from .job import JobSpec
from .profiles import (
    paper_profile,
    figure2_vgg19_pair,
    figure3_vgg16,
    table1_groups,
    Table1Group,
    Table1Entry,
)
from .generator import WorkloadGenerator
from .traces import demand_trace
from .profiler import ProfiledJob, on_off_phases, profile_trace
from .scaling import (
    ScalingPoint,
    scaling_profile,
    self_compatibility_threshold,
    sharing_capacity,
)

__all__ = [
    "ModelSpec",
    "MODEL_ZOO",
    "model",
    "AllreduceAlgorithm",
    "bytes_per_worker",
    "allreduce_steps",
    "JobSpec",
    "paper_profile",
    "figure2_vgg19_pair",
    "figure3_vgg16",
    "table1_groups",
    "Table1Group",
    "Table1Entry",
    "WorkloadGenerator",
    "demand_trace",
    "ProfiledJob",
    "on_off_phases",
    "profile_trace",
    "ScalingPoint",
    "scaling_profile",
    "self_compatibility_threshold",
    "sharing_capacity",
]
