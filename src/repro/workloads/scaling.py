"""Batch-size scaling laws and the self-compatibility frontier.

§5 ("Impact of hyper-parameters"): iteration time and communication
demand are functions of batch size, worker count and the allreduce
algorithm — so the scheduler can *choose* hyper-parameters that make jobs
compatible. This module quantifies that lever from the model zoo:

* :func:`scaling_profile` — how compute time, communication fraction and
  solo iteration time move with batch size for a given model;
* :func:`self_compatibility_threshold` — the smallest batch size at which
  two instances of the same job become fully compatible (two equal
  periods interleave iff the communication fraction is at most 1/2,
  so the threshold is where compute time first reaches the solo
  communication time);
* :func:`sharing_capacity` — how many copies of a job a link can host at
  dedicated speed (``floor(1 / comm_fraction)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import WorkloadError
from ..units import gbps, milliseconds
from .allreduce import AllreduceAlgorithm, bytes_per_worker
from .job import JobSpec
from .models import model


@dataclass(frozen=True)
class ScalingPoint:
    """One batch size's derived workload characteristics."""

    batch_size: int
    compute_time: float
    comm_time: float
    iteration_time: float
    comm_fraction: float
    self_compatible: bool

    @property
    def sharing_capacity(self) -> int:
        """Copies of this job one link hosts at dedicated speed."""
        return max(1, math.floor(1.0 / self.comm_fraction))


def _job_for(
    model_name: str,
    batch_size: int,
    n_workers: int,
    algorithm: AllreduceAlgorithm,
) -> JobSpec:
    return JobSpec.from_model(
        f"{model_name}-{batch_size}",
        model_name,
        batch_size,
        n_workers=n_workers,
        algorithm=algorithm,
    )


def scaling_profile(
    model_name: str,
    batch_sizes: Sequence[int],
    n_workers: int = 8,
    capacity: float = gbps(42),
    algorithm: AllreduceAlgorithm = AllreduceAlgorithm.RING,
) -> List[ScalingPoint]:
    """Derive workload characteristics across batch sizes.

    Compute time grows linearly with the batch; gradient size (hence the
    communication phase) does not — so the communication *fraction* falls
    and compatibility improves as batches grow, exactly the §5 lever.
    """
    if not batch_sizes:
        raise WorkloadError("no batch sizes given")
    model(model_name)  # validate early
    points: List[ScalingPoint] = []
    for batch in batch_sizes:
        spec = _job_for(model_name, batch, n_workers, algorithm)
        comm = spec.solo_comm_time(capacity)
        iteration = spec.solo_iteration_time(capacity)
        fraction = comm / iteration
        points.append(
            ScalingPoint(
                batch_size=batch,
                compute_time=spec.compute_time,
                comm_time=comm,
                iteration_time=iteration,
                comm_fraction=fraction,
                self_compatible=fraction <= 0.5,
            )
        )
    return points


def self_compatibility_threshold(
    model_name: str,
    n_workers: int = 8,
    capacity: float = gbps(42),
    algorithm: AllreduceAlgorithm = AllreduceAlgorithm.RING,
    max_batch: int = 65536,
) -> Optional[int]:
    """Smallest batch at which two copies of the job interleave fully.

    Two equal-period jobs are compatible iff the communication fraction
    is at most 1/2, i.e. compute time >= solo communication time. With
    linear compute scaling the threshold batch solves
    ``per_sample * batch = comm_bytes / capacity`` exactly; returns
    ``None`` if even ``max_batch`` is not enough.
    """
    spec_model = model(model_name)
    grad = bytes_per_worker(spec_model.gradient_bytes, n_workers, algorithm)
    if grad <= 0:
        return 1  # no traffic: trivially compatible
    comm_time = grad / capacity
    per_sample = milliseconds(spec_model.compute_ms_per_sample)
    threshold = math.ceil(comm_time / per_sample)
    if threshold > max_batch:
        return None
    return max(1, threshold)


def sharing_capacity(
    model_name: str,
    batch_size: int,
    n_workers: int = 8,
    capacity: float = gbps(42),
    algorithm: AllreduceAlgorithm = AllreduceAlgorithm.RING,
) -> int:
    """Copies of this job one link hosts at dedicated speed."""
    point = scaling_profile(
        model_name, [batch_size], n_workers, capacity, algorithm
    )[0]
    return point.sharing_capacity
