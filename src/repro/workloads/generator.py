"""Random workload mixes for the scheduler experiments.

Generates populations of :class:`~repro.workloads.job.JobSpec` with
realistic spreads of iteration time and communication fraction, seeded for
reproducibility. Used by the placement benchmarks (§4's "placing compatible
jobs on links") where the interesting statistic is how often a random
pairing is compatible versus what a compatibility-aware scheduler finds.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import WorkloadError
from ..sim.rng import RandomStreams
from ..units import gbps, milliseconds
from .job import JobSpec
from .models import MODEL_ZOO


class WorkloadGenerator:
    """Draws random training jobs from the model zoo."""

    def __init__(
        self,
        seed: int = 0,
        capacity: float = gbps(42),
        iteration_range_ms: tuple[float, float] = (80.0, 1200.0),
        comm_fraction_range: tuple[float, float] = (0.05, 0.6),
    ) -> None:
        low, high = iteration_range_ms
        if not 0 < low < high:
            raise WorkloadError("iteration_range_ms must be 0 < low < high")
        frac_low, frac_high = comm_fraction_range
        if not 0 < frac_low < frac_high < 1:
            raise WorkloadError(
                "comm_fraction_range must satisfy 0 < low < high < 1"
            )
        self._rng = RandomStreams(seed).get("workload-generator")
        self._capacity = capacity
        self._iteration_range_ms = iteration_range_ms
        self._comm_fraction_range = comm_fraction_range
        self._model_names = sorted(MODEL_ZOO)

    def job(self, job_id: str) -> JobSpec:
        """Draw one random job.

        Iteration time is log-uniform over the configured range (cluster
        traces show heavy spread across jobs); the communication fraction
        is uniform; batch size is reported for flavour only.
        """
        low_ms, high_ms = self._iteration_range_ms
        iteration_s = milliseconds(
            float(
                np.exp(self._rng.uniform(np.log(low_ms), np.log(high_ms)))
            )
        )
        # Round to whole milliseconds so unified-circle LCMs stay small
        # enough for exact compatibility checks (profiling granularity).
        iteration_s = max(round(iteration_s, 3), 2e-3)
        fraction = float(self._rng.uniform(*self._comm_fraction_range))
        comm_s = iteration_s * fraction
        compute_s = iteration_s - comm_s
        model_name = str(self._rng.choice(self._model_names))
        batch = int(self._rng.integers(8, 2048))
        return JobSpec(
            job_id=job_id,
            model_name=model_name,
            batch_size=batch,
            compute_time=compute_s,
            comm_bytes=comm_s * self._capacity,
            n_workers=int(self._rng.choice([2, 4, 8, 16])),
        )

    def jobs(self, count: int, prefix: str = "job") -> List[JobSpec]:
        """Draw ``count`` random jobs with ids ``{prefix}-0..``."""
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        return [self.job(f"{prefix}-{index}") for index in range(count)]

    def arrival_times(
        self,
        count: int,
        mean_interarrival_s: float,
    ) -> np.ndarray:
        """Poisson-process arrival times for a dynamic-cluster experiment."""
        if mean_interarrival_s <= 0:
            raise WorkloadError("mean_interarrival_s must be > 0")
        gaps = self._rng.exponential(mean_interarrival_s, size=count)
        return np.cumsum(gaps)
