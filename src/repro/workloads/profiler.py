"""Profiling jobs from raw traffic traces.

§4's placement workflow starts with measurement: "the ML scheduler should
first profile each ML training job in isolation to measure its iteration
time, communication pattern, and bandwidth demand". This module closes
that loop for the simulator: given a raw rate trace (a
:class:`~repro.sim.trace.StepFunction`, e.g. recorded by the phase-level
simulator or synthesized by :func:`~repro.workloads.traces.demand_trace`),
it detects the on-off pattern, estimates the iteration period, and
reconstructs the job's :class:`~repro.core.circle.JobCircle` — without
ever looking at the ground-truth spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import WorkloadError
from ..sim.trace import StepFunction

#: A phase must persist at least this long to count (filters glitches).
MIN_PHASE_SECONDS = 1e-4


@dataclass(frozen=True)
class ProfiledJob:
    """What profiling one solo job recovers.

    Attributes:
        iteration_time: Estimated period, seconds.
        comm_time: Communication (on) duration per iteration, seconds.
        compute_time: Compute (off) duration per iteration, seconds.
        bandwidth_demand: Mean rate while communicating, bytes/s.
        n_iterations_observed: Full on-off cycles in the trace.
    """

    iteration_time: float
    comm_time: float
    compute_time: float
    bandwidth_demand: float
    n_iterations_observed: int

    @property
    def comm_fraction(self) -> float:
        """Fraction of the iteration spent communicating."""
        return self.comm_time / self.iteration_time

    def circle_ticks(self, ticks_per_second: int = 1000) -> Tuple[int, int]:
        """Quantized ``(compute_ticks, comm_ticks)`` for circle building."""
        compute = round(self.compute_time * ticks_per_second)
        comm = max(1, round(self.comm_time * ticks_per_second))
        return compute, comm


def on_off_phases(
    trace: StepFunction,
    start: float,
    end: float,
    threshold_fraction: float = 0.05,
) -> List[Tuple[float, float, bool]]:
    """Segment a rate trace into ``(start, end, on?)`` phases.

    A phase is *on* when the rate exceeds ``threshold_fraction`` of the
    trace's peak rate. Consecutive same-state segments merge; segments
    shorter than :data:`MIN_PHASE_SECONDS` are folded into their
    neighbours (measurement glitches).
    """
    if end <= start:
        raise WorkloadError(f"bad window [{start}, {end}]")
    breakpoints = [t for t, _ in trace.breakpoints() if start < t < end]
    edges = [start] + breakpoints + [end]
    peak = max(
        (trace.value_at(t) for t in edges[:-1]), default=0.0
    )
    if peak <= 0:
        return [(start, end, False)]
    threshold = peak * threshold_fraction
    raw: List[Tuple[float, float, bool]] = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        if hi <= lo:
            continue
        state = trace.value_at(lo) > threshold
        if raw and raw[-1][2] == state:
            raw[-1] = (raw[-1][0], hi, state)
        else:
            raw.append((lo, hi, state))
    # Fold glitch-length phases into the previous one.
    phases: List[Tuple[float, float, bool]] = []
    for segment in raw:
        if phases and (segment[1] - segment[0]) < MIN_PHASE_SECONDS:
            phases[-1] = (phases[-1][0], segment[1], phases[-1][2])
        elif phases and phases[-1][2] == segment[2]:
            phases[-1] = (phases[-1][0], segment[1], segment[2])
        else:
            phases.append(segment)
    return phases


def profile_trace(
    trace: StepFunction,
    start: float,
    end: float,
    threshold_fraction: float = 0.05,
) -> ProfiledJob:
    """Recover a job's on-off profile from its solo rate trace.

    The period is estimated from on-phase start-to-start gaps (median,
    which is robust to a truncated first or last cycle); communication
    and compute durations are medians over full cycles; bandwidth demand
    is the byte integral over on-time.

    Raises:
        WorkloadError: if fewer than two full cycles are observable.
    """
    phases = on_off_phases(trace, start, end, threshold_fraction)
    on_phases = [(lo, hi) for lo, hi, state in phases if state]
    if len(on_phases) < 3:
        raise WorkloadError(
            "need at least three communication phases to profile"
        )
    # Drop the possibly truncated first and last cycles.
    starts = np.asarray([lo for lo, _ in on_phases])
    periods = np.diff(starts)
    comm_durations = np.asarray(
        [hi - lo for lo, hi in on_phases[1:-1]]
    )
    iteration_time = float(np.median(periods))
    comm_time = float(np.median(comm_durations))
    if comm_time <= 0 or iteration_time <= comm_time:
        raise WorkloadError("trace is not a periodic on-off pattern")
    on_bytes = sum(
        trace.integrate(lo, hi) for lo, hi in on_phases[1:-1]
    )
    on_seconds = float(comm_durations.sum())
    return ProfiledJob(
        iteration_time=iteration_time,
        comm_time=comm_time,
        compute_time=iteration_time - comm_time,
        bandwidth_demand=on_bytes / on_seconds if on_seconds > 0 else 0.0,
        n_iterations_observed=len(on_phases) - 2,
    )
