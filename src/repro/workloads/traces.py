"""On-off network demand traces and online arrival processes.

Figure 3a of the paper shows a job's time-series network demand — the
periodic on-off square wave that the geometric abstraction rolls around a
circle. :func:`demand_trace` produces that signal for a
:class:`~repro.workloads.job.JobSpec` running solo, as a
:class:`~repro.sim.trace.StepFunction` of demanded rate.

The online cluster service (ROADMAP item 3) additionally needs *arrival
processes*: streams of :class:`JobArrival` events feeding
:class:`repro.scheduler.service.ClusterService`. Two generators cover the
standard modelling choices:

* :func:`poisson_arrivals` — Poisson arrivals with exponential, Pareto
  (heavy-tailed, the empirical cluster-trace shape) or fixed lifetimes.
  Iteration times are drawn from a small grid of whole-millisecond
  periods so unified-circle LCMs stay exact and affordable — the same
  profiling-granularity argument as
  :class:`~repro.workloads.generator.WorkloadGenerator`.
* :func:`trace_arrivals` — replay explicit rows (e.g. from a recorded
  production trace), with :func:`arrival_to_row` as the inverse so
  schedules round-trip through the runner's spec options.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from ..errors import WorkloadError
from ..sim.rng import RandomStreams
from ..sim.trace import StepFunction
from ..units import gbps, milliseconds
from .job import JobSpec

#: Whole-millisecond iteration periods with a small joint LCM (7.2 s),
#: keeping exact unified-circle arithmetic cheap at thousands of jobs.
DEFAULT_PERIOD_GRID_MS: Tuple[int, ...] = (240, 300, 360, 400, 480, 600)


def demand_trace(
    spec: JobSpec,
    capacity: float,
    n_iterations: int,
    start_time: float = 0.0,
) -> StepFunction:
    """Network demand of ``spec`` running solo at ``capacity``.

    The trace is 0 during compute phases and ``capacity`` during
    communication phases, for ``n_iterations`` back-to-back iterations
    beginning at ``start_time``.
    """
    if n_iterations < 1:
        raise WorkloadError(f"n_iterations must be >= 1, got {n_iterations}")
    if capacity <= 0:
        raise WorkloadError(f"capacity must be > 0, got {capacity}")
    comm_time = spec.solo_comm_time(capacity)
    trace = StepFunction(initial=0.0, name=f"{spec.job_id}-demand")
    cursor = start_time
    for _ in range(n_iterations):
        comm_start = cursor + spec.compute_time
        trace.set(comm_start, capacity)
        trace.set(comm_start + comm_time, 0.0)
        cursor = comm_start + comm_time
    return trace


# ---------------------------------------------------------------------------
# Online arrival processes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class JobArrival:
    """One job arriving at ``time`` and departing at ``time + lifetime``."""

    time: float
    spec: JobSpec
    n_workers: int
    lifetime: float


def poisson_arrivals(
    count: int,
    seed: int = 0,
    mean_interarrival_s: float = 60.0,
    mean_lifetime_s: float = 600.0,
    lifetime_model: str = "exponential",
    pareto_shape: float = 2.5,
    capacity: float = gbps(42),
    period_grid_ms: Sequence[int] = DEFAULT_PERIOD_GRID_MS,
    comm_fraction_range: Tuple[float, float] = (0.1, 0.45),
    worker_choices: Sequence[int] = (2, 4, 8),
    prefix: str = "dyn",
) -> List[JobArrival]:
    """Draw a Poisson arrival stream with randomized job shapes.

    Args:
        count: Number of arrivals.
        seed: Seeds three independent :class:`RandomStreams` substreams
            (arrival gaps, job shapes, lifetimes), so each marginal is
            stable under parameter changes to the others.
        mean_interarrival_s: Mean gap of the exponential arrival process.
        mean_lifetime_s: Mean job lifetime in seconds.
        lifetime_model: ``"exponential"``, ``"pareto"`` (heavy-tailed
            Lomax with the given shape — production traces show a few
            huge jobs dominating GPU-hours) or ``"fixed"``.
        pareto_shape: Lomax shape ``> 1`` (smaller = heavier tail).
        capacity: Profiling bandwidth converting comm time to bytes.
        period_grid_ms: Whole-ms iteration periods to draw from.
        comm_fraction_range: Uniform range of per-job comm fraction.
        worker_choices: Worker counts to draw from.
        prefix: Job ids become ``{prefix}-0``, ``{prefix}-1``, ...

    Returns:
        Arrivals in non-decreasing time order.
    """
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count}")
    if mean_interarrival_s <= 0 or mean_lifetime_s <= 0:
        raise WorkloadError("mean interarrival and lifetime must be > 0")
    if lifetime_model not in ("exponential", "pareto", "fixed"):
        raise WorkloadError(f"unknown lifetime model {lifetime_model!r}")
    if lifetime_model == "pareto" and pareto_shape <= 1.0:
        raise WorkloadError("pareto_shape must be > 1 for a finite mean")
    if not period_grid_ms:
        raise WorkloadError("period_grid_ms must be non-empty")
    frac_low, frac_high = comm_fraction_range
    if not 0 < frac_low < frac_high < 1:
        raise WorkloadError(
            "comm_fraction_range must satisfy 0 < low < high < 1"
        )
    streams = RandomStreams(seed)
    gap_rng = streams.get("arrival-gaps")
    shape_rng = streams.get("arrival-shapes")
    life_rng = streams.get("arrival-lifetimes")
    periods = sorted(int(p) for p in period_grid_ms)
    workers = sorted(int(w) for w in worker_choices)
    arrivals: List[JobArrival] = []
    clock = 0.0
    for index in range(count):
        clock += float(gap_rng.exponential(mean_interarrival_s))
        period_ms = periods[int(shape_rng.integers(len(periods)))]
        fraction = float(shape_rng.uniform(frac_low, frac_high))
        # Whole-ms comm phases keep circles exactly on the period grid.
        comm_ms = min(max(round(period_ms * fraction), 1), period_ms - 1)
        n_workers = workers[int(shape_rng.integers(len(workers)))]
        if lifetime_model == "exponential":
            lifetime = float(life_rng.exponential(mean_lifetime_s))
        elif lifetime_model == "pareto":
            scale = mean_lifetime_s * (pareto_shape - 1.0)
            lifetime = float(life_rng.pareto(pareto_shape)) * scale
        else:
            lifetime = mean_lifetime_s
        spec = JobSpec(
            job_id=f"{prefix}-{index}",
            compute_time=milliseconds(period_ms - comm_ms),
            comm_bytes=milliseconds(comm_ms) * capacity,
            n_workers=n_workers,
        )
        arrivals.append(
            JobArrival(
                time=clock,
                spec=spec,
                n_workers=n_workers,
                lifetime=max(lifetime, 1e-6),
            )
        )
    return arrivals


Row = Mapping[str, Union[float, int, JobSpec]]


def trace_arrivals(rows: Sequence[Row]) -> List[JobArrival]:
    """Build an arrival schedule from explicit trace rows.

    Each row is a mapping with ``time`` (seconds), ``lifetime``
    (seconds), ``job`` (a :class:`JobSpec`) and optionally
    ``n_workers`` (defaults to the spec's worker count). Rows may come
    from a recorded production trace or from ``arrival_to_row``; the
    result is sorted by ``(time, job_id)``.
    """
    arrivals: List[JobArrival] = []
    for index, row in enumerate(rows):
        try:
            time = float(row["time"])
            lifetime = float(row["lifetime"])
            spec = row["job"]
        except (KeyError, TypeError) as exc:
            raise WorkloadError(
                f"trace row {index} needs time/lifetime/job: {exc}"
            ) from None
        if not isinstance(spec, JobSpec):
            raise WorkloadError(
                f"trace row {index}: job must be a JobSpec, "
                f"got {type(spec).__name__}"
            )
        if time < 0:
            raise WorkloadError(f"trace row {index}: time must be >= 0")
        if lifetime <= 0:
            raise WorkloadError(f"trace row {index}: lifetime must be > 0")
        n_workers = int(row.get("n_workers", spec.n_workers))
        arrivals.append(
            JobArrival(
                time=time, spec=spec, n_workers=n_workers, lifetime=lifetime
            )
        )
    arrivals.sort(key=lambda a: (a.time, a.spec.job_id))
    return arrivals


def arrival_to_row(arrival: JobArrival) -> Dict[str, Union[float, int, JobSpec]]:
    """Inverse of :func:`trace_arrivals` for one arrival.

    The ``job`` value is a :class:`JobSpec`, which the runner's option
    codec serializes natively — so whole schedules can ride inside
    ``RunSpec.options`` and hash/cache deterministically.
    """
    return {
        "time": arrival.time,
        "lifetime": arrival.lifetime,
        "n_workers": arrival.n_workers,
        "job": arrival.spec,
    }
