"""On-off network demand traces.

Figure 3a of the paper shows a job's time-series network demand — the
periodic on-off square wave that the geometric abstraction rolls around a
circle. :func:`demand_trace` produces that signal for a
:class:`~repro.workloads.job.JobSpec` running solo, as a
:class:`~repro.sim.trace.StepFunction` of demanded rate.
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..sim.trace import StepFunction
from .job import JobSpec


def demand_trace(
    spec: JobSpec,
    capacity: float,
    n_iterations: int,
    start_time: float = 0.0,
) -> StepFunction:
    """Network demand of ``spec`` running solo at ``capacity``.

    The trace is 0 during compute phases and ``capacity`` during
    communication phases, for ``n_iterations`` back-to-back iterations
    beginning at ``start_time``.
    """
    if n_iterations < 1:
        raise WorkloadError(f"n_iterations must be >= 1, got {n_iterations}")
    if capacity <= 0:
        raise WorkloadError(f"capacity must be > 0, got {capacity}")
    comm_time = spec.solo_comm_time(capacity)
    trace = StepFunction(initial=0.0, name=f"{spec.job_id}-demand")
    cursor = start_time
    for _ in range(n_iterations):
        comm_start = cursor + spec.compute_time
        trace.set(comm_start, capacity)
        trace.set(comm_start + comm_time, 0.0)
        cursor = comm_start + comm_time
    return trace
