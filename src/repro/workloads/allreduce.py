"""Bytes-on-wire accounting for allreduce algorithms.

The paper lists the standard synchronization strategies (broadcast,
parameter servers, ring-allreduce, tree-reduce, hierarchical ring). What
the network substrate needs from each is *how many bytes each worker's NIC
injects per iteration* for a gradient of ``S`` bytes across ``N`` workers:

========================  =========================================
algorithm                 bytes transmitted per worker
========================  =========================================
ring                      ``2 * (N-1)/N * S``   (reduce-scatter + allgather)
tree                      ``2 * S * ceil(log2 N) / ...`` — per-worker
                          average ``2*S*(N-1)/N`` over the binomial tree;
                          we account the root-heavy worst case ``2*S``.
parameter server          worker: ``2*S`` (push + pull); server: ``2*N*S``
broadcast                 ``(N-1) * S`` for the broadcaster, ``S`` others;
                          average accounted.
hierarchical ring         intra-group ring + inter-group ring on leaders.
========================  =========================================
"""

from __future__ import annotations

import enum
import math

from ..errors import WorkloadError


class AllreduceAlgorithm(enum.Enum):
    """Supported gradient-synchronization strategies."""

    RING = "ring"
    TREE = "tree"
    PARAMETER_SERVER = "ps"
    BROADCAST = "broadcast"
    HIERARCHICAL = "hierarchical"


def bytes_per_worker(
    gradient_bytes: float,
    n_workers: int,
    algorithm: AllreduceAlgorithm = AllreduceAlgorithm.RING,
    group_size: int = 0,
) -> float:
    """Bytes each worker transmits for one allreduce of ``gradient_bytes``.

    Args:
        gradient_bytes: Size of the model gradient, bytes.
        n_workers: Number of participating workers (>= 1).
        algorithm: Synchronization strategy.
        group_size: Intra-group size for hierarchical ring (defaults to
            ``sqrt(n_workers)`` rounded, the usual rack-sized grouping).

    Returns:
        Bytes transmitted by one worker's NIC (0 for a single worker).
    """
    if gradient_bytes < 0:
        raise WorkloadError("gradient_bytes must be >= 0")
    if n_workers < 1:
        raise WorkloadError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1:
        return 0.0
    n = n_workers
    s = gradient_bytes
    if algorithm is AllreduceAlgorithm.RING:
        return 2.0 * (n - 1) / n * s
    if algorithm is AllreduceAlgorithm.TREE:
        # Binomial-tree reduce + broadcast: the busiest worker forwards the
        # full gradient up and down once.
        return 2.0 * s
    if algorithm is AllreduceAlgorithm.PARAMETER_SERVER:
        # Each worker pushes gradients and pulls fresh weights.
        return 2.0 * s
    if algorithm is AllreduceAlgorithm.BROADCAST:
        # Sufficient-factor style: everyone sends its update to everyone.
        return (n - 1) * s
    if algorithm is AllreduceAlgorithm.HIERARCHICAL:
        k = group_size if group_size >= 2 else max(2, round(math.sqrt(n)))
        k = min(k, n)
        n_groups = math.ceil(n / k)
        intra = 2.0 * (k - 1) / k * s
        inter = 2.0 * (n_groups - 1) / n_groups * s if n_groups > 1 else 0.0
        # Group leaders carry both phases; report the leader (bottleneck).
        return intra + inter
    raise WorkloadError(f"unsupported algorithm {algorithm}")


def allreduce_steps(
    n_workers: int,
    algorithm: AllreduceAlgorithm = AllreduceAlgorithm.RING,
) -> int:
    """Number of communication steps (rounds) the algorithm takes."""
    if n_workers < 1:
        raise WorkloadError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1:
        return 0
    n = n_workers
    if algorithm is AllreduceAlgorithm.RING:
        return 2 * (n - 1)
    if algorithm is AllreduceAlgorithm.TREE:
        return 2 * math.ceil(math.log2(n))
    if algorithm is AllreduceAlgorithm.PARAMETER_SERVER:
        return 2
    if algorithm is AllreduceAlgorithm.BROADCAST:
        return 1
    if algorithm is AllreduceAlgorithm.HIERARCHICAL:
        k = max(2, round(math.sqrt(n)))
        n_groups = math.ceil(n / k)
        steps = 2 * (k - 1)
        if n_groups > 1:
            steps += 2 * (n_groups - 1)
        return steps
    raise WorkloadError(f"unsupported algorithm {algorithm}")
