"""The DNN model zoo.

Parameter counts are the published architecture sizes; per-sample compute
coefficients are synthetic but ordered consistently with the models'
published FLOP counts. They are used to *derive* plausible job profiles
when the paper does not pin a number; whenever the paper reports a concrete
time (Figure 3's VGG16, Table 1's rows) the calibrated values in
:mod:`repro.workloads.profiles` take precedence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import WorkloadError
from ..units import milliseconds

#: Bytes per parameter for FP32 gradients exchanged during allreduce.
BYTES_PER_PARAM = 4


@dataclass(frozen=True)
class ModelSpec:
    """Static description of a DNN architecture.

    Attributes:
        name: Canonical model name.
        params_millions: Trainable parameters, in millions.
        gflops_per_sample: Forward+backward GFLOPs per training sample
            (published estimates; drives synthetic compute scaling).
        compute_ms_per_sample: Synthetic per-sample compute-phase
            milliseconds on the reference accelerator (forward pass only,
            since the paper folds backprop into the communication phase).
    """

    name: str
    params_millions: float
    gflops_per_sample: float
    compute_ms_per_sample: float

    @property
    def gradient_bytes(self) -> float:
        """Size of one full gradient exchange, bytes (FP32)."""
        # 1e6 is millions -> count, not a time/rate unit conversion.
        return (
            self.params_millions * 1e6 * BYTES_PER_PARAM  # simlint: disable=UNIT001 - scale factor, not a unit
        )

    def compute_time(self, batch_size: int) -> float:
        """Synthetic compute-phase duration for ``batch_size``, seconds."""
        if batch_size < 1:
            raise WorkloadError(f"batch size must be >= 1, got {batch_size}")
        return milliseconds(self.compute_ms_per_sample * batch_size)


#: Published parameter counts; compute coefficients chosen so that the
#: derived iteration times land in the ranges the paper reports.
MODEL_ZOO: Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (
        ModelSpec("vgg16", params_millions=138.4, gflops_per_sample=15.5,
                  compute_ms_per_sample=0.088),
        ModelSpec("vgg19", params_millions=143.7, gflops_per_sample=19.7,
                  compute_ms_per_sample=0.088),
        ModelSpec("resnet50", params_millions=25.6, gflops_per_sample=4.1,
                  compute_ms_per_sample=0.098),
        ModelSpec("wideresnet", params_millions=68.9, gflops_per_sample=11.4,
                  compute_ms_per_sample=0.314),
        ModelSpec("bert", params_millions=340.0, gflops_per_sample=97.0,
                  compute_ms_per_sample=11.9),
        ModelSpec("dlrm", params_millions=540.0, gflops_per_sample=0.6,
                  compute_ms_per_sample=0.35),
    )
}


def model(name: str) -> ModelSpec:
    """Look up a model in the zoo by (case-insensitive) name.

    Raises:
        WorkloadError: if the model is unknown.
    """
    key = name.strip().lower()
    if key not in MODEL_ZOO:
        known = ", ".join(sorted(MODEL_ZOO))
        raise WorkloadError(f"unknown model {name!r}; known: {known}")
    return MODEL_ZOO[key]
