"""Recorded runs: directories holding a trace plus a manifest.

:class:`RunRecorder` wraps one experiment execution: it installs a fresh
:class:`~repro.telemetry.session.Telemetry` session as the ambient
session, and on exit writes a *run directory*::

    runs/figure1-20260806-143201/
        manifest.json   # machine-readable run summary (see below)
        trace.jsonl     # the deterministic simulation-event trace

The manifest carries everything wall-clock or environment dependent
(span timings, start/finish stamps, counter values); the trace carries
only simulation-time events, so identical seeded runs produce identical
trace files even though their manifests differ.

``repro-experiments stats <run>`` and ``trace <run>`` consume these
directories; :func:`resolve_run` lets both accept either a directory
path or an artifact name (latest run wins).
"""

from __future__ import annotations

import datetime
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import ConfigError
from .session import Telemetry, use
from .trace import KIND_COMM, TraceRecord

#: Default directory (under the working directory) for recorded runs.
DEFAULT_RUNS_DIR = "runs"

#: Manifest file name inside a run directory.
MANIFEST_NAME = "manifest.json"

#: Trace file name inside a run directory.
TRACE_NAME = "trace.jsonl"


class RunRecorder:
    """Record one experiment run into a fresh run directory."""

    def __init__(
        self,
        artifact: str,
        runs_dir: Union[str, Path] = DEFAULT_RUNS_DIR,
    ) -> None:
        if not artifact:
            raise ConfigError("run recorder needs an artifact name")
        self.artifact = artifact
        self.runs_dir = Path(runs_dir)
        self.telemetry = Telemetry(name=artifact)
        self.run_dir: Optional[Path] = None
        self._use = None
        self._started: Optional[datetime.datetime] = None

    def __enter__(self) -> "RunRecorder":
        self._started = datetime.datetime.now()
        self._use = use(self.telemetry)
        self._use.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._use is not None and self._started is not None
        self._use.__exit__(exc_type, exc, tb)
        # Record even failed runs: a trace of a crashed experiment is
        # exactly what one wants when debugging it.
        finished = datetime.datetime.now()
        self.run_dir = self._fresh_run_dir(self._started)
        self.run_dir.mkdir(parents=True, exist_ok=False)
        self._write(finished, failed=exc_type is not None)
        return False

    def _fresh_run_dir(self, started: datetime.datetime) -> Path:
        stamp = started.strftime("%Y%m%d-%H%M%S")
        candidate = self.runs_dir / f"{self.artifact}-{stamp}"
        suffix = 1
        while candidate.exists():
            suffix += 1
            candidate = self.runs_dir / f"{self.artifact}-{stamp}-{suffix}"
        return candidate

    def _write(self, finished: datetime.datetime, failed: bool) -> None:
        from .. import io

        assert self.run_dir is not None and self._started is not None
        io.save_trace(
            self.telemetry.trace.records, self.run_dir / TRACE_NAME
        )
        manifest = {
            "artifact": self.artifact,
            "started": self._started.isoformat(timespec="seconds"),
            "finished": finished.isoformat(timespec="seconds"),
            "wall_seconds": (finished - self._started).total_seconds(),
            "failed": failed,
            "trace_file": TRACE_NAME,
            **self.telemetry.snapshot(),
        }
        io.save_manifest(manifest, self.run_dir / MANIFEST_NAME)


# ---------------------------------------------------------------------------
# Run lookup and reporting
# ---------------------------------------------------------------------------

def is_run_dir(path: Path) -> bool:
    """Whether ``path`` looks like a recorded run directory."""
    return path.is_dir() and (path / MANIFEST_NAME).is_file()


def resolve_run(
    ref: str, runs_dir: Union[str, Path] = DEFAULT_RUNS_DIR
) -> Path:
    """Resolve a run reference to a run directory.

    ``ref`` may be a run directory path, a run directory name under
    ``runs_dir``, or an artifact name — in which case the latest recorded
    run of that artifact is returned (directory names embed a sortable
    timestamp).

    Raises:
        ConfigError: when nothing matches.
    """
    direct = Path(ref)
    if is_run_dir(direct):
        return direct
    base = Path(runs_dir)
    named = base / ref
    if is_run_dir(named):
        return named
    if base.is_dir():
        matches = sorted(
            path
            for path in base.iterdir()
            if path.name.startswith(f"{ref}-") and is_run_dir(path)
        )
        if matches:
            return matches[-1]
    raise ConfigError(
        f"no recorded run matches {ref!r} (looked in {base}); "
        f"record one with 'repro-experiments run <artifact>'"
    )


def load_run(
    run_dir: Union[str, Path],
) -> tuple[dict, List[TraceRecord]]:
    """Load a run directory's manifest and trace."""
    from .. import io

    run_dir = Path(run_dir)
    manifest = io.load_manifest(run_dir / MANIFEST_NAME)
    trace_file = run_dir / manifest.get("trace_file", TRACE_NAME)
    records = io.load_trace(trace_file) if trace_file.is_file() else []
    return manifest, records


def flow_bytes(records: List[TraceRecord]) -> Dict[str, float]:
    """Total bytes per flow from the trace's ``job.comm`` records."""
    totals: Dict[str, float] = {}
    for record in records:
        if record.kind != KIND_COMM:
            continue
        flow = str(record.fields.get("flow", "?"))
        totals[flow] = totals.get(flow, 0.0) + float(
            record.fields.get("bytes", 0.0)
        )
    return {flow: totals[flow] for flow in sorted(totals)}


def stats_report(run_dir: Union[str, Path]) -> str:
    """Human-readable summary of one recorded run."""
    from ..analysis.report import ascii_table

    manifest, records = load_run(run_dir)
    sections: List[str] = [
        f"run      {Path(run_dir)}",
        f"artifact {manifest.get('artifact', '?')}"
        + ("  (FAILED)" if manifest.get("failed") else ""),
        f"wall     {manifest.get('wall_seconds', 0.0):.3f} s "
        f"({manifest.get('started', '?')} -> "
        f"{manifest.get('finished', '?')})",
        f"events   {manifest.get('events', len(records))}",
    ]

    kinds = manifest.get("event_kinds") or {}
    if kinds:
        sections.append(
            ascii_table(
                ["event kind", "count"],
                [(kind, str(kinds[kind])) for kind in sorted(kinds)],
                title="Trace events",
            )
        )

    totals = flow_bytes(records)
    if totals:
        sections.append(
            ascii_table(
                ["flow", "bytes", "GB"],
                [
                    (flow, f"{total:.0f}", f"{total / 1e9:.2f}")
                    for flow, total in totals.items()
                ],
                title="Per-flow bytes",
            )
        )

    spans = manifest.get("spans") or {}
    if spans:
        sections.append(
            ascii_table(
                ["span", "count", "total", "mean"],
                [
                    (
                        path,
                        str(int(timing["count"])),
                        f"{timing['total_seconds'] * 1e3:.1f} ms",
                        f"{timing['mean_seconds'] * 1e3:.1f} ms",
                    )
                    for path, timing in spans.items()
                ],
                title="Span timings (wall clock)",
            )
        )

    counters = manifest.get("counters") or {}
    if counters:
        sections.append(
            ascii_table(
                ["counter", "value"],
                [
                    (name, f"{value:g}")
                    for name, value in counters.items()
                ],
                title="Counters",
            )
        )
    return "\n\n".join(sections)


def trace_report(
    run_dir: Union[str, Path],
    kind: Optional[str] = None,
    limit: int = 50,
) -> str:
    """Formatted listing of a recorded trace (filtered, truncated)."""
    _, records = load_run(run_dir)
    if kind is not None:
        records = [record for record in records if record.kind == kind]
    total = len(records)
    shown = records if limit <= 0 else records[:limit]
    lines = []
    for record in shown:
        fields = " ".join(
            f"{key}={record.fields[key]}" for key in sorted(record.fields)
        )
        lines.append(f"{record.t:>14.6f}  {record.kind:<16} {fields}")
    if total > len(shown):
        lines.append(f"... {total - len(shown)} more records")
    if not lines:
        lines.append("(no matching records)")
    return "\n".join(lines)
