"""The telemetry session facade and the ambient current session.

A :class:`Telemetry` object bundles the three recording surfaces —
metric registry, simulation-event trace, wall-clock span log — behind
one handle that instrumented code can treat uniformly:

* ``tel.counter("sim.events").inc()`` — metrics
* ``tel.event("job.phase", t=now, job="J1", state="comm")`` — trace
* ``with tel.span("solve_rotations"):`` — profiling

Disabled telemetry is the :data:`NULL` singleton: ``enabled`` is False,
every call is a no-op, and nothing is ever allocated, so always-on
instrumentation costs one attribute check on hot paths.

Most components accept an explicit ``telemetry=`` argument; components
that cannot (placement policies, the solver facade) use the *ambient*
session — :func:`current` returns whatever session the innermost
:func:`use` context installed, or :data:`NULL`. Experiment drivers and
the CLI install a session around a whole run, so every layer inherits
instrumentation without signature churn.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, Optional

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    NullCounter,
    NullGauge,
    NullHistogram,
    Registry,
)
from .spans import NULL_SPAN, SpanLog
from .trace import TraceRecorder


class Telemetry:
    """One recording session: registry + trace + spans."""

    #: Hot paths branch on this instead of calling no-op methods.
    enabled = True

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.registry = Registry()
        self.trace = TraceRecorder()
        self.spans = SpanLog()

    # -- metrics -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Named counter from this session's registry."""
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        """Named gauge from this session's registry."""
        return self.registry.gauge(name)

    def histogram(self, name: str) -> Histogram:
        """Named histogram from this session's registry."""
        return self.registry.histogram(name)

    # -- trace ---------------------------------------------------------

    def event(self, kind: str, t: float, **fields: Any) -> None:
        """Record one simulation event (simulation time, no wall clock)."""
        self.trace.emit(kind, t, **fields)

    # -- spans ---------------------------------------------------------

    def span(self, name: str):
        """Context manager timing the enclosed block (wall clock)."""
        return self.spans.span(name)

    # -- export --------------------------------------------------------

    def snapshot(self) -> dict:
        """Metrics + span timings + trace summary (no trace payload)."""
        data = self.registry.snapshot()
        data["spans"] = self.spans.timings()
        data["events"] = len(self.trace)
        data["event_kinds"] = self.trace.counts_by_kind()
        return data

    def worker_state(self) -> dict:
        """Everything a worker process ships back to its parent session.

        Carries the lossless registry state plus the full trace payload.
        Span timings are wall-clock and per-process, so they are *not*
        transported; the runner records worker wall time in the parent
        session's span log instead.
        """
        from .trace import TraceRecord  # noqa: F401 - documents the payload

        return {
            "registry": self.registry.state(),
            "trace": [record.to_dict() for record in self.trace],
        }

    def merge_worker_state(self, state: dict) -> None:
        """Fold a :meth:`worker_state` dict into this session.

        Metrics merge into the registry; trace records append in the
        order given (the runner calls this in spec order, so merged
        traces are deterministic regardless of worker scheduling).
        No-op on disabled sessions.
        """
        if not self.enabled:
            return
        from .trace import TraceRecord

        self.registry.merge_state(state.get("registry", {}))
        for data in state.get("trace", []):
            self.trace.append(TraceRecord.from_dict(data))


class NullTelemetry(Telemetry):
    """The disabled session: accepts everything, records nothing."""

    enabled = False

    _COUNTER = NullCounter("null")
    _GAUGE = NullGauge("null")
    _HISTOGRAM = NullHistogram("null")

    def __init__(self) -> None:
        super().__init__(name="null")

    def counter(self, name: str) -> Counter:
        return self._COUNTER

    def gauge(self, name: str) -> Gauge:
        return self._GAUGE

    def histogram(self, name: str) -> Histogram:
        return self._HISTOGRAM

    def event(self, kind: str, t: float, **fields: Any) -> None:
        pass

    def span(self, name: str):
        return NULL_SPAN


#: The shared disabled session. ``Simulator(telemetry=None)`` resolves to
#: the ambient session, which is NULL unless a :func:`use` block is open.
NULL = NullTelemetry()

_current: Telemetry = NULL


def current() -> Telemetry:
    """The ambient session (:data:`NULL` when none is installed)."""
    return _current


def resolve(telemetry: Optional[Telemetry]) -> Telemetry:
    """Map an optional ``telemetry=`` argument to a concrete session.

    ``None`` means "inherit the ambient session" — the convention every
    instrumented constructor in the library follows.
    """
    return telemetry if telemetry is not None else _current


@contextlib.contextmanager
def use(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Install ``telemetry`` as the ambient session for the block."""
    global _current
    previous = _current
    _current = telemetry
    try:
        yield telemetry
    finally:
        _current = previous
