"""Telemetry: metrics, simulation traces and wall-clock profiling.

Three recording surfaces behind one :class:`Telemetry` session:

* **Metrics** (:mod:`~repro.telemetry.metrics`) — named counters, gauges
  and histograms in a :class:`Registry`.
* **Trace** (:mod:`~repro.telemetry.trace`) — typed simulation-event
  records (phase transitions, rate changes, placements) carrying only
  simulation time, so seeded runs trace byte-identically.
* **Spans** (:mod:`~repro.telemetry.spans`) — wall-clock profiling of
  code blocks, nested by path.

Instrumented components take ``telemetry=None`` meaning "inherit the
ambient session" (:func:`current`); :func:`use` installs one for a
block, and :class:`~repro.telemetry.runs.RunRecorder` (imported from
``repro.telemetry.runs``) persists a whole run as a directory with a
JSONL trace and a JSON manifest.

Disabled telemetry is the :data:`NULL` singleton — every operation is a
no-op, so the default (unrecorded) simulator paths stay fast.
"""

from .metrics import Counter, Gauge, Histogram, Registry
from .session import NULL, NullTelemetry, Telemetry, current, resolve, use
from .spans import NULL_SPAN, Span, SpanLog
from .trace import (
    KIND_CC_RATE,
    KIND_COMM,
    KIND_DISPATCH,
    KIND_ITERATION,
    KIND_PHASE,
    KIND_PLACEMENT,
    KIND_RATE,
    KIND_SOLVE,
    TraceRecord,
    TraceRecorder,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "NULL",
    "NullTelemetry",
    "Telemetry",
    "current",
    "resolve",
    "use",
    "NULL_SPAN",
    "Span",
    "SpanLog",
    "TraceRecord",
    "TraceRecorder",
    "KIND_CC_RATE",
    "KIND_COMM",
    "KIND_DISPATCH",
    "KIND_ITERATION",
    "KIND_PHASE",
    "KIND_PLACEMENT",
    "KIND_RATE",
    "KIND_SOLVE",
]
