"""Structured simulation-event traces.

A :class:`TraceRecord` captures one simulation event — an event dispatch,
a job phase transition, a rate change, a placement decision — as a typed
``(kind, t, fields)`` triple where ``t`` is *simulation* time. Records
deliberately carry no wall-clock data: two runs of the same seeded
scenario must produce byte-identical traces, which is what the
determinism regression tests assert. Wall-clock profiling lives in
:mod:`repro.telemetry.spans` instead.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional

from ..errors import ConfigError

#: Record kinds emitted by the instrumented subsystems. Free-form kinds
#: are allowed (the trace is a transport, not a schema registry), but the
#: built-in instrumentation sticks to this vocabulary.
KIND_DISPATCH = "sim.dispatch"
KIND_PHASE = "job.phase"
KIND_ITERATION = "job.iteration"
KIND_COMM = "job.comm"
KIND_RATE = "rate.change"
KIND_CC_RATE = "cc.rate"
KIND_PLACEMENT = "scheduler.place"
KIND_SOLVE = "solve.outcome"
KIND_FAULT = "fault.window"


class TraceRecord:
    """One recorded simulation event."""

    __slots__ = ("kind", "t", "fields")

    def __init__(
        self, kind: str, t: float, fields: Optional[Mapping[str, Any]] = None
    ) -> None:
        if not kind:
            raise ConfigError("trace record needs a non-empty kind")
        self.kind = kind
        self.t = float(t)
        self.fields: Dict[str, Any] = dict(fields) if fields else {}

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form used by the JSONL codec in :mod:`repro.io`."""
        return {"kind": self.kind, "t": self.t, "fields": self.fields}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceRecord":
        """Inverse of :meth:`to_dict`.

        Raises:
            ConfigError: on a malformed record.
        """
        try:
            return cls(data["kind"], float(data["t"]), data.get("fields"))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed trace record: {data!r}") from exc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.t == other.t
            and self.fields == other.fields
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"TraceRecord({self.kind!r}, t={self.t:.9f}, {inner})"


class TraceRecorder:
    """Append-only collector of :class:`TraceRecord`."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []

    def emit(self, kind: str, t: float, **fields: Any) -> None:
        """Record one event at simulation time ``t``."""
        self._records.append(TraceRecord(kind, t, fields))

    def append(self, record: TraceRecord) -> None:
        """Append an already built record (used by the JSONL loader)."""
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[TraceRecord]:
        """The recorded events, in emission order."""
        return list(self._records)

    def counts_by_kind(self) -> Dict[str, int]:
        """Number of records per kind, sorted by kind name."""
        counts: Dict[str, int] = {}
        for record in self._records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return {kind: counts[kind] for kind in sorted(counts)}

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records of one kind, in emission order."""
        return [record for record in self._records if record.kind == kind]

    def clear(self) -> None:
        """Drop every recorded event."""
        self._records.clear()
