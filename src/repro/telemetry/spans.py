"""Wall-clock profiling spans.

``with telemetry.span("solve_rotations"):`` measures the wall-clock time
of the enclosed block. Spans nest: a span opened while another is active
records a slash-separated *path* (``"experiment.table1/solve_rotations"``),
so profiles keep their call structure without a tracing dependency.

Span timings are wall-clock and therefore *excluded* from the simulation
trace (which must be deterministic); they are reported through the run
manifest and the registry snapshot instead.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..errors import SimulationError


class Span:
    """One timed block. Use via :meth:`SpanLog.span`, not directly."""

    __slots__ = ("name", "path", "depth", "start", "duration")

    def __init__(self, name: str, path: str, depth: int) -> None:
        self.name = name
        self.path = path
        self.depth = depth
        self.start = 0.0
        #: Wall-clock seconds; populated when the span closes.
        self.duration = 0.0


class _SpanContext:
    """Context manager pairing one :class:`Span` with its log."""

    __slots__ = ("_log", "_span")

    def __init__(self, log: "SpanLog", span: Span) -> None:
        self._log = log
        self._span = span

    def __enter__(self) -> Span:
        self._log._open(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._log._close(self._span)
        return False


class SpanLog:
    """Collects completed spans and tracks the active nesting stack."""

    def __init__(self) -> None:
        self._stack: List[Span] = []
        self.completed: List[Span] = []

    def span(self, name: str) -> _SpanContext:
        """A context manager timing the enclosed block as ``name``."""
        parent = self._stack[-1] if self._stack else None
        path = f"{parent.path}/{name}" if parent else name
        return _SpanContext(self, Span(name, path, len(self._stack)))

    @property
    def active_depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    def _open(self, span: Span) -> None:
        self._stack.append(span)
        span.start = time.perf_counter()

    def _close(self, span: Span) -> None:
        span.duration = time.perf_counter() - span.start
        if not self._stack or self._stack[-1] is not span:
            raise SimulationError(
                f"span {span.path!r} closed out of order"
            )
        self._stack.pop()
        self.completed.append(span)

    def timings(self) -> Dict[str, Dict[str, float]]:
        """Aggregate completed spans by path (count / total / mean).

        Sorted by path for deterministic manifests.
        """
        by_path: Dict[str, List[Span]] = {}
        for span in self.completed:
            by_path.setdefault(span.path, []).append(span)
        return {
            path: {
                "count": len(spans),
                "total_seconds": sum(s.duration for s in spans),
                "mean_seconds": (
                    sum(s.duration for s in spans) / len(spans)
                ),
            }
            for path, spans in sorted(by_path.items())
        }

    def find(self, name: str) -> Optional[Span]:
        """The first completed span whose name or path equals ``name``."""
        for span in self.completed:
            if span.name == name or span.path == name:
                return span
        return None


class NullSpanContext:
    """Reusable no-op span for disabled telemetry."""

    __slots__ = ()

    #: Spans read ``.duration`` after exit; keep the attribute on the
    #: null object too so callers need no enabled-check.
    duration = 0.0
    name = ""
    path = ""
    depth = 0

    def __enter__(self) -> "NullSpanContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: Shared no-op span instance (stateless, safe to reuse and re-enter).
NULL_SPAN = NullSpanContext()
