"""Named instruments: counters, gauges and histograms.

A :class:`Registry` hands out instruments by name so independent
subsystems can share one metrics namespace without passing objects
around. Instruments are plain attribute-slot objects — incrementing a
counter is one float add — because they sit on simulator hot paths
(every event dispatch, every reallocation).

When telemetry is disabled the *null* variants are used instead: they
accept the same calls and do nothing, so instrumented code never needs
an ``if enabled`` guard around metric updates (guards are still worth
it around trace-record construction, which allocates).
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..errors import ConfigError


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigError(f"counter {self.name!r}: negative increment")
        self.value += amount


class Gauge:
    """A value that can move both ways (queue depth, active flows)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.value -= amount


class Histogram:
    """A distribution of observed values (kept exactly, not binned).

    The library's runs are small enough that storing raw observations is
    cheaper than getting bin edges wrong; percentiles are computed on
    demand from a sorted copy.
    """

    __slots__ = ("name", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(float(value))

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._values)

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return sum(self._values)

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.sum / self.count if self._values else 0.0

    @property
    def min(self) -> float:
        """Smallest observation (0.0 when empty)."""
        return min(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        """Largest observation (0.0 when empty)."""
        return max(self._values) if self._values else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0 <= q <= 100), linear interpolation."""
        if not 0 <= q <= 100:
            raise ConfigError(f"percentile {q} outside [0, 100]")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        if len(ordered) == 1:
            return ordered[0]
        position = (q / 100.0) * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1 - fraction) + ordered[upper] * fraction

    def to_dict(self) -> Dict[str, float]:
        """Summary statistics for manifests."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class NullCounter(Counter):
    """Counter that ignores updates (shared by disabled telemetry)."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass


class NullGauge(Gauge):
    """Gauge that ignores updates."""

    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass

    def dec(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass


class NullHistogram(Histogram):
    """Histogram that ignores observations."""

    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: D102 - no-op
        pass


class Registry:
    """Create-or-get store of named instruments.

    Names are free-form dotted strings (``"sim.events"``,
    ``"phasesim.reallocations"``). Asking for the same name twice returns
    the same instrument; asking for a name already used by a *different*
    instrument kind is an error — silent aliasing would corrupt both.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        self._check_free(name, self._counters)
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        self._check_free(name, self._gauges)
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        self._check_free(name, self._histograms)
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def _check_free(self, name: str, own: Dict[str, Any]) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if table is not own and name in table:
                raise ConfigError(
                    f"instrument name {name!r} already used by a "
                    f"different kind"
                )

    def snapshot(self) -> Dict[str, Any]:
        """All instrument values, sorted by name (deterministic)."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }

    def state(self) -> Dict[str, Any]:
        """Raw transportable state (histograms keep every observation).

        Unlike :meth:`snapshot` — which summarizes histograms — this is
        lossless, so a worker process can ship its registry to the parent
        and :meth:`merge_state` can fold it in without bias.
        """
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: list(self._histograms[name]._values)
                for name in sorted(self._histograms)
            },
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold a :meth:`state` dict from another registry into this one.

        Counters add, gauges take the incoming value (last write wins),
        histograms extend with the incoming observations.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).value += float(value)
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, values in state.get("histograms", {}).items():
            histogram = self.histogram(name)
            histogram._values.extend(float(v) for v in values)
