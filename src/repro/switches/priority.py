"""Strict-priority fluid service on a single port.

The paper's §4(ii) mechanism: each job competing on a link is assigned a
*unique* priority; the switch serves higher classes first, which mimics the
desirable side effect of unfairness without touching the congestion control.
This module is the single-port reference model; the network-wide version is
the priority handling in :class:`repro.net.fluid.FluidAllocator`.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..errors import ConfigError


class StrictPriorityScheduler:
    """Serve fluid demand by strict priority on one port."""

    def __init__(self, capacity: float) -> None:
        if capacity <= 0:
            raise ConfigError(f"capacity must be > 0, got {capacity}")
        self.capacity = capacity

    def service_rates(self, demands: Mapping[int, float]) -> Dict[int, float]:
        """Split capacity across priority classes.

        Args:
            demands: ``{priority: demanded rate}``; higher priority values
                are served first.

        Returns:
            ``{priority: service rate}``; demand above residual capacity is
            truncated, lower classes see what remains.
        """
        for priority, demand in demands.items():
            if demand < 0:
                raise ConfigError(f"negative demand for class {priority}")
        rates: Dict[int, float] = {}
        residual = self.capacity
        for priority in sorted(demands, reverse=True):
            granted = min(demands[priority], residual)
            rates[priority] = granted
            residual -= granted
        return rates
