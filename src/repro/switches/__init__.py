"""Switch models.

* :mod:`repro.switches.queues` — a fluid egress queue integrator.
* :mod:`repro.switches.ecn` — RED-style ECN marking, the congestion signal
  DCQCN reacts to.
* :mod:`repro.switches.priority` — strict-priority service (the paper's
  §4(ii) mechanism).
* :mod:`repro.switches.wfq` — weighted fair queueing on a single port,
  the single-link reference for the network-wide fluid allocator.
"""

from .queues import FluidQueue
from .ecn import RedEcnMarker
from .priority import StrictPriorityScheduler
from .wfq import WeightedFairScheduler

__all__ = [
    "FluidQueue",
    "RedEcnMarker",
    "StrictPriorityScheduler",
    "WeightedFairScheduler",
]
