"""Fluid egress-queue model.

The queue at a switch egress port grows at the excess of total arrival rate
over service capacity and drains at the deficit, never going negative:

    dq/dt = max(arrival - capacity, -q/dt)

:class:`FluidQueue` integrates this exactly over a step of constant arrival
rate, which is all the fixed-step DCQCN simulator needs.
"""

from __future__ import annotations

from ..errors import ConfigError


class FluidQueue:
    """Occupancy of one egress port under fluid arrivals.

    Attributes:
        capacity: Service rate, bytes/s.
        occupancy: Current backlog, bytes.
    """

    def __init__(self, capacity: float, max_occupancy: float = float("inf")):
        if capacity <= 0:
            raise ConfigError(f"queue capacity must be > 0, got {capacity}")
        if max_occupancy <= 0:
            raise ConfigError("max_occupancy must be > 0")
        self.capacity = capacity
        self.max_occupancy = max_occupancy
        self.occupancy = 0.0
        self._dropped = 0.0

    @property
    def dropped_bytes(self) -> float:
        """Total fluid discarded at the tail (only if max_occupancy set)."""
        return self._dropped

    def step(self, arrival_rate: float, dt: float) -> float:
        """Advance the queue by ``dt`` seconds of constant ``arrival_rate``.

        Returns:
            The queue occupancy after the step, bytes.
        """
        if dt < 0:
            raise ConfigError(f"dt must be >= 0, got {dt}")
        if arrival_rate < 0:
            raise ConfigError("arrival_rate must be >= 0")
        net = arrival_rate - self.capacity
        if net >= 0:
            new_occupancy = self.occupancy + net * dt
        else:
            # Drains linearly; clamp at empty.
            new_occupancy = max(0.0, self.occupancy + net * dt)
        if new_occupancy > self.max_occupancy:
            self._dropped += new_occupancy - self.max_occupancy
            new_occupancy = self.max_occupancy
        self.occupancy = new_occupancy
        return self.occupancy

    def reset(self) -> None:
        """Empty the queue and clear drop accounting."""
        self.occupancy = 0.0
        self._dropped = 0.0
