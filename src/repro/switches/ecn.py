"""RED-style ECN marking.

DCQCN's congestion signal: the switch marks packets with a probability that
is 0 below ``kmin`` bytes of queue, rises linearly to ``pmax`` at ``kmax``,
and is 1 above ``kmax``. Default thresholds follow the DCQCN paper's
recommended settings scaled for a 50 Gbps port.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..units import kib


class RedEcnMarker:
    """Computes per-packet ECN marking probability from queue occupancy."""

    def __init__(
        self,
        kmin: float = kib(100),
        kmax: float = kib(400),
        pmax: float = 0.1,
    ) -> None:
        if kmin < 0 or kmax <= kmin:
            raise ConfigError(f"need 0 <= kmin < kmax, got {kmin}, {kmax}")
        if not 0.0 < pmax <= 1.0:
            raise ConfigError(f"pmax must be in (0, 1], got {pmax}")
        self.kmin = kmin
        self.kmax = kmax
        self.pmax = pmax

    def marking_probability(self, occupancy: float) -> float:
        """Probability a packet is ECN-marked at this queue occupancy."""
        if occupancy <= self.kmin:
            return 0.0
        if occupancy >= self.kmax:
            return 1.0
        span = self.kmax - self.kmin
        return self.pmax * (occupancy - self.kmin) / span
