"""Weighted fair queueing (fluid) on a single port.

The single-link reference model for weighted bandwidth sharing: backlogged
flows receive capacity in proportion to their weights, and capacity unused
by demand-limited flows is redistributed (water-filling). Used in tests to
cross-check :class:`repro.net.fluid.FluidAllocator` on one link, and by the
priority-queue mechanism to model per-queue WFQ fallback when priorities
are exhausted.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from ..errors import ConfigError


class WeightedFairScheduler:
    """Weighted max-min sharing of one port among demand-limited flows."""

    def __init__(self, capacity: float) -> None:
        if capacity <= 0:
            raise ConfigError(f"capacity must be > 0, got {capacity}")
        self.capacity = capacity

    def service_rates(
        self,
        demands: Mapping[str, Tuple[float, float]],
    ) -> Dict[str, float]:
        """Split capacity by weighted water-filling.

        Args:
            demands: ``{flow_id: (weight, demanded rate)}``; weights must be
                positive, demands non-negative. A flow never receives more
                than its demand.

        Returns:
            ``{flow_id: service rate}`` summing to at most capacity.
        """
        for flow_id, (weight, demand) in demands.items():
            if weight <= 0:
                raise ConfigError(f"flow {flow_id}: weight must be > 0")
            if demand < 0:
                raise ConfigError(f"flow {flow_id}: demand must be >= 0")

        rates = {flow_id: 0.0 for flow_id in demands}
        # Kept in demand-dict insertion order: the fill loop sums float
        # weights and breaks theta ties by first occurrence, so the
        # container must iterate deterministically (DET003).
        unfrozen = [
            flow_id for flow_id, (_, demand) in demands.items() if demand > 0
        ]
        residual = self.capacity
        while unfrozen and residual > 0:
            total_weight = sum(demands[f][0] for f in unfrozen)
            # Largest uniform fill level before a flow hits its demand.
            theta = residual / total_weight
            capped = min(
                unfrozen,
                key=lambda f: (demands[f][1] - rates[f]) / demands[f][0],
            )
            theta_cap = (demands[capped][1] - rates[capped]) / demands[capped][0]
            step = min(theta, theta_cap)
            for flow_id in unfrozen:
                rates[flow_id] += demands[flow_id][0] * step
            residual -= total_weight * step
            if step == theta_cap and theta_cap <= theta:
                unfrozen.remove(capped)
            if step == theta and theta <= theta_cap:
                break
        # Clamp away float residue (matters for denormal demands).
        return {
            flow_id: min(rate, demands[flow_id][1])
            for flow_id, rate in rates.items()
        }
