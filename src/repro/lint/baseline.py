"""The committed lint baseline.

A baseline grandfathers known findings so the linter can land strict
while violations are burned down over time. It is a small JSON document
(committed at the repo root as ``lint-baseline.json``)::

    {"version": 1, "findings": [
        {"code": "UNIT001", "path": "src/repro/x.py", "line": 12}
    ]}

Matching is by :meth:`~repro.lint.findings.Finding.fingerprint`
(``code:path:line``), consumed one-for-one, so a *new* violation of an
already-baselined kind still fails. ``--write-baseline`` regenerates
the file from the current findings; the goal state — enforced by
``tests/test_lint_selfcheck.py`` — is an **empty** baseline.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import List, Sequence, Tuple

from ..errors import ConfigError
from .findings import Finding

#: Default baseline location (relative to the invocation directory).
DEFAULT_BASELINE = "lint-baseline.json"

_VERSION = 1


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, fingerprints: Sequence[str] = ()) -> None:
        self._counts = Counter(fingerprints)

    def __len__(self) -> int:
        return sum(self._counts.values())

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into (fresh, baselined).

        Each baseline entry absorbs at most one finding, so duplicates
        beyond the recorded count surface as fresh.
        """
        remaining = Counter(self._counts)
        fresh: List[Finding] = []
        matched: List[Finding] = []
        for finding in findings:
            key = finding.fingerprint()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                matched.append(finding)
            else:
                fresh.append(finding)
        return fresh, matched

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file (empty baseline if it does not exist)."""
        if not path.exists():
            return cls()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"unreadable baseline {path}: {exc}")
        entries = data.get("findings", [])
        fingerprints = []
        for entry in entries:
            try:
                fingerprints.append(
                    f"{entry['code']}:{entry['path']}:{int(entry['line'])}"
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigError(
                    f"malformed baseline entry in {path}: {entry!r}"
                ) from exc
        return cls(fingerprints)

    @staticmethod
    def write(path: Path, findings: Sequence[Finding]) -> None:
        """Snapshot ``findings`` as the new baseline."""
        document = {
            "version": _VERSION,
            "findings": [
                {
                    "code": finding.code,
                    "path": finding.path,
                    "line": finding.line,
                }
                for finding in sorted(findings)
            ],
        }
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
