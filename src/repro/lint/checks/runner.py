"""Runner-discipline rules: the PR-2 process-pool and run-spec contracts.

* **PICKLE001** — backends handed to :func:`repro.runner.backends.
  register` must pickle into spawn-style worker processes. A class or
  function defined inside another function never pickles; neither does
  a lambda. Registration must pass module-level definitions (or a class
  providing ``__reduce__`` / a state factory).
* **RUN001** — experiment drivers describe runs as
  :class:`~repro.runner.spec.RunSpec` and execute through
  :func:`~repro.runner.run_many`; instantiating a simulator directly in
  ``repro/experiments`` bypasses the cache, the ``--jobs`` fan-out and
  the per-spec telemetry merge. Backend adapters (classes with an
  ``execute`` method, registered into the backend registry) are the one
  sanctioned place to construct simulators.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..context import ModuleContext
from ..findings import Finding, Severity
from ..rules import BaseRule, register_rule

#: Simulator entry points a driver must not construct directly.
_SIMULATOR_NAMES = {
    "PhaseLevelSimulator",
    "DcqcnFluidSimulator",
    "AimdFluidSimulator",
    "ClusterSimulation",
    "ClusterService",
    "Simulator",
}


def _nested_definitions(tree: ast.Module) -> Set[str]:
    """Names of classes/functions defined inside a function body."""
    nested: Set[str] = set()

    def visit(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            is_def = isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            )
            if is_def and inside_function:
                nested.add(child.name)
            visit(
                child,
                inside_function
                or isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ),
            )

    visit(tree, False)
    return nested


def _is_register_call(ctx: ModuleContext, node: ast.Call) -> bool:
    resolved = ctx.resolve(node.func)
    if resolved is None:
        return False
    parts = resolved.split(".")
    return parts[-1] == "register" and (
        "runner" in parts or "backends" in parts
    )


@register_rule
class UnpicklableBackendRule(BaseRule):
    """PICKLE001: registering a backend that cannot reach pool workers."""

    code = "PICKLE001"
    name = "unpicklable-backend"
    severity = Severity.ERROR
    description = (
        "run specs fan out to spawn-style worker processes; a backend "
        "built from a nested class, nested function or lambda fails to "
        "pickle and silently forces serial execution."
    )
    hint = (
        "define the backend class at module level (or give it "
        "__reduce__ / a to_state/from_state factory)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        nested = _nested_definitions(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_register_call(ctx, node):
                continue
            backend = None
            if len(node.args) >= 2:
                backend = node.args[1]
            else:
                for keyword in node.keywords:
                    if keyword.arg == "backend":
                        backend = keyword.value
            if backend is None:
                continue
            if isinstance(backend, ast.Lambda):
                yield self.finding(
                    ctx, backend,
                    "lambda registered as a backend cannot pickle",
                )
                continue
            target = backend
            if isinstance(backend, ast.Call):
                target = backend.func
            if isinstance(target, ast.Name) and target.id in nested:
                yield self.finding(
                    ctx, backend,
                    f"backend `{target.id}` is defined inside a "
                    "function and cannot pickle into pool workers",
                )


@register_rule
class DirectSimulatorRule(BaseRule):
    """RUN001: experiment drivers constructing simulators directly."""

    code = "RUN001"
    name = "direct-simulator"
    severity = Severity.ERROR
    scope = ("experiments",)
    description = (
        "drivers that bypass RunSpec/run_many lose the result cache, "
        "--jobs parallelism and deterministic telemetry merge the "
        "runner guarantees."
    )
    hint = (
        "describe the run as a RunSpec and execute via "
        "repro.runner.run_many (simulators belong in backend adapters)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        # Classes with an `execute` method are backend adapters — the
        # sanctioned home for simulator construction.
        adapter_spans = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and any(
                isinstance(item, ast.FunctionDef)
                and item.name == "execute"
                for item in node.body
            ):
                adapter_spans.append(
                    (node.lineno, node.end_lineno or node.lineno)
                )

        def inside_adapter(node: ast.AST) -> bool:
            line = getattr(node, "lineno", 0)
            return any(
                start <= line <= end for start, end in adapter_spans
            )

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _SIMULATOR_NAMES and not inside_adapter(node):
                yield self.finding(
                    ctx, node,
                    f"`{name}` instantiated directly in an experiment "
                    "driver",
                )
