"""DET004: RNG substream discipline across the whole program.

PR 5/6 established *bit-equivalence* contracts between fidelity tiers:
a seeded run must replay identically whichever engine executes it. That
only holds while every component draws from its own
:class:`repro.sim.rng.RandomStreams` substream — stream *positions* are
part of the contract. Three statically-checkable ways the contract
breaks, each a finding family here (draw sites come from the taint
pass, :mod:`repro.lint.taint`):

* **collision** — the same literal name (or f-string template) drawn by
  two different components: both advance one generator, so adding a
  draw in one silently shifts the other's sequence. Deliberate sharing
  must be declared in ``[tool.repro-lint.rng.shared]`` with the
  contract that justifies it.
* **foreign draw** — a substream whose name prefix is owned by another
  component (``[tool.repro-lint.rng.owners]``): only the owner may
  advance its streams.
* **escaping generator** — a generator drawn at module scope (shared
  mutable state for every importer) or stored on a *public* attribute
  (any consumer can advance the stream position from outside the
  owning component).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..findings import Finding, Severity
from ..rules import BaseProjectRule, register_rule
from ..taint import template_prefix


@register_rule
class SubstreamDisciplineRule(BaseProjectRule):
    """DET004: named-substream ownership and collision tracking."""

    code = "DET004"
    name = "substream-discipline"
    severity = Severity.ERROR
    description = (
        "RandomStreams substreams carry bit-equivalence contracts: a "
        "name drawn by two components, a draw of another component's "
        "stream, or a generator escaping through module scope or a "
        "public attribute silently shifts stream positions between "
        "runs and tiers."
    )
    hint = (
        "give each component its own substream name; declare deliberate "
        "sharing in [tool.repro-lint.rng.shared]; keep generators on "
        "private attributes"
    )

    def check_project(self, project) -> Iterator[Finding]:
        yield from self._collisions(project)
        yield from self._foreign_draws(project)
        yield from self._escapes(project)

    @staticmethod
    def _component(index) -> str:
        if index.package_parts:
            return index.package_parts[0]
        return index.module

    def _draw_sites(self, project):
        """(method, template) -> [(component, index, draw)], sorted."""
        table: Dict[Tuple[str, str], List] = {}
        for name in sorted(project.modules):
            index = project.modules[name]
            for draw in index.rng_draws:
                if draw.template is None:
                    continue
                key = (draw.method, draw.template)
                table.setdefault(key, []).append(
                    (self._component(index), index, draw)
                )
        return table

    def _collisions(self, project) -> Iterator[Finding]:
        shared = project.config.shared_streams
        for (method, template), sites in sorted(
            self._draw_sites(project).items()
        ):
            if template in shared:
                continue
            components = sorted({component for component, _, _ in sites})
            if len(components) < 2:
                continue
            others = ", ".join(components)
            for _component, index, draw in sites:
                yield self.project_finding(
                    index.path,
                    draw.line,
                    draw.col,
                    f"substream {template!r} ({method}) drawn in "
                    f"{len(components)} components ({others}); shared "
                    "names advance one generator from multiple places",
                )

    def _foreign_draws(self, project) -> Iterator[Finding]:
        owners = project.config.stream_owners
        shared = project.config.shared_streams
        for (method, template), sites in sorted(
            self._draw_sites(project).items()
        ):
            if template in shared:
                continue
            owner = owners.get(template_prefix(template))
            if owner is None:
                continue
            for component, index, draw in sites:
                if component != owner:
                    yield self.project_finding(
                        index.path,
                        draw.line,
                        draw.col,
                        f"substream {template!r} ({method}) is owned by "
                        f"component `{owner}` but drawn in "
                        f"`{component}`",
                    )

    def _escapes(self, project) -> Iterator[Finding]:
        for name in sorted(project.modules):
            index = project.modules[name]
            for draw in index.rng_draws:
                if draw.module_scope:
                    shown = draw.template or "<dynamic>"
                    yield self.project_finding(
                        index.path,
                        draw.line,
                        draw.col,
                        f"substream {shown!r} drawn at module scope: "
                        "every importer shares (and advances) one "
                        "generator",
                    )
                if draw.public_attr is not None:
                    shown = draw.template or "<dynamic>"
                    yield self.project_finding(
                        index.path,
                        draw.line,
                        draw.col,
                        f"substream {shown!r} stored on public "
                        f"attribute `{draw.public_attr}`: the stream "
                        "position can be advanced from outside the "
                        "owning component",
                    )
