"""UNIT002: dimensional-unit inference, within and across modules.

UNIT001 bans *anonymous conversion factors*; UNIT002 goes after the bug
it cannot see — arithmetic that mixes values of different dimensions
with no conversion at all (a tick-valued integer added to a
seconds-valued float survives UNIT001 untouched and corrupts every
tier-equivalence comparison downstream).

The heavy lifting happens in the index pass
(:mod:`repro.lint.dimflow`): each module is abstractly interpreted once
and distilled into intra-module violations, parameter-name dimension
conventions, and resolved call sites with inferred argument dimensions.
This rule re-emits the intra-module findings and joins the call sites
against the project-wide function table, so passing a ticks value to a
``*_s`` parameter is flagged even when caller and callee live in
different packages.
"""

from __future__ import annotations

from typing import Iterator

from ..dimflow import DIMENSIONS
from ..findings import Finding, Severity
from ..rules import BaseProjectRule, register_rule


@register_rule
class DimensionMismatchRule(BaseProjectRule):
    """UNIT002: mismatched dimensions in arithmetic and call edges."""

    code = "UNIT002"
    name = "dimension-mismatch"
    severity = Severity.ERROR
    description = (
        "values carry dimensions (seconds, ticks, bytes, bytes/s) "
        "seeded from repro.units helpers, TICKS_PER_SECOND arithmetic "
        "and *_s/*_ticks/*_bytes naming; adding, subtracting, comparing "
        "or passing mismatched dimensions is a unit bug no inline "
        "factor will fix."
    )
    hint = (
        "convert explicitly with repro.units "
        "(seconds_to_ticks/ticks_to_seconds/us/ms/gbps) before mixing, "
        "and name values for the unit they hold"
    )

    def check_project(self, project) -> Iterator[Finding]:
        for name in sorted(project.modules):
            index = project.modules[name]
            for issue in index.dim_issues:
                yield self.project_finding(
                    index.path, issue.line, issue.col, issue.message
                )
            yield from self._call_edges(project, index)

    def _call_edges(self, project, index) -> Iterator[Finding]:
        for site in index.call_sites:
            sig = project.resolve_function(site.callee)
            if sig is None:
                continue
            pairs = list(zip(sig.params, sig.param_dims, site.pos_dims))
            by_name = dict(zip(sig.params, sig.param_dims))
            for keyword, dim in site.kw_dims:
                if keyword in by_name:
                    pairs.append((keyword, by_name[keyword], dim))
            for param, expected, actual in pairs:
                if (
                    expected in DIMENSIONS
                    and actual in DIMENSIONS
                    and expected != actual
                ):
                    yield self.project_finding(
                        index.path,
                        site.line,
                        site.col,
                        f"argument for `{param}` of "
                        f"`{sig.qualname}` is {actual}, parameter "
                        f"expects {expected}",
                    )
