"""The bundled rule set — importing this package registers every rule."""

from . import determinism, runner, units  # noqa: F401
