"""The bundled rule set — importing this package registers every rule."""

from . import (  # noqa: F401
    architecture,
    determinism,
    dimensions,
    rng_streams,
    runner,
    units,
)
