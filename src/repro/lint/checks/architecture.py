"""ARCH001: the layer DAG — upward imports and import cycles.

The repo's packages form an explicit layering (configured under
``[tool.repro-lint]`` in pyproject.toml, rendered in DESIGN.md)::

    units/errors/floats  ->  sim/net/core  ->  cc/mechanisms/switches
        ->  workloads/scheduler  ->  faults/runner  ->  experiments/cli

with ``telemetry`` and ``io`` declared cross-cutting. A package may
import its own layer and anything below; an *upward* import couples a
foundation to the machinery built on top of it — exactly the kind of
edge that made the pre-PR-8 tree accrete hidden knots (``scheduler``
quietly importing ``experiments`` helpers is the canonical failure).

Two finding families:

* **upward import** — any import whose target's layer is strictly
  higher than the importer's. ``if TYPE_CHECKING:`` imports are exempt
  (they are erased at runtime); function-local lazy imports are *not*
  (the runtime dependency is real — suppress with a written
  justification where the inversion is deliberate).
* **import cycle** — strongly connected components in the module-level
  import-time graph (lazy and TYPE_CHECKING imports excluded, mirroring
  what the interpreter actually executes).
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding, Severity
from ..rules import BaseProjectRule, register_rule


@register_rule
class LayerDagRule(BaseProjectRule):
    """ARCH001: enforce the declared package layering."""

    code = "ARCH001"
    name = "layer-dag"
    severity = Severity.ERROR
    description = (
        "packages form a DAG (units/errors/floats -> sim/net/core -> "
        "cc/mechanisms/switches -> workloads/scheduler -> faults/runner "
        "-> experiments/cli, telemetry+io cross-cutting); upward "
        "imports and module cycles knot foundations to the machinery "
        "built on them."
    )
    hint = (
        "depend downward only: move shared types down a layer, use an "
        "`if TYPE_CHECKING:` import for annotations, or justify the "
        "inversion with a simlint suppression"
    )

    def check_project(self, project) -> Iterator[Finding]:
        yield from self._upward_imports(project)
        yield from self._cycles(project)

    def _upward_imports(self, project) -> Iterator[Finding]:
        config = project.config
        layer_of = config.layer_of()
        cross_cutting = set(config.cross_cutting)
        root = None
        for index in project.modules.values():
            root = index.module.split(".")[0]
            break
        for name in sorted(project.modules):
            index = project.modules[name]
            if not index.package_parts:
                continue  # the root package __init__ is unconstrained
            importer = index.package_parts[0]
            if importer in cross_cutting or importer not in layer_of:
                continue
            # One finding per import statement: a ``from x import a, b``
            # yields one site per name, all at the same position.
            seen = set()
            for site in index.imports:
                parts = site.target.split(".")
                if len(parts) < 2 or parts[0] != root:
                    continue
                target = parts[1]
                if target == importer or target in cross_cutting:
                    continue
                if target not in layer_of:
                    continue
                if site.type_checking:
                    continue
                key = (site.line, site.col, target)
                if key in seen:
                    continue
                if layer_of[target] > layer_of[importer]:
                    seen.add(key)
                    yield self.project_finding(
                        index.path,
                        site.line,
                        site.col,
                        f"upward import: `{importer}` (layer "
                        f"{layer_of[importer]}) imports `{target}` "
                        f"(layer {layer_of[target]})",
                    )

    def _cycles(self, project) -> Iterator[Finding]:
        for component in project.strongly_connected_modules():
            chain = " -> ".join([*component, component[0]])
            members = set(component)
            for name in component:
                index = project.modules[name]
                site = self._edge_into(project, index, members)
                if site is None:
                    continue
                yield self.project_finding(
                    index.path,
                    site.line,
                    site.col,
                    f"module import cycle: {chain}",
                )

    @staticmethod
    def _edge_into(project, index, members):
        """First import-time edge from ``index`` into the cycle."""
        for site in index.imports:
            if site.type_checking or site.function_scope:
                continue
            resolved = project.resolve_module(site.target)
            if resolved in members and resolved != index.module:
                return site
        return None
