"""Unit-discipline rules: no inline conversion factors, no float ``==``.

* **UNIT001** — multiplying or dividing by a bare power-of-ten float
  (``1e-3``, ``1e6``, ...) in simulation code is almost always a unit
  conversion that belongs in :mod:`repro.units` (or behind a named
  module constant). Inline factors are where the classic factor-of-8
  and factor-of-1000 networking bugs live.
* **FP001** — comparing floats with ``==`` / ``!=`` against a float
  literal in the geometry/network/CC layers; accumulated rounding makes
  such checks flip between platforms. Use :func:`repro.floats.isclose`.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..context import ModuleContext
from ..findings import Finding, Severity
from ..rules import BaseRule, register_rule

#: Powers of ten that read as unit conversions when multiplied inline.
_MAGIC_FACTORS = {
    1e3, 1e6, 1e9, 1e12,
    1e-3, 1e-6, 1e-9, 1e-12,
}


def _module_constant_values(tree: ast.Module) -> Set[int]:
    """ids of value expressions bound to module-level UPPER_CASE names.

    ``TICKS_PER_SECOND = 1_000_000``-style definitions are the sanctioned
    home for magic factors, so their right-hand sides are exempt.
    """
    exempt: Set[int] = set()
    for stmt in tree.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if all(
            isinstance(t, ast.Name) and t.id.isupper() for t in targets
        ):
            for node in ast.walk(value):
                exempt.add(id(node))
    return exempt


@register_rule
class MagicUnitFactorRule(BaseRule):
    """UNIT001: inline power-of-ten factor in simulation code."""

    code = "UNIT001"
    name = "magic-unit-factor"
    severity = Severity.WARNING
    scope = (
        "net", "sim", "cc", "switches",
        "workloads", "scheduler", "core", "mechanisms",
    )
    description = (
        "a bare `* 1e-3` / `/ 1e9` in sim code is an unlabeled unit "
        "conversion; repro.units names the factor and keeps the "
        "factor-of-8/1000 bugs out."
    )
    hint = (
        "use a repro.units helper (ms/us/gbps/to_milliseconds/...) or "
        "bind the factor to a named UPPER_CASE module constant"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        exempt = _module_constant_values(ctx.tree)

        def magic(node: ast.expr) -> bool:
            return (
                isinstance(node, ast.Constant)
                and isinstance(node.value, float)
                and node.value in _MAGIC_FACTORS
                and id(node) not in exempt
            )

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Mult, ast.Div)):
                continue
            for operand in (node.left, node.right):
                if magic(operand):
                    yield self.finding(
                        ctx, operand,
                        f"inline unit-conversion factor "
                        f"`{operand.value!r}`",
                    )


@register_rule
class FloatEqualityRule(BaseRule):
    """FP001: ``==`` / ``!=`` against a float literal."""

    code = "FP001"
    name = "float-equality"
    severity = Severity.ERROR
    scope = ("core", "net", "cc")
    description = (
        "exact float comparison flips under accumulated rounding; the "
        "geometry, network and CC layers must compare through the "
        "shared tolerance helpers."
    )
    hint = "use repro.floats.isclose(a, b) (shared REL_TOL/ABS_TOL)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            left = node.left
            for op, right in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Eq, ast.NotEq)):
                    for side in (left, right):
                        if isinstance(side, ast.Constant) and isinstance(
                            side.value, float
                        ):
                            symbol = (
                                "==" if isinstance(op, ast.Eq) else "!="
                            )
                            yield self.finding(
                                ctx, node,
                                f"float literal compared with `{symbol}`",
                            )
                            break
                left = right
