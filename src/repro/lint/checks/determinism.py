"""Determinism rules: seeded randomness, no wall clock, ordered iteration.

The headline artifacts depend on byte-identical seeded replays (see
``tests/test_trace_determinism.py``), so the three classic ways
nondeterminism sneaks into a simulator each get a rule:

* **DET001** — randomness must flow from :class:`repro.sim.rng.
  RandomStreams` (or an explicitly seeded ``default_rng``); the stdlib
  ``random`` module and numpy's legacy global generator are banned.
* **DET002** — wall-clock reads are allowed only inside
  ``repro.telemetry`` (the span log is the one sanctioned wall-clock
  surface; see ``runner/parallel.py`` for the pattern).
* **DET003** — simulation/trace code must not iterate ``set``s: with
  randomized string hashing the visit order differs between processes,
  which silently reorders events and allocations. Wrap in ``sorted``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from ..context import ModuleContext
from ..findings import Finding, Severity
from ..rules import BaseRule, register_rule

#: numpy.random attributes that are deterministic-by-construction.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "SeedSequence",
    "Generator",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: Canonical names that read the wall clock.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.thread_time",
    "time.thread_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register_rule
class UnseededRandomRule(BaseRule):
    """DET001: module-level RNG calls bypass the seeded stream factory."""

    code = "DET001"
    name = "unseeded-random"
    severity = Severity.ERROR
    description = (
        "stdlib `random` and numpy's legacy global generator draw from "
        "hidden process-global state; simulation randomness must come "
        "from repro.sim.rng.RandomStreams or a seeded default_rng."
    )
    hint = (
        "use repro.sim.rng.RandomStreams(seed).get(name) or "
        "np.random.default_rng(seed)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            if resolved == "random" or resolved.startswith("random."):
                yield self.finding(
                    ctx, node,
                    f"call to stdlib `{resolved}` uses the hidden "
                    "process-global generator",
                )
                continue
            if resolved.startswith("numpy.random."):
                attr = resolved[len("numpy.random."):]
                if attr not in _NP_RANDOM_ALLOWED:
                    yield self.finding(
                        ctx, node,
                        f"`{resolved}` draws from numpy's legacy "
                        "global generator",
                    )
                elif attr == "default_rng" and not (
                    node.args or node.keywords
                ):
                    yield self.finding(
                        ctx, node,
                        "`default_rng()` without a seed is entropy-"
                        "seeded and irreproducible",
                    )


@register_rule
class WallClockRule(BaseRule):
    """DET002: wall-clock reads outside the telemetry span surface."""

    code = "DET002"
    name = "wall-clock"
    severity = Severity.ERROR
    exempt = ("telemetry",)
    description = (
        "wall-clock reads make results depend on host speed and load; "
        "only repro.telemetry (the span log) may touch the real clock."
    )
    hint = (
        "time simulation with the simulator clock (`sim.now`); time "
        "real work with `telemetry.span(...)`"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in _WALL_CLOCK:
                yield self.finding(
                    ctx, node,
                    f"wall-clock call `{resolved}` outside "
                    "repro.telemetry",
                )


#: Nodes that open a new variable scope.
_SCOPE_NODES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.Lambda,
    ast.ClassDef,
)


def _scope_nodes(scope):
    """Split a scope into (own nodes, directly nested scopes).

    ``own`` is every node reachable without crossing a function/class
    boundary; ``nested`` are the boundary nodes themselves.
    """
    own, nested, queue = [], [], [scope]
    while queue:
        node = queue.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                nested.append(child)
            else:
                own.append(child)
                queue.append(child)
    return own, nested


def _is_set_expr(node: ast.expr) -> bool:
    """Whether ``node`` evaluates to a ``set`` (direct forms only)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register_rule
class SetIterationRule(BaseRule):
    """DET003: iterating a set in event/trace-emitting code."""

    code = "DET003"
    name = "set-iteration"
    severity = Severity.ERROR
    scope = ("net", "sim", "core", "mechanisms", "switches", "scheduler")
    description = (
        "set iteration order depends on randomized string hashing; in "
        "net/, sim/, core/, mechanisms/, switches/ and scheduler/ it "
        "silently reorders events, allocations and trace records "
        "between runs."
    )
    hint = "iterate `sorted(the_set)` (or keep an ordered list/dict)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._scan_scope(ctx, ctx.tree)

    def _scan_scope(self, ctx: ModuleContext, scope) -> Iterator[Finding]:
        """Scan one scope; recurse into nested functions/classes.

        `name = <set expr>` bindings are tracked per scope (parameters
        and outer-scope names are never inherited), so a set-valued
        name in one function cannot flag a same-named sequence in
        another.
        """
        own, nested = _scope_nodes(scope)
        set_names: Dict[str, bool] = {}
        for node in own:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    set_names[target.id] = _is_set_expr(node.value)

        def flags(iterable: ast.expr) -> bool:
            if _is_set_expr(iterable):
                return True
            if isinstance(iterable, ast.Name):
                return set_names.get(iterable.id, False)
            return False

        for node in own:
            if isinstance(node, ast.For) and flags(node.iter):
                yield self.finding(
                    ctx, node.iter,
                    "iteration over a set has nondeterministic order",
                )
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                for comp in node.generators:
                    if flags(comp.iter):
                        yield self.finding(
                            ctx, comp.iter,
                            "comprehension over a set has "
                            "nondeterministic order",
                        )
        for child_scope in nested:
            yield from self._scan_scope(ctx, child_scope)
