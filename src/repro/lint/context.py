"""Per-module analysis context shared by every rule.

:class:`ModuleContext` parses one file once and offers the services the
domain rules keep needing:

* **dotted-name resolution** — ``np.random.default_rng`` resolves to
  ``numpy.random.default_rng`` through the module's import aliases
  (including relative imports, resolved against the module's position
  inside the ``repro`` package), so rules match canonical names instead
  of guessing at local spellings;
* **package scoping** — ``ctx.package_parts`` locates the module inside
  the ``repro`` package (``("net", "phasesim")``), which is how rules
  restrict themselves to simulation code and exempt e.g. telemetry.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Dict, Optional, Tuple

#: The package the scoping rules anchor on.
ROOT_PACKAGE = "repro"


def _module_parts(path: str) -> Tuple[str, ...]:
    """Dotted-module parts for a file path.

    Anchors on the *last* ``repro`` path segment so both installed
    layouts (``src/repro/net/x.py``) and synthetic test paths
    (``repro/net/x.py``) resolve to ``("repro", "net", "x")``. Paths
    outside a ``repro`` directory fall back to the bare stem.
    """
    pure = PurePosixPath(str(path).replace("\\", "/"))
    parts = list(pure.parts)
    stem = pure.stem
    if parts and parts[-1].endswith(".py"):
        parts[-1] = stem
    if ROOT_PACKAGE in parts[:-1] or parts[-1] == ROOT_PACKAGE:
        anchor = (
            len(parts) - 1 - parts[::-1].index(ROOT_PACKAGE)
        )
        parts = parts[anchor:]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return tuple(parts)


class ModuleContext:
    """One parsed module plus the lookups rules share.

    Attributes:
        path: The path as given (used in findings).
        source: Full source text.
        tree: The parsed :class:`ast.Module`.
        module_parts: Dotted-module parts, e.g. ``("repro", "net",
            "fluid")``.
        aliases: Local name -> canonical dotted path for every import
            in the module (``np`` -> ``numpy``, ``perf_counter`` ->
            ``time.perf_counter``).
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.module_parts = _module_parts(path)
        self.aliases = self._collect_aliases(tree)

    # ------------------------------------------------------------------
    # Scoping
    # ------------------------------------------------------------------

    @property
    def in_root_package(self) -> bool:
        """Whether the module lives inside the ``repro`` package."""
        return bool(self.module_parts) and (
            self.module_parts[0] == ROOT_PACKAGE
        )

    @property
    def package_parts(self) -> Tuple[str, ...]:
        """Parts below the root package (``("net", "fluid")``)."""
        if self.in_root_package:
            return self.module_parts[1:]
        return self.module_parts

    def in_subpackage(self, *names: str) -> bool:
        """Whether the module sits under any of the given subpackages."""
        parts = self.package_parts
        return bool(parts) and parts[0] in names

    # ------------------------------------------------------------------
    # Import-alias resolution
    # ------------------------------------------------------------------

    def _relative_base(self, level: int) -> Tuple[str, ...]:
        """The package a ``level``-dot relative import resolves against."""
        # module repro.experiments.sweep: level=1 -> repro.experiments,
        # level=2 -> repro. Clamp at the root for malformed inputs.
        parts = self.module_parts
        drop = min(level, len(parts))
        return parts[: len(parts) - drop]

    def _collect_aliases(self, tree: ast.Module) -> Dict[str, str]:
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = (
                        alias.name
                        if alias.asname
                        else alias.name.split(".")[0]
                    )
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base: Tuple[str, ...]
                if node.level:
                    base = self._relative_base(node.level)
                else:
                    base = ()
                module = tuple(node.module.split(".")) if node.module else ()
                prefix = ".".join(base + module)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    aliases[local] = (
                        f"{prefix}.{alias.name}" if prefix else alias.name
                    )
        return aliases

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted name of a ``Name``/``Attribute`` chain.

        Returns ``None`` when the chain does not bottom out in an
        imported name — locals, attributes of ``self`` and computed
        expressions never resolve, which keeps rules free of false
        positives on same-named local variables.
        """
        chain = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        return ".".join([root, *reversed(chain)])

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleContext":
        """Parse ``source`` (raises ``SyntaxError`` on bad input)."""
        tree = ast.parse(source, filename=path)
        return cls(path, source, tree)
