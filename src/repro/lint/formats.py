"""Report renderers: text, JSON, SARIF 2.1.0 and GitHub annotations.

``--format sarif`` emits a minimal, valid SARIF 2.1.0 log (one run, one
tool, results with physical locations and stable partial fingerprints)
so the CI lint job can upload findings for inline PR annotation via
``github/codeql-action/upload-sarif``. ``--format github`` prints
GitHub Actions workflow commands (``::error file=...``) directly, which
annotates the diff with zero extra plumbing.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from .engine import Report
from .findings import Finding, Severity
from .rules import Rule

#: SARIF schema the ``sarif`` format targets.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: Report) -> str:
    """The human-facing one-line-per-finding report."""
    lines = [finding.render() for finding in report.findings]
    seen = set()
    hints = []
    for finding in report.findings:
        if finding.code not in seen and finding.hint:
            seen.add(finding.code)
            hints.append(f"  {finding.code}: {finding.hint}")
    if hints:
        lines.append("fix hints:")
        lines.extend(hints)
    summary = (
        f"{len(report.findings)} finding(s) in {report.files} file(s)"
    )
    if report.baselined:
        summary += f" ({len(report.baselined)} baselined)"
    lines.append(summary if report.findings else f"clean: {summary}")
    return "\n".join(lines)


def render_json(report: Report) -> str:
    """The machine-readable document (stable across runs)."""
    return json.dumps(report.to_dict(), indent=2)


def _sarif_level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _sarif_result(finding: Finding) -> dict:
    return {
        "ruleId": finding.code,
        "level": _sarif_level(finding.severity),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {
            "reproLint/v1": finding.fingerprint(),
        },
    }


def render_sarif(report: Report, rules: Sequence[Rule]) -> str:
    """A SARIF 2.1.0 log of the fresh findings."""
    rule_entries = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.description},
            "help": {"text": rule.hint},
            "defaultConfiguration": {
                "level": _sarif_level(rule.severity)
            },
        }
        for rule in rules
    ]
    document = {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/repro/repro"
                        ),
                        "rules": rule_entries,
                    }
                },
                "results": [
                    _sarif_result(finding)
                    for finding in report.findings
                ],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_github(report: Report) -> str:
    """GitHub Actions workflow commands, one per finding.

    Emitted on stdout inside a workflow step, these annotate the PR
    diff inline; the trailing summary line is inert to the runner.
    """
    lines: List[str] = []
    for finding in report.findings:
        command = (
            "error"
            if finding.severity is Severity.ERROR
            else "warning"
        )
        message = finding.message.replace("%", "%25").replace(
            "\n", "%0A"
        )
        lines.append(
            f"::{command} file={finding.path},line={finding.line},"
            f"col={finding.col + 1},title={finding.code}::{message}"
        )
    lines.append(
        f"{len(report.findings)} finding(s) in {report.files} file(s)"
    )
    return "\n".join(lines)
