"""RNG substream taint extraction for DET004.

The bit-equivalence contracts (PR 5/6) hang on every component drawing
from its *own* named :class:`repro.sim.rng.RandomStreams` substream —
two components sharing a name silently consume each other's stream
positions. This module finds the draw sites statically:

* a receiver expression is **stream-tainted** when it is a direct
  ``RandomStreams(...)`` construction, a ``.spawn(...)`` of a tainted
  expression, a local previously assigned from a tainted expression, a
  parameter annotated ``RandomStreams``, or — the repo-wide naming
  convention — any name/attribute whose final identifier contains
  ``stream``;
* a call ``<tainted>.get(name)`` / ``<tainted>.spawn(name)`` is a draw.
  Literal names record verbatim; f-strings normalize to a template with
  ``{}`` placeholders (``f"job:{id}"`` -> ``"job:{}"``), so the *shape*
  of a dynamic name still participates in collision analysis.

Extraction is scope-aware (taint does not leak between functions) and
records where the drawn generator lands: module scope and public
``self`` attributes are escape hatches DET004 reports on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from .context import ModuleContext

#: Scope-opening nodes (mirrors the DET003 walker).
_SCOPE_NODES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.Lambda,
    ast.ClassDef,
)


@dataclass(frozen=True)
class RngDraw:
    """One ``RandomStreams.get``/``spawn`` call site.

    Attributes:
        method: ``"get"`` or ``"spawn"``.
        template: Normalized name (``"arrival-gaps"``, ``"job:{}"``) or
            ``None`` when the name expression is dynamic.
        line: 1-based line of the call.
        col: Column offset of the call.
        module_scope: Whether the draw executes at module import time.
        public_attr: Attribute name when the generator is stored on a
            public ``self`` attribute, else ``None``.
    """

    method: str
    template: Optional[str]
    line: int
    col: int
    module_scope: bool = False
    public_attr: Optional[str] = None


def name_template(node: ast.expr) -> Optional[str]:
    """Normalize a substream-name expression to a template string."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: List[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                parts.append(value.value)
            else:
                parts.append("{}")
        return "".join(parts)
    return None


def template_prefix(template: str) -> str:
    """The ownership prefix of a name template.

    The leading segment before the first ``:`` or ``-`` separator names
    the owning component (``"arrival-gaps"`` -> ``"arrival"``).
    """
    for index, char in enumerate(template):
        if char in ":-":
            return template[:index]
    return template


def _terminal_identifier(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class _ScopeScanner:
    """Extracts draws from one scope, tracking tainted local names."""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.draws: List[RngDraw] = []

    def _resolves_to_factory(self, node: ast.expr) -> bool:
        resolved = self.ctx.resolve(node)
        if resolved is not None:
            return resolved.split(".")[-1] == "RandomStreams"
        return (
            isinstance(node, ast.Name) and node.id == "RandomStreams"
        )

    def _is_tainted(self, node: ast.expr, tainted: Set[str]) -> bool:
        if isinstance(node, ast.Call):
            if self._resolves_to_factory(node.func):
                return True
            # RandomStreams.spawn() returns another factory.
            if isinstance(node.func, ast.Attribute) and (
                node.func.attr == "spawn"
            ):
                return self._is_tainted(node.func.value, tainted)
            return False
        if isinstance(node, ast.Name) and node.id in tainted:
            return True
        terminal = _terminal_identifier(node)
        return terminal is not None and "stream" in terminal.lower()

    def _annotation_is_factory(self, annotation) -> bool:
        if annotation is None:
            return False
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            return "RandomStreams" in annotation.value
        for node in ast.walk(annotation):
            name = _terminal_identifier(node)
            if name == "RandomStreams":
                return True
        return False

    def scan(self, scope, module_scope: bool, tainted: Set[str]) -> None:
        own, nested = _split_scope(scope)
        # Seed taint from annotated parameters of this scope.
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in [
                *args.posonlyargs, *args.args, *args.kwonlyargs,
            ]:
                if self._annotation_is_factory(arg.annotation):
                    tainted.add(arg.arg)
        # Taint locals assigned from stream expressions (order-free
        # single pass: assignment statements are rare enough that a
        # fixed-point is not worth the cycles).
        for node in own:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and self._is_tainted(
                    node.value, tainted
                ):
                    tainted.add(target.id)
        for node in own:
            if isinstance(node, ast.Call):
                self._record_draw(node, module_scope, tainted, own)
        for child in nested:
            # Lambdas share the enclosing taint; functions/classes
            # start from the annotated-parameter seed only. Class
            # bodies execute with the enclosing module, so a draw
            # there still counts as import-time.
            child_taint = (
                set(tainted) if isinstance(child, ast.Lambda) else set()
            )
            child_module_scope = module_scope and isinstance(
                child, ast.ClassDef
            )
            self.scan(child, child_module_scope, child_taint)

    def _record_draw(
        self, node: ast.Call, module_scope: bool, tainted: Set[str], own
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in ("get", "spawn"):
            return
        if not node.args or node.keywords:
            return
        if not self._is_tainted(func.value, tainted):
            return
        template = name_template(node.args[0])
        public_attr = None
        for stmt in own:
            if (
                isinstance(stmt, ast.Assign)
                and stmt.value is node
                and len(stmt.targets) == 1
            ):
                target = stmt.targets[0]
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and not target.attr.startswith("_")
                ):
                    public_attr = target.attr
        self.draws.append(
            RngDraw(
                method=func.attr,
                template=template,
                line=node.lineno,
                col=node.col_offset,
                module_scope=module_scope,
                public_attr=public_attr,
            )
        )


def _split_scope(scope) -> Tuple[list, list]:
    """(nodes owned by this scope, directly nested scope nodes)."""
    own, nested, queue = [], [], [scope]
    while queue:
        node = queue.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                nested.append(child)
            else:
                own.append(child)
                queue.append(child)
    return own, nested


def extract_rng_draws(ctx: ModuleContext) -> Tuple[RngDraw, ...]:
    """Every substream draw site in the module, sorted by position."""
    scanner = _ScopeScanner(ctx)
    scanner.scan(ctx.tree, True, set())
    return tuple(
        sorted(scanner.draws, key=lambda d: (d.line, d.col, d.method))
    )
