"""The walker: files -> contexts -> rules -> filtered findings.

:func:`lint_paths` is the programmatic entry point (the CLI is a thin
shell over it); :func:`lint_source` lints an in-memory snippet against
a virtual path, which is how the rule tests build their fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import ConfigError
from .baseline import Baseline
from .context import ModuleContext
from .findings import Finding, Severity
from .rules import Rule, select_rules
from .suppress import is_suppressed, suppressions

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "runs"}


@dataclass
class Report:
    """Outcome of one lint run.

    Attributes:
        findings: Fresh (non-baselined, non-suppressed) findings,
            sorted by path/line/col/code.
        baselined: Findings matched by the baseline (reported but not
            counted against the exit code).
        files: Number of files scanned.
    """

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def ok(self) -> bool:
        """Whether the run is clean (exit code 0)."""
        return not self.findings

    def counts_by_code(self) -> Dict[str, int]:
        """Fresh findings per rule code, sorted by code."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return {code: counts[code] for code in sorted(counts)}

    def to_dict(self) -> dict:
        """The ``--format json`` document."""
        return {
            "version": 1,
            "files": self.files,
            "findings": [f.to_dict() for f in self.findings],
            "baselined": len(self.baselined),
            "summary": {
                "total": len(self.findings),
                "by_code": self.counts_by_code(),
            },
        }


def _iter_python_files(paths: Sequence[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(
                    part in _SKIP_DIRS for part in candidate.parts
                ):
                    files.append(candidate)
        elif path.is_file():
            files.append(path)
        else:
            raise ConfigError(f"no such file or directory: {raw}")
    return files


def lint_module(
    ctx: ModuleContext, rules: Sequence[Rule]
) -> List[Finding]:
    """Run ``rules`` over one parsed module, honoring suppressions."""
    table = suppressions(ctx.source)
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            if not is_suppressed(table, finding.line, finding.code):
                findings.append(finding)
    return sorted(findings)


def lint_source(
    source: str,
    path: str = "repro/module.py",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint an in-memory snippet as if it lived at ``path``.

    The virtual path drives rule scoping exactly like a real file
    (``"repro/net/x.py"`` is net-scope), which is how the rule tests
    exercise positive and negative fixtures.
    """
    rules = select_rules(select, ignore)
    ctx = ModuleContext.parse(path, source)
    return lint_module(ctx, rules)


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    baseline: Optional[Baseline] = None,
) -> Report:
    """Lint files/directories and return the filtered :class:`Report`.

    Unparseable files surface as ``PARSE000`` findings rather than
    aborting the run — a linter that dies on the file it should flag is
    not much of a linter.
    """
    rules = select_rules(select, ignore)
    report = Report()
    collected: List[Finding] = []
    for file in _iter_python_files(paths):
        display = file.as_posix()
        report.files += 1
        try:
            source = file.read_text(encoding="utf-8")
            ctx = ModuleContext.parse(display, source)
        except (OSError, SyntaxError, ValueError) as exc:
            collected.append(
                Finding(
                    path=display,
                    line=getattr(exc, "lineno", None) or 1,
                    col=getattr(exc, "offset", None) or 0,
                    code="PARSE000",
                    message=f"could not parse file: {exc}",
                    severity=Severity.ERROR,
                    hint="fix the syntax error",
                )
            )
            continue
        collected.extend(lint_module(ctx, rules))
    collected.sort()
    if baseline is None:
        baseline = Baseline()
    report.findings, report.baselined = baseline.split(collected)
    return report
