"""The two-pass walker: index the program, then run the rules.

Pass 1 (**index**) parses every file once, runs the per-module rules,
and distills each module into a picklable
:class:`~repro.lint.project.ModuleIndex`. With ``jobs > 1`` this pass
fans out over a process pool; files are processed in sorted order and
results merged in input order, so the output is byte-identical at any
job count.

Pass 2 (**semantic**) joins the summaries into a
:class:`~repro.lint.project.ProjectContext` and runs the project rules
(ARCH001/DET004/UNIT002) with whole-program visibility. Both passes
feed one finding stream through the same suppression and baseline
machinery.

:func:`lint_paths` is the programmatic entry point (the CLI is a thin
shell over it); :func:`lint_source` / :func:`lint_sources` lint
in-memory snippets against virtual paths, which is how the rule tests
build single- and multi-module fixtures.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ConfigError
from .baseline import Baseline
from .config import LintConfig, load_config
from .context import ModuleContext
from .findings import Finding, Severity
from .project import (
    ModuleIndex,
    ProjectContext,
    apply_project_suppressions,
    build_module_index,
)
from .rules import Rule, is_project_rule, select_rules
from .suppress import is_suppressed, suppressions

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "runs"}


@dataclass
class Report:
    """Outcome of one lint run.

    Attributes:
        findings: Fresh (non-baselined, non-suppressed) findings,
            sorted by path/line/col/code.
        baselined: Findings matched by the baseline (reported but not
            counted against the exit code).
        files: Number of files scanned.
    """

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def ok(self) -> bool:
        """Whether the run is clean (exit code 0)."""
        return not self.findings

    def counts_by_code(self) -> Dict[str, int]:
        """Fresh findings per rule code, sorted by code."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return {code: counts[code] for code in sorted(counts)}

    def to_dict(self) -> dict:
        """The ``--format json`` document."""
        return {
            "version": 1,
            "files": self.files,
            "findings": [f.to_dict() for f in self.findings],
            "baselined": len(self.baselined),
            "summary": {
                "total": len(self.findings),
                "by_code": self.counts_by_code(),
            },
        }


def _iter_python_files(paths: Sequence[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(
                    part in _SKIP_DIRS for part in candidate.parts
                ):
                    files.append(candidate)
        elif path.is_file():
            files.append(path)
        else:
            raise ConfigError(f"no such file or directory: {raw}")
    # Deterministic regardless of how the caller ordered the inputs.
    unique = sorted(set(files), key=lambda f: f.as_posix())
    return unique


def _module_rules(rules: Sequence[Rule]) -> List[Rule]:
    return [rule for rule in rules if not is_project_rule(rule)]


def _project_rules(rules: Sequence[Rule]) -> List[Rule]:
    return [rule for rule in rules if is_project_rule(rule)]


def lint_module(
    ctx: ModuleContext, rules: Sequence[Rule]
) -> List[Finding]:
    """Run per-module ``rules`` over one parsed module."""
    table = suppressions(ctx.source)
    findings: List[Finding] = []
    for rule in _module_rules(rules):
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            if not is_suppressed(table, finding.line, finding.code):
                findings.append(finding)
    return sorted(findings)


def _parse_error_finding(display: str, exc: Exception) -> Finding:
    return Finding(
        path=display,
        line=getattr(exc, "lineno", None) or 1,
        col=getattr(exc, "offset", None) or 0,
        code="PARSE000",
        message=f"could not parse file: {exc}",
        severity=Severity.ERROR,
        hint="fix the syntax error",
    )


def _index_file(
    display: str,
    select: Optional[Tuple[str, ...]],
    ignore: Optional[Tuple[str, ...]],
) -> Tuple[List[Finding], Optional[ModuleIndex]]:
    """Pass-1 unit of work: parse, per-module rules, module summary.

    Module-level (not nested) so it pickles into pool workers; the rule
    registry re-imports inside each worker on first use.
    """
    rules = select_rules(select, ignore)
    try:
        source = Path(display).read_text(encoding="utf-8")
        ctx = ModuleContext.parse(display, source)
    except (OSError, SyntaxError, ValueError) as exc:
        return [_parse_error_finding(display, exc)], None
    return lint_module(ctx, rules), build_module_index(ctx)


def _run_semantic_pass(
    indexes: Sequence[ModuleIndex],
    rules: Sequence[Rule],
    config: LintConfig,
) -> List[Finding]:
    """Pass 2: project rules over the joined index."""
    project_rules = _project_rules(rules)
    if not project_rules:
        return []
    project = ProjectContext(indexes, config=config)
    findings: List[Finding] = []
    for rule in project_rules:
        findings.extend(rule.check_project(project))
    return apply_project_suppressions(findings, project.modules)


def lint_source(
    source: str,
    path: str = "repro/module.py",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint an in-memory snippet as if it lived at ``path``.

    The virtual path drives rule scoping exactly like a real file
    (``"repro/net/x.py"`` is net-scope). The semantic pass runs over
    the one-module project, so intra-module ARCH001/DET004/UNIT002
    findings surface here too.
    """
    return lint_sources(
        {path: source}, select=select, ignore=ignore, config=config
    )


def lint_sources(
    sources: Mapping[str, str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint a virtual multi-module tree (path -> source).

    This is how the semantic-rule tests build cross-module fixtures: an
    upward import in one virtual file and its target in another behave
    exactly like two files on disk.
    """
    rules = select_rules(select, ignore)
    findings: List[Finding] = []
    indexes: List[ModuleIndex] = []
    for path in sorted(sources):
        ctx = ModuleContext.parse(path, sources[path])
        findings.extend(lint_module(ctx, rules))
        indexes.append(build_module_index(ctx))
    findings.extend(
        _run_semantic_pass(
            indexes, rules, config if config is not None else LintConfig()
        )
    )
    return sorted(findings)


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    baseline: Optional[Baseline] = None,
    jobs: int = 1,
    config: Optional[LintConfig] = None,
) -> Report:
    """Lint files/directories and return the filtered :class:`Report`.

    ``jobs > 1`` fans the index pass out over a process pool; results
    are byte-identical to a serial run. Unparseable files surface as
    ``PARSE000`` findings rather than aborting the run — a linter that
    dies on the file it should flag is not much of a linter.
    """
    rules = select_rules(select, ignore)
    select_t = tuple(select) if select else None
    ignore_t = tuple(ignore) if ignore else None
    if config is None:
        config = load_config(paths)
    files = _iter_python_files(paths)
    displays = [file.as_posix() for file in files]

    collected: List[Finding] = []
    indexes: List[ModuleIndex] = []
    if jobs > 1 and len(displays) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(
                pool.map(
                    _index_file,
                    displays,
                    [select_t] * len(displays),
                    [ignore_t] * len(displays),
                    chunksize=8,
                )
            )
    else:
        results = [
            _index_file(display, select_t, ignore_t)
            for display in displays
        ]
    for findings, index in results:
        collected.extend(findings)
        if index is not None:
            indexes.append(index)

    collected.extend(_run_semantic_pass(indexes, rules, config))
    collected.sort()

    report = Report(files=len(displays))
    if baseline is None:
        baseline = Baseline()
    report.findings, report.baselined = baseline.split(collected)
    return report
