"""Lightweight dimensional abstract interpretation for UNIT002.

Assigns physical dimensions to expressions and propagates them through
assignments, arithmetic and call edges. The lattice is deliberately
small — exactly the units the simulators trade in (see
:mod:`repro.units`):

    seconds | milliseconds | microseconds | ticks | bytes | rate

plus ``SCALAR`` (dimensionless numeric literals and ratios) and ``None``
(unknown). Dimensions are seeded three ways:

* calls to :mod:`repro.units` helpers (``us(...)`` is seconds,
  ``seconds_to_ticks(...)`` is ticks, ``gbps(...)`` is bytes/s, ...);
* ``TICKS_PER_SECOND`` / ``BITS_PER_BYTE`` arithmetic (``x *
  TICKS_PER_SECOND`` converts seconds to ticks);
* the repo's naming convention — ``*_s`` is seconds, ``*_ms`` /
  ``*_us`` millis/micros, ``*_ticks`` ticks, ``*_bytes`` bytes,
  ``*_bytes_per_s`` / ``*_bps`` a rate — applied to parameters, locals
  and attribute reads.

The interpreter is intentionally conservative: a violation is reported
only when **both** operands of a ``+``/``-``/comparison carry known,
different dimensions, so unknown values never produce noise. Analysis
is intra-procedural; every resolved call into the project is recorded
as a :class:`CallSite` so the UNIT002 project rule can check argument
dimensions against parameter conventions *across* modules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .context import ModuleContext

SECONDS = "seconds"
MILLISECONDS = "milliseconds"
MICROSECONDS = "microseconds"
TICKS = "ticks"
BYTES = "bytes"
RATE = "bytes/s"

#: Dimensions that participate in mismatch checks.
DIMENSIONS = (SECONDS, MILLISECONDS, MICROSECONDS, TICKS, BYTES, RATE)

#: Dimensionless numeric value (literals, ratios, BITS_PER_BYTE).
SCALAR = "scalar"

#: ``repro.units`` helper -> dimension of its return value.
_UNITS_RETURNS = {
    "seconds": SECONDS,
    "milliseconds": SECONDS,
    "microseconds": SECONDS,
    "ms": SECONDS,
    "us": SECONDS,
    "seconds_to_ticks": TICKS,
    "ticks_to_seconds": SECONDS,
    "gbps": RATE,
    "mbps": RATE,
    "kib": BYTES,
    "mib": BYTES,
    "gib": BYTES,
    "megabytes": BYTES,
    "to_milliseconds": MILLISECONDS,
    "to_microseconds": MICROSECONDS,
}

#: ``repro.units`` helper -> dimension its argument must carry.
_UNITS_ARGS = {
    "seconds": SECONDS,
    "milliseconds": MILLISECONDS,
    "microseconds": MICROSECONDS,
    "ms": MILLISECONDS,
    "us": MICROSECONDS,
    "seconds_to_ticks": SECONDS,
    "ticks_to_seconds": TICKS,
    "to_milliseconds": SECONDS,
    "to_microseconds": SECONDS,
    "to_gbps": RATE,
    "to_megabytes": BYTES,
}

#: Name-suffix conventions, most specific first.
_SUFFIX_DIMS: Tuple[Tuple[str, str], ...] = (
    ("_bytes_per_s", RATE),
    ("_bps", RATE),
    ("_bytes", BYTES),
    ("_ticks", TICKS),
    ("_ms", MILLISECONDS),
    ("_us", MICROSECONDS),
    ("_seconds", SECONDS),
    ("_sec", SECONDS),
    ("_s", SECONDS),
)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


@dataclass(frozen=True, order=True)
class DimIssue:
    """One intra-module dimensional violation."""

    line: int
    col: int
    message: str


@dataclass(frozen=True)
class CallSite:
    """A resolved call with the inferred dimensions of its arguments."""

    callee: str
    pos_dims: Tuple[Optional[str], ...]
    kw_dims: Tuple[Tuple[str, Optional[str]], ...]
    line: int
    col: int


@dataclass(frozen=True)
class FunctionSig:
    """Parameter-name dimension conventions of one function."""

    qualname: str
    params: Tuple[str, ...]
    param_dims: Tuple[Optional[str], ...]
    return_dim: Optional[str] = None

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


def dim_of_identifier(name: str) -> Optional[str]:
    """Dimension implied by the repo naming convention, if any."""
    if name == "ticks":
        return TICKS
    for suffix, dim in _SUFFIX_DIMS:
        if name.endswith(suffix) and len(name) > len(suffix):
            return dim
    return None


def _mix_message(left: str, right: str, what: str) -> str:
    pair = {left, right}
    if pair == {SECONDS, TICKS}:
        return (
            f"{what} mixes seconds and ticks; convert with "
            "seconds_to_ticks/ticks_to_seconds first"
        )
    return f"{what} mixes {left} and {right}"


class _Analyzer:
    """One pass over one module's statements."""

    def __init__(
        self,
        ctx: ModuleContext,
        return_dims: Dict[str, Optional[str]],
        local_functions: Dict[str, str],
    ) -> None:
        self.ctx = ctx
        self.return_dims = return_dims
        self.local_functions = local_functions
        self.issues: List[DimIssue] = []
        self.call_sites: List[CallSite] = []
        self.returns: List[Optional[str]] = []

    # -------------------------------------------------------- helpers

    def _units_helper(self, func: ast.expr) -> Optional[str]:
        """Base name of a ``repro.units`` helper call, if that is one."""
        resolved = self.ctx.resolve(func)
        if resolved is None:
            if self.ctx.module_parts[-1:] == ("units",) and isinstance(
                func, ast.Name
            ):
                return func.id if func.id in _UNITS_RETURNS else None
            return None
        parts = resolved.split(".")
        if len(parts) >= 2 and parts[-2] == "units":
            return parts[-1]
        return None

    def _is_constant(self, node: ast.expr, name: str) -> bool:
        resolved = self.ctx.resolve(node)
        if resolved is not None:
            return resolved.split(".")[-1] == name
        return isinstance(node, ast.Name) and node.id == name

    def _issue(self, node: ast.AST, message: str) -> None:
        self.issues.append(
            DimIssue(
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    # ------------------------------------------------------ statements

    def run(self, body, env: Dict[str, Optional[str]]) -> None:
        for stmt in body:
            self._statement(stmt, env)

    def _statement(self, stmt, env: Dict[str, Optional[str]]) -> None:
        if isinstance(stmt, _SCOPE_NODES):
            return  # nested defs are analyzed as their own functions
        if isinstance(stmt, ast.Assign):
            dim = self._infer(stmt.value, env)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env[target.id] = self._bind(target.id, dim)
        elif isinstance(stmt, ast.AnnAssign):
            dim = (
                self._infer(stmt.value, env)
                if stmt.value is not None
                else None
            )
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = self._bind(stmt.target.id, dim)
        elif isinstance(stmt, ast.AugAssign):
            target_dim = self._infer(stmt.target, env)
            value_dim = self._infer(stmt.value, env)
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                if (
                    target_dim in DIMENSIONS
                    and value_dim in DIMENSIONS
                    and target_dim != value_dim
                ):
                    self._issue(
                        stmt,
                        _mix_message(
                            target_dim, value_dim, "augmented assignment"
                        ),
                    )
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.returns.append(None)
            else:
                self.returns.append(self._infer(stmt.value, env))
        elif isinstance(stmt, ast.Expr):
            self._infer(stmt.value, env)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._infer(stmt.test, env)
            self.run(stmt.body, env)
            self.run(stmt.orelse, env)
        elif isinstance(stmt, ast.For):
            self._infer(stmt.iter, env)
            if isinstance(stmt.target, ast.Name):
                # Let the naming convention govern the loop variable.
                env.pop(stmt.target.id, None)
            self.run(stmt.body, env)
            self.run(stmt.orelse, env)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._infer(item.context_expr, env)
            self.run(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body, env)
            for handler in stmt.handlers:
                self.run(handler.body, env)
            self.run(stmt.orelse, env)
            self.run(stmt.finalbody, env)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._infer(child, env)

    @staticmethod
    def _bind(name: str, dim: Optional[str]) -> Optional[str]:
        """Dimension to record for an assigned name.

        An explicit inference wins; otherwise the name's own convention
        applies (assigning an unknown to ``dt_s`` keeps it seconds).
        """
        if dim is not None and dim != SCALAR:
            return dim
        convention = dim_of_identifier(name)
        return convention if convention is not None else dim

    # ----------------------------------------------------- expressions

    def _infer(self, node: ast.expr, env) -> Optional[str]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return None
            if isinstance(node.value, (int, float)):
                return SCALAR
            return None
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return dim_of_identifier(node.id)
        if isinstance(node, ast.Attribute):
            self._infer(node.value, env)
            return dim_of_identifier(node.attr)
        if isinstance(node, ast.Subscript):
            base = self._infer(node.value, env)
            return base if base in DIMENSIONS else None
        if isinstance(node, ast.UnaryOp):
            return self._infer(node.operand, env)
        if isinstance(node, ast.BinOp):
            return self._binop(node, env)
        if isinstance(node, ast.Compare):
            self._compare(node, env)
            return None
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.IfExp):
            self._infer(node.test, env)
            left = self._infer(node.body, env)
            right = self._infer(node.orelse, env)
            return left if left == right else None
        if isinstance(node, ast.BoolOp):
            dims = [self._infer(value, env) for value in node.values]
            known = {d for d in dims if d in DIMENSIONS}
            return known.pop() if len(known) == 1 else None
        if isinstance(node, ast.Starred):
            self._infer(node.value, env)
            return None
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self._infer(element, env)
            return None
        return None

    def _binop(self, node: ast.BinOp, env) -> Optional[str]:
        left_tps = self._is_constant(node.left, "TICKS_PER_SECOND")
        right_tps = self._is_constant(node.right, "TICKS_PER_SECOND")
        left = (
            SCALAR
            if self._is_constant(node.left, "BITS_PER_BYTE")
            else self._infer(node.left, env)
        )
        right = (
            SCALAR
            if self._is_constant(node.right, "BITS_PER_BYTE")
            else self._infer(node.right, env)
        )
        op = node.op
        if isinstance(op, (ast.Add, ast.Sub)):
            if (
                left in DIMENSIONS
                and right in DIMENSIONS
                and left != right
            ):
                what = (
                    "addition" if isinstance(op, ast.Add) else "subtraction"
                )
                self._issue(node, _mix_message(left, right, what))
                return None
            if left in DIMENSIONS:
                return left
            if right in DIMENSIONS:
                return right
            if left == SCALAR and right == SCALAR:
                return SCALAR
            return None
        if isinstance(op, ast.Mult):
            if left_tps or right_tps:
                other = right if left_tps else left
                if other in (MILLISECONDS, MICROSECONDS, TICKS):
                    self._issue(
                        node,
                        f"multiplying {other} by TICKS_PER_SECOND "
                        "(expects seconds)",
                    )
                return TICKS
            dims = {left, right}
            if dims == {SECONDS, RATE}:
                return BYTES
            if left in DIMENSIONS and right in (SCALAR, None):
                return left if right == SCALAR else None
            if right in DIMENSIONS and left in (SCALAR, None):
                return right if left == SCALAR else None
            if left == SCALAR and right == SCALAR:
                return SCALAR
            return None
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if right_tps:
                if left in (MILLISECONDS, MICROSECONDS, SECONDS):
                    self._issue(
                        node,
                        f"dividing {left} by TICKS_PER_SECOND "
                        "(expects ticks)",
                    )
                return SECONDS
            if left == BYTES and right == SECONDS:
                return RATE
            if left == BYTES and right == RATE:
                return SECONDS
            if left in DIMENSIONS and right in DIMENSIONS:
                return SCALAR if left == right else None
            if left in DIMENSIONS and right == SCALAR:
                return left
            if left == SCALAR and right == SCALAR:
                return SCALAR
            return None
        if isinstance(op, ast.Mod):
            if left in DIMENSIONS and right in (SCALAR, None):
                return left
            if left in DIMENSIONS and right in DIMENSIONS:
                return left if left == right else None
            return None
        if isinstance(op, ast.Pow):
            return SCALAR if left == SCALAR and right == SCALAR else None
        return None

    def _compare(self, node: ast.Compare, env) -> None:
        left_node = node.left
        left = self._infer(left_node, env)
        for op, comparator in zip(node.ops, node.comparators):
            right = self._infer(comparator, env)
            if isinstance(
                op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)
            ):
                if (
                    left in DIMENSIONS
                    and right in DIMENSIONS
                    and left != right
                ):
                    self._issue(
                        node, _mix_message(left, right, "comparison")
                    )
            left = right

    def _call(self, node: ast.Call, env) -> Optional[str]:
        pos_dims = tuple(
            self._infer(arg, env)
            for arg in node.args
            if not isinstance(arg, ast.Starred)
        )
        kw_dims = tuple(
            (keyword.arg, self._infer(keyword.value, env))
            for keyword in node.keywords
            if keyword.arg is not None
        )
        has_star = any(
            isinstance(arg, ast.Starred) for arg in node.args
        ) or any(keyword.arg is None for keyword in node.keywords)

        helper = self._units_helper(node.func)
        if helper is not None:
            expected = _UNITS_ARGS.get(helper)
            if expected is not None and len(pos_dims) == 1:
                actual = pos_dims[0]
                if actual in DIMENSIONS and actual != expected:
                    self._issue(
                        node,
                        f"units.{helper}() expects {expected}, "
                        f"got {actual}",
                    )
            return _UNITS_RETURNS.get(helper)

        if isinstance(node.func, ast.Name):
            builtin = node.func.id
            if builtin in ("float", "int", "abs", "round") and pos_dims:
                return pos_dims[0]
            if builtin in ("min", "max"):
                known = {d for d in pos_dims if d in DIMENSIONS}
                if len(known) > 1:
                    first, second = sorted(known)[:2]
                    self._issue(
                        node,
                        _mix_message(first, second, f"{builtin}()"),
                    )
                    return None
                return known.pop() if known else None

        callee = self._resolve_callee(node.func)
        if callee is not None and not has_star:
            self.call_sites.append(
                CallSite(
                    callee=callee,
                    pos_dims=pos_dims,
                    kw_dims=kw_dims,
                    line=node.lineno,
                    col=node.col_offset,
                )
            )
            short = callee.rsplit(".", 1)[-1]
            if callee in self.return_dims:
                return self.return_dims[callee]
            if short in self.local_functions and callee.startswith(
                ".".join(self.ctx.module_parts)
            ):
                return self.return_dims.get(
                    self.local_functions[short]
                )
        return None

    def _resolve_callee(self, func: ast.expr) -> Optional[str]:
        resolved = self.ctx.resolve(func)
        if resolved is not None:
            root = resolved.split(".", 1)[0]
            if root == self.ctx.module_parts[0]:
                return resolved
            return None
        if isinstance(func, ast.Name) and func.id in self.local_functions:
            return self.local_functions[func.id]
        return None


def _collect_functions(ctx: ModuleContext):
    """(qualname, def-node) for every function, methods included."""
    module_name = ".".join(ctx.module_parts)
    found = []

    def visit(node, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found.append((f"{prefix}.{child.name}", child))
                visit(child, f"{prefix}.{child.name}.<locals>")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}.{child.name}")
            elif not isinstance(child, ast.Lambda):
                visit(child, prefix)

    visit(ctx.tree, module_name)
    return found


def _signature(qualname: str, node) -> FunctionSig:
    args = node.args
    names = [arg.arg for arg in [*args.posonlyargs, *args.args]]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    names.extend(arg.arg for arg in args.kwonlyargs)
    dims = tuple(dim_of_identifier(name) for name in names)
    return FunctionSig(
        qualname=qualname, params=tuple(names), param_dims=dims
    )


def _param_env(node) -> Dict[str, Optional[str]]:
    env: Dict[str, Optional[str]] = {}
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        dim = dim_of_identifier(arg.arg)
        if dim is not None:
            env[arg.arg] = dim
    return env


def analyze_dimensions(ctx: ModuleContext):
    """Full dimensional analysis of one module.

    Returns ``(functions, call_sites, issues)`` where ``functions`` are
    :class:`FunctionSig` records (with inferred return dimensions),
    ``call_sites`` every resolved in-project call with argument
    dimensions, and ``issues`` the intra-module violations.
    """
    functions = _collect_functions(ctx)
    signatures = {q: _signature(q, node) for q, node in functions}
    local_functions = {}
    module_name = ".".join(ctx.module_parts)
    for qualname, _node in functions:
        relative = qualname[len(module_name) + 1:]
        if "." not in relative:  # module-level functions only
            local_functions[relative] = qualname

    # Pass 1: return dimensions (no cross-function propagation yet).
    return_dims: Dict[str, Optional[str]] = {}
    for qualname, node in functions:
        probe = _Analyzer(ctx, {}, local_functions)
        probe.run(node.body, _param_env(node))
        dims = {d for d in probe.returns if d in DIMENSIONS}
        if len(dims) == 1 and all(
            d in DIMENSIONS for d in probe.returns
        ) and probe.returns:
            return_dims[qualname] = dims.pop()

    # Pass 2: issues and call sites, with local return dims available.
    analyzer = _Analyzer(ctx, return_dims, local_functions)
    analyzer.run(ctx.tree.body, {})
    for qualname, node in functions:
        analyzer.run(node.body, _param_env(node))

    signatures = {
        q: FunctionSig(
            qualname=sig.qualname,
            params=sig.params,
            param_dims=sig.param_dims,
            return_dim=return_dims.get(q),
        )
        for q, sig in signatures.items()
    }
    return (
        tuple(signatures[q] for q, _ in functions),
        tuple(analyzer.call_sites),
        tuple(sorted(analyzer.issues)),
    )
