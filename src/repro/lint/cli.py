"""``repro-lint`` — the simulation-invariant linter's command line.

Usage::

    repro-lint src/repro                  # text report, exit 1 on findings
    repro-lint src/repro --format json    # machine-readable (CI)
    repro-lint src/repro --format sarif   # SARIF 2.1.0 (PR annotation)
    repro-lint src/repro --format github  # GitHub ::error commands
    repro-lint src/repro --jobs 4         # parallel index pass
    repro-lint src/repro --select DET002  # one rule only
    repro-lint src/repro --write-baseline # grandfather current findings
    repro-lint --list-rules               # the rule catalog

Equivalent module form: ``python -m repro.lint ...``; also mounted as
``repro-experiments lint ...``. Exit codes: 0 clean, 1 fresh findings,
2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ..errors import ReproError
from .baseline import DEFAULT_BASELINE, Baseline
from .engine import lint_paths
from .formats import (
    render_github,
    render_json,
    render_sarif,
    render_text,
)
from .rules import all_rules, select_rules


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Two-pass static analysis for the repo's simulation "
            "invariants: determinism, unit discipline, runner "
            "discipline, and whole-program semantics (layer DAG, RNG "
            "substream ownership, dimensional inference)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif", "github"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for the index pass (default: 1; output "
            "is byte-identical at any job count)"
        ),
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} when present)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code for code in raw.split(",") if code.strip()]


def _render_rules() -> str:
    lines = []
    for rule in all_rules():
        scope = (
            "/".join(rule.scope) if rule.scope is not None else "repro"
        )
        lines.append(
            f"{rule.code}  {rule.name}  [{rule.severity.value}, "
            f"scope: {scope}]"
        )
        lines.append(f"    {rule.description}")
        lines.append(f"    fix: {rule.hint}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_render_rules())
        return 0
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2

    baseline_path = Path(
        args.baseline if args.baseline is not None else DEFAULT_BASELINE
    )
    try:
        if args.write_baseline:
            report = lint_paths(
                args.paths,
                select=_codes(args.select),
                ignore=_codes(args.ignore),
                jobs=args.jobs,
            )
            Baseline.write(baseline_path, report.findings)
            print(
                f"wrote {len(report.findings)} finding(s) to "
                f"{baseline_path}"
            )
            return 0
        baseline = (
            Baseline.load(baseline_path)
            if args.baseline is not None or baseline_path.exists()
            else Baseline()
        )
        report = lint_paths(
            args.paths,
            select=_codes(args.select),
            ignore=_codes(args.ignore),
            baseline=baseline,
            jobs=args.jobs,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(report))
    elif args.format == "sarif":
        print(
            render_sarif(
                report,
                select_rules(_codes(args.select), _codes(args.ignore)),
            )
        )
    elif args.format == "github":
        print(render_github(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
