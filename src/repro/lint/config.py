"""Whole-program lint configuration (``[tool.repro-lint]``).

The semantic rules are parameterized by project policy rather than
hard-coded package lists:

* **layers** — the architecture DAG ARCH001 enforces. Each entry is one
  layer (a list of top-level ``repro`` subpackages); a package may import
  its own layer and anything *below* it, never above.
* **cross-cutting** — packages exempt from the layer ordering in both
  directions (telemetry and io are infrastructure every layer touches).
* **rng.shared** — substream name templates deliberately drawn by more
  than one component, mapped to the written contract that justifies the
  sharing (DET004 treats any *undeclared* reuse as a collision).
* **rng.owners** — substream name prefixes mapped to the component that
  owns them; DET004 flags draws of an owned prefix from anywhere else.

Configuration lives in ``pyproject.toml`` under ``[tool.repro-lint]``;
the compiled-in defaults below mirror the repo's own table so the
analyzer behaves identically on interpreters without :mod:`tomllib`
(Python 3.10) and on fixture trees that carry no pyproject at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigError

#: The repo's layer DAG, lowest layer first (see DESIGN.md).
DEFAULT_LAYERS: Tuple[Tuple[str, ...], ...] = (
    ("units", "errors", "floats"),
    ("sim", "net", "core"),
    ("cc", "mechanisms", "switches"),
    ("workloads", "scheduler"),
    ("faults", "runner"),
    ("analysis", "experiments", "cli", "lint"),
)

#: Packages importable from (and into) any layer.
DEFAULT_CROSS_CUTTING: Tuple[str, ...] = ("telemetry", "io")

#: Substream templates shared across components on purpose.
DEFAULT_SHARED_STREAMS: Mapping[str, str] = {
    "job:{}": (
        "cross-tier bit-equivalence: the engine backend must draw the "
        "same per-job substream as PhaseLevelSimulator so fidelity "
        "tiers replay identical randomness"
    ),
}

#: Substream name prefixes owned by one component.
DEFAULT_STREAM_OWNERS: Mapping[str, str] = {
    "arrival": "workloads",
    "workload": "workloads",
    "random": "scheduler",
    "sweep": "experiments",
    "large": "experiments",
}


@dataclass(frozen=True)
class LintConfig:
    """Resolved semantic-analysis policy for one lint run."""

    layers: Tuple[Tuple[str, ...], ...] = DEFAULT_LAYERS
    cross_cutting: Tuple[str, ...] = DEFAULT_CROSS_CUTTING
    shared_streams: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_SHARED_STREAMS)
    )
    stream_owners: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_STREAM_OWNERS)
    )

    def layer_of(self) -> Dict[str, int]:
        """Map package name -> layer index (0 = foundation)."""
        table: Dict[str, int] = {}
        for index, layer in enumerate(self.layers):
            for package in layer:
                if package in table:
                    raise ConfigError(
                        f"package {package!r} assigned to two layers"
                    )
                table[package] = index
        return table


def _as_str_tuple(value, where: str) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise ConfigError(f"{where} must be a list of strings")
    return tuple(value)


def _as_str_mapping(value, where: str) -> Dict[str, str]:
    if not isinstance(value, dict) or not all(
        isinstance(k, str) and isinstance(v, str)
        for k, v in value.items()
    ):
        raise ConfigError(f"{where} must be a table of string -> string")
    return dict(value)


def config_from_table(table: Mapping) -> LintConfig:
    """Build a :class:`LintConfig` from a ``[tool.repro-lint]`` table."""
    kwargs: dict = {}
    if "layers" in table:
        raw = table["layers"]
        if not isinstance(raw, (list, tuple)):
            raise ConfigError("tool.repro-lint.layers must be a list")
        kwargs["layers"] = tuple(
            _as_str_tuple(layer, "each tool.repro-lint.layers entry")
            for layer in raw
        )
    if "cross-cutting" in table:
        kwargs["cross_cutting"] = _as_str_tuple(
            table["cross-cutting"], "tool.repro-lint.cross-cutting"
        )
    rng = table.get("rng", {})
    if rng and not isinstance(rng, dict):
        raise ConfigError("tool.repro-lint.rng must be a table")
    if "shared" in rng:
        kwargs["shared_streams"] = _as_str_mapping(
            rng["shared"], "tool.repro-lint.rng.shared"
        )
    if "owners" in rng:
        kwargs["stream_owners"] = _as_str_mapping(
            rng["owners"], "tool.repro-lint.rng.owners"
        )
    config = LintConfig(**kwargs)
    config.layer_of()  # validate eagerly: duplicate assignments raise
    return config


def find_pyproject(start: Path) -> Optional[Path]:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    current = start if start.is_dir() else start.parent
    for directory in [current, *current.parents]:
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(paths: Sequence[str] = ()) -> LintConfig:
    """Resolve the config for a lint run over ``paths``.

    Looks for a ``pyproject.toml`` with a ``[tool.repro-lint]`` table
    upward from the first path (falling back to the working directory).
    Without :mod:`tomllib` (Python 3.10) or without a table, the
    compiled-in defaults apply — they mirror the repo's own pyproject.
    """
    try:
        import tomllib
    except ImportError:  # Python 3.10: defaults mirror the repo table
        return LintConfig()
    start = Path(paths[0]).resolve() if paths else Path.cwd()
    pyproject = find_pyproject(start)
    if pyproject is None:
        return LintConfig()
    try:
        with pyproject.open("rb") as handle:
            document = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        raise ConfigError(f"unreadable {pyproject}: {exc}")
    table = document.get("tool", {}).get("repro-lint")
    if not table:
        return LintConfig()
    if not isinstance(table, dict):
        raise ConfigError("tool.repro-lint must be a table")
    return config_from_table(table)
