"""Lint findings: what a rule reports and how it is identified.

A :class:`Finding` pins one violation to a file position and carries the
rule's code, severity and fix hint. Findings are plain data — they sort,
serialize to JSON, and reduce to a :meth:`Finding.fingerprint` used by
the baseline file to grandfather pre-existing violations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict


class Severity(enum.Enum):
    """How bad a finding is.

    Both levels fail the lint run (the linter is strict by design — the
    simulation invariants it guards are correctness properties, not
    style); the distinction is informational.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source position.

    Attributes:
        path: File path as scanned (posix separators, stable across
            runs from the same working directory).
        line: 1-based source line.
        col: 0-based column offset.
        code: The rule code (e.g. ``DET002``).
        message: Human-readable description of this occurrence.
        severity: :class:`Severity` of the owning rule.
        hint: The rule's generic fix hint.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: Severity = Severity.ERROR
    hint: str = ""

    def fingerprint(self) -> str:
        """Identity used for baseline matching (position + code)."""
        return f"{self.code}:{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (the ``--format json`` record)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        """The one-line text form ``path:line:col: CODE message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} {self.message}"
        )
