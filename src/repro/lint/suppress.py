"""Per-line lint suppressions.

A violation is silenced by a trailing comment on its line::

    return millions * 1e6  # simlint: disable=UNIT001 - count, not a unit

``disable=`` takes a comma-separated code list; a bare
``# simlint: disable`` (no codes) silences every rule on the line.
Anything after the code list is free-form justification — suppressions
in this repo are expected to say *why* (reviewed in PRs like code).

Comments are found with :mod:`tokenize`, so a ``# simlint:`` inside a
string literal never suppresses anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet

#: Marks "every code" in a suppression set.
ALL_CODES = "*"

_PATTERN = re.compile(
    r"#\s*simlint:\s*disable"
    r"(?:=(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*))?"
)


def suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> codes suppressed on that line.

    Returns ``{line: frozenset({"DET002"})}`` style entries; the value
    ``frozenset({ALL_CODES})`` suppresses every rule. Unreadable source
    (tokenize errors) yields no suppressions — the parse error surfaces
    through the walker instead.
    """
    result: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PATTERN.search(token.string)
            if not match:
                continue
            codes = match.group("codes")
            if codes is None or not codes.strip():
                parsed = frozenset({ALL_CODES})
            else:
                parsed = frozenset(
                    code.strip().upper()
                    for code in codes.split(",")
                    if code.strip()
                )
            result[token.start[0]] = result.get(
                token.start[0], frozenset()
            ) | parsed
    except tokenize.TokenizeError:
        return {}
    return result


def is_suppressed(
    table: Dict[int, FrozenSet[str]], line: int, code: str
) -> bool:
    """Whether ``code`` is silenced on ``line``."""
    codes = table.get(line)
    if not codes:
        return False
    return ALL_CODES in codes or code.upper() in codes
