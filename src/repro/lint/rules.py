"""The rule protocol and registry.

A rule is a named, coded checker over one :class:`ModuleContext`. Rules
self-register at import time (:func:`register_rule`), the same pattern
the runner uses for simulation backends, so adding an invariant is one
module edit — the walker, CLI, suppression and baseline machinery pick
it up automatically.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Protocol, Tuple

from ..errors import ConfigError
from .context import ModuleContext
from .findings import Finding, Severity


class Rule(Protocol):
    """What the registry stores: one coded invariant checker."""

    code: str
    name: str
    severity: Severity
    hint: str
    description: str

    def applies(self, ctx: ModuleContext) -> bool:
        """Whether this rule scans the given module at all."""
        ...

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield every violation in the module."""
        ...


class BaseRule:
    """Shared plumbing: scope filtering and finding construction.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scope`` limits the rule to subpackages of ``repro`` (``None`` =
    the whole package); ``exempt`` carves out subpackages within that
    scope (e.g. DET002 exempts ``telemetry``).
    """

    code: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    hint: str = ""
    description: str = ""
    #: Subpackages of ``repro`` the rule scans; ``None`` scans all.
    scope: Optional[Tuple[str, ...]] = None
    #: Subpackages exempt from the rule.
    exempt: Tuple[str, ...] = ()

    def applies(self, ctx: ModuleContext) -> bool:
        parts = ctx.package_parts
        if parts and parts[0] in self.exempt:
            return False
        if self.scope is None:
            return True
        return bool(parts) and parts[0] in self.scope

    def finding(
        self, ctx: ModuleContext, node, message: str
    ) -> Finding:
        """A :class:`Finding` at ``node``'s position."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            severity=self.severity,
            hint=self.hint,
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


class BaseProjectRule(BaseRule):
    """A rule that needs whole-program visibility.

    Project rules run in the semantic pass, after the index pass has
    joined every module summary into a
    :class:`~repro.lint.project.ProjectContext`. They implement
    :meth:`check_project` instead of :meth:`check`; per-module
    :meth:`check` is a no-op so the registry can hold both kinds
    uniformly (selection, baseline and suppression machinery apply to
    both).
    """

    def check(self, ctx: ModuleContext):
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        """Yield violations visible only with the whole program."""
        raise NotImplementedError

    def project_finding(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
    ) -> Finding:
        """A :class:`Finding` at an explicit project position."""
        return Finding(
            path=path,
            line=line,
            col=col,
            code=self.code,
            message=message,
            severity=self.severity,
            hint=self.hint,
        )


def is_project_rule(rule) -> bool:
    """Whether ``rule`` runs in the semantic (whole-program) pass."""
    return callable(getattr(rule, "check_project", None))


_REGISTRY: Dict[str, Rule] = {}


def register_rule(rule, replace: bool = False):
    """Add a rule to the registry (idempotent with ``replace=True``).

    Usable as a class decorator — a rule *class* is instantiated and
    registered, and the class itself is returned unchanged.
    """
    instance: Rule = rule() if isinstance(rule, type) else rule
    if not instance.code:
        raise ConfigError("a lint rule needs a non-empty code")
    if instance.code in _REGISTRY and not replace:
        raise ConfigError(
            f"lint rule {instance.code!r} already registered"
        )
    _REGISTRY[instance.code] = instance
    return rule


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by code."""
    _ensure_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    """Look up one rule by code."""
    _ensure_loaded()
    try:
        return _REGISTRY[code]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(
            f"unknown lint rule {code!r} (registered: {known})"
        ) from None


def select_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """The rule set after ``--select`` / ``--ignore`` filtering."""
    rules = all_rules()
    if select:
        wanted = {code.strip().upper() for code in select}
        for code in wanted:
            get_rule(code)  # raise on typos instead of silently passing
        rules = [rule for rule in rules if rule.code in wanted]
    if ignore:
        dropped = {code.strip().upper() for code in ignore}
        for code in dropped:
            get_rule(code)
        rules = [rule for rule in rules if rule.code not in dropped]
    return rules


def _ensure_loaded() -> None:
    """Import the bundled checkers (registration is import-driven)."""
    from . import checks  # noqa: F401
