"""Static analysis for the repo's simulation invariants.

The paper's artifacts rest on byte-identical seeded simulation; this
package machine-checks the conventions that keep it that way. It is a
small AST linter with a pluggable rule registry:

========== ==================== =======================================
code       name                 invariant
========== ==================== =======================================
DET001     unseeded-random      randomness flows from ``repro.sim.rng``
DET002     wall-clock           only telemetry reads the real clock
DET003     set-iteration        no set iteration in net/sim/core
UNIT001    magic-unit-factor    conversions go through ``repro.units``
FP001      float-equality       tolerance helpers, not float ``==``
PICKLE001  unpicklable-backend  registered backends must pickle
RUN001     direct-simulator     experiments go through ``RunSpec``
ARCH001    layer-dag            imports follow the layer DAG, acyclic
DET004     substream-discipline RNG substream names are owned, unshared
UNIT002    dimension-mismatch   no seconds+ticks (etc.) arithmetic
========== ==================== =======================================

The first seven are per-module rules; the last three run in the
*semantic pass* over a whole-program index (module graph, symbol
table, RNG draw sites, dimension flows) built by the index pass —
see :mod:`repro.lint.project`.

Run it with ``repro-lint`` / ``python -m repro.lint`` / the
``repro-experiments lint`` subcommand; suppress one line with
``# simlint: disable=CODE`` (plus a justification); grandfathered
findings live in the committed ``lint-baseline.json``. Full catalog
with examples: ``docs/LINT.md``.
"""

from .baseline import DEFAULT_BASELINE, Baseline
from .config import LintConfig, load_config
from .context import ModuleContext
from .engine import (
    Report,
    lint_module,
    lint_paths,
    lint_source,
    lint_sources,
)
from .findings import Finding, Severity
from .project import ModuleIndex, ProjectContext, build_module_index
from .rules import (
    BaseProjectRule,
    BaseRule,
    Rule,
    all_rules,
    get_rule,
    is_project_rule,
    register_rule,
    select_rules,
)

__all__ = [
    "Baseline",
    "BaseProjectRule",
    "BaseRule",
    "DEFAULT_BASELINE",
    "Finding",
    "LintConfig",
    "ModuleContext",
    "ModuleIndex",
    "ProjectContext",
    "Report",
    "Rule",
    "Severity",
    "all_rules",
    "build_module_index",
    "get_rule",
    "is_project_rule",
    "lint_module",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "load_config",
    "register_rule",
    "select_rules",
]
