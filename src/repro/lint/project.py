"""The whole-program index: per-module summaries and their join.

The two-pass analyzer works on *summaries*, not ASTs: the index pass
distills each module into a picklable :class:`ModuleIndex` (imports,
symbols, RNG draw sites, dimension call sites, suppression table), and
the semantic pass joins them into one :class:`ProjectContext` the
project rules (ARCH001/DET004/UNIT002) query. Keeping the records
plain-data is what lets the index pass fan out across a process pool
(``repro-lint --jobs``) while the join stays deterministic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .config import LintConfig
from .context import ModuleContext
from .dimflow import CallSite, DimIssue, FunctionSig, analyze_dimensions
from .suppress import suppressions
from .taint import RngDraw, extract_rng_draws


@dataclass(frozen=True, order=True)
class ImportSite:
    """One import statement edge out of a module.

    Attributes:
        target: Dotted path as imported, symbol tails included
            (``"repro.workloads.job.JobSpec"``); consumers resolve it
            against the project by longest module prefix.
        line: 1-based line of the import.
        col: Column offset.
        type_checking: Inside an ``if TYPE_CHECKING:`` block — erased
            at runtime, exempt from the layer DAG.
        function_scope: Inside a function body (a lazy import); real
            for layering, but excluded from import-cycle detection
            because deferral is exactly how cycles are legally broken.
    """

    target: str
    line: int
    col: int
    type_checking: bool = False
    function_scope: bool = False


@dataclass
class ModuleIndex:
    """Everything the semantic pass needs to know about one module."""

    path: str
    module: str
    package_parts: Tuple[str, ...]
    imports: Tuple[ImportSite, ...] = ()
    symbols: Tuple[str, ...] = ()
    rng_draws: Tuple[RngDraw, ...] = ()
    functions: Tuple[FunctionSig, ...] = ()
    call_sites: Tuple[CallSite, ...] = ()
    dim_issues: Tuple[DimIssue, ...] = ()
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)


def _is_type_checking_test(ctx: ModuleContext, test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    resolved = ctx.resolve(test)
    return resolved is not None and resolved.endswith("TYPE_CHECKING")


def _extract_imports(ctx: ModuleContext) -> Tuple[ImportSite, ...]:
    sites: List[ImportSite] = []

    def visit(node, in_function: bool, in_type_checking: bool) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                sites.append(
                    ImportSite(
                        target=alias.name,
                        line=node.lineno,
                        col=node.col_offset,
                        type_checking=in_type_checking,
                        function_scope=in_function,
                    )
                )
            return
        if isinstance(node, ast.ImportFrom):
            base = ctx._relative_base(node.level) if node.level else ()
            module = (
                tuple(node.module.split(".")) if node.module else ()
            )
            prefix = ".".join(base + module)
            for alias in node.names:
                if alias.name == "*":
                    target = prefix
                elif prefix:
                    target = f"{prefix}.{alias.name}"
                else:
                    target = alias.name
                if target:
                    sites.append(
                        ImportSite(
                            target=target,
                            line=node.lineno,
                            col=node.col_offset,
                            type_checking=in_type_checking,
                            function_scope=in_function,
                        )
                    )
            return
        if isinstance(node, ast.If):
            guarded = in_type_checking or _is_type_checking_test(
                ctx, node.test
            )
            for stmt in node.body:
                visit(stmt, in_function, guarded)
            for stmt in node.orelse:
                visit(stmt, in_function, in_type_checking)
            return
        entering_function = isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        for child in ast.iter_child_nodes(node):
            visit(
                child,
                in_function or entering_function,
                in_type_checking,
            )

    visit(ctx.tree, False, False)
    return tuple(sorted(sites))


def _extract_symbols(ctx: ModuleContext) -> Tuple[str, ...]:
    names: List[str] = []
    for stmt in ctx.tree.body:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.append(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.append(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            names.append(stmt.target.id)
    return tuple(sorted(set(names)))


def build_module_index(ctx: ModuleContext) -> ModuleIndex:
    """Distill one parsed module into its picklable summary."""
    functions, call_sites, dim_issues = analyze_dimensions(ctx)
    return ModuleIndex(
        path=ctx.path,
        module=".".join(ctx.module_parts),
        package_parts=ctx.package_parts,
        imports=_extract_imports(ctx),
        symbols=_extract_symbols(ctx),
        rng_draws=extract_rng_draws(ctx),
        functions=functions,
        call_sites=call_sites,
        dim_issues=dim_issues,
        suppressions=suppressions(ctx.source),
    )


class ProjectContext:
    """The joined index the project rules run against.

    Attributes:
        modules: Dotted module name -> :class:`ModuleIndex`, sorted.
        config: The resolved :class:`~repro.lint.config.LintConfig`.
    """

    def __init__(
        self,
        indexes: Sequence[ModuleIndex],
        config: Optional[LintConfig] = None,
    ) -> None:
        self.config = config if config is not None else LintConfig()
        self.modules: Dict[str, ModuleIndex] = {}
        for index in sorted(indexes, key=lambda i: (i.module, i.path)):
            self.modules[index.module] = index
        self._functions: Dict[str, FunctionSig] = {}
        self._by_basename: Dict[str, List[FunctionSig]] = {}
        for index in self.modules.values():
            for sig in index.functions:
                self._functions[sig.qualname] = sig
                self._by_basename.setdefault(sig.name, []).append(sig)

    # ------------------------------------------------------ module graph

    def resolve_module(self, target: str) -> Optional[str]:
        """Project module matching ``target`` by longest prefix.

        ``"repro.workloads.job.JobSpec"`` resolves to the module
        ``repro.workloads.job`` when that file is part of the run.
        """
        parts = target.split(".")
        while parts:
            candidate = ".".join(parts)
            if candidate in self.modules:
                return candidate
            parts.pop()
        return None

    def import_graph(
        self, include_lazy: bool = False
    ) -> Dict[str, Tuple[str, ...]]:
        """Module -> imported project modules (import-time edges).

        ``TYPE_CHECKING`` imports never appear; function-local imports
        only when ``include_lazy`` is set.
        """
        graph: Dict[str, Tuple[str, ...]] = {}
        for name, index in self.modules.items():
            targets = set()
            for site in index.imports:
                if site.type_checking:
                    continue
                if site.function_scope and not include_lazy:
                    continue
                resolved = self.resolve_module(site.target)
                if resolved is not None and resolved != name:
                    targets.add(resolved)
            graph[name] = tuple(sorted(targets))
        return graph

    # -------------------------------------------------- function lookup

    def resolve_function(self, callee: str) -> Optional[FunctionSig]:
        """Match a recorded call-site callee to a project function.

        Tries the exact qualified name first, then unique basename
        matches that are consistent with the callee's package prefix —
        which is how calls through package re-exports
        (``repro.workloads.poisson_arrivals``) find their definition
        (``repro.workloads.traces.poisson_arrivals``).
        """
        exact = self._functions.get(callee)
        if exact is not None:
            return exact
        if "." not in callee:
            return None
        prefix, basename = callee.rsplit(".", 1)
        candidates = [
            sig
            for sig in self._by_basename.get(basename, ())
            if sig.qualname.startswith(prefix + ".")
            and sig.qualname.endswith("." + basename)
        ]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def strongly_connected_modules(self) -> List[Tuple[str, ...]]:
        """Import cycles: SCCs of size > 1, deterministically ordered."""
        graph = self.import_graph()
        index_counter = [0]
        stack: List[str] = []
        on_stack: Dict[str, bool] = {}
        indices: Dict[str, int] = {}
        lowlinks: Dict[str, int] = {}
        result: List[Tuple[str, ...]] = []

        def strongconnect(node: str) -> None:
            # Iterative Tarjan (explicit stack) — recursion depth on a
            # large tree would be unbounded otherwise.
            work = [(node, iter(graph.get(node, ())))]
            indices[node] = lowlinks[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack[node] = True
            while work:
                current, successors = work[-1]
                advanced = False
                for successor in successors:
                    if successor not in indices:
                        indices[successor] = lowlinks[successor] = (
                            index_counter[0]
                        )
                        index_counter[0] += 1
                        stack.append(successor)
                        on_stack[successor] = True
                        work.append(
                            (successor, iter(graph.get(successor, ())))
                        )
                        advanced = True
                        break
                    if on_stack.get(successor):
                        lowlinks[current] = min(
                            lowlinks[current], indices[successor]
                        )
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(
                        lowlinks[parent], lowlinks[current]
                    )
                if lowlinks[current] == indices[current]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == current:
                            break
                    if len(component) > 1:
                        result.append(tuple(sorted(component)))

        for name in sorted(graph):
            if name not in indices:
                strongconnect(name)
        return sorted(result)


def apply_project_suppressions(
    findings, modules: Mapping[str, ModuleIndex]
):
    """Drop project findings silenced by an inline suppression."""
    from .suppress import is_suppressed

    by_path: Dict[str, Dict[int, FrozenSet[str]]] = {}
    for index in modules.values():
        by_path[index.path] = index.suppressions
    kept = []
    for finding in findings:
        table = by_path.get(finding.path, {})
        if not is_suppressed(table, finding.line, finding.code):
            kept.append(finding)
    return kept
