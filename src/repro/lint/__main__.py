"""``python -m repro.lint`` — see :mod:`repro.lint.cli`."""

import sys

from .cli import main

sys.exit(main())
