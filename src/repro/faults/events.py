"""Validated time-bounded perturbation events.

The fault model follows the AsyncFlow edge-event design: every
perturbation is a *window* ``[start, end)`` with explicit start/end
markers, and the whole :class:`InjectionSchedule` is validated once at
build time — overlapping windows on the same target, inverted bounds and
events outside the horizon are rejected before any simulator sees them.
Runtime code can therefore assume a well-formed schedule and never
branch on malformed input inside the hot loops.

Two event families exist:

* **Link events** target a named link: :class:`RateChange` (capacity
  scaled by a factor), :class:`LinkFailure` (the link carries nothing),
  :class:`PfcStorm` (a pause storm: upstream senders are throttled while
  the queue drains) and :class:`LatencySpike` (extra seconds added to
  communication phases that start inside the window).
* **Job events** target a named job: :class:`Straggler` (compute phases
  stretched by a factor) and :class:`ClockSkew` (a constant offset added
  to compute phases).

All event classes are frozen dataclasses, so a schedule is hashable
enough to embed in a :class:`repro.runner.RunSpec` and picklable for the
``run_many`` worker fan-out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ConfigError


def _require_window(event: "FaultEventT", horizon: Optional[float]) -> None:
    """Shared bounds validation for one event."""
    start, end = event.start, event.end
    if not (math.isfinite(start) and math.isfinite(end)):
        raise ConfigError(f"{event!r}: start/end must be finite")
    if start < 0:
        raise ConfigError(f"{event!r}: start must be >= 0")
    if end < start:
        raise ConfigError(f"{event!r}: end must be >= start")
    if horizon is not None and end > horizon:
        raise ConfigError(
            f"{event!r}: event ends after the schedule horizon {horizon}"
        )


@dataclass(frozen=True)
class RateChange:
    """Scale a link's capacity by ``factor`` over ``[start, end)``.

    ``factor`` may be below 1 (a congestion dip) or above 1 (a transient
    headroom spike); it must stay strictly positive — a dead link is a
    :class:`LinkFailure`, which the runtimes model differently.
    """

    link: str
    start: float
    end: float
    factor: float

    kind = "rate-change"

    def validate(self, horizon: Optional[float]) -> None:
        _require_window(self, horizon)
        if not math.isfinite(self.factor) or self.factor <= 0:
            raise ConfigError(
                f"{self!r}: factor must be finite and > 0"
            )


@dataclass(frozen=True)
class LinkFailure:
    """The link carries nothing over ``[start, end)``.

    Fluid tiers freeze everything behind the failed link (senders,
    queue, activation clockwork); the event-driven tiers set the link's
    capacity to zero and let the allocator starve its flows.
    """

    link: str
    start: float
    end: float

    kind = "link-failure"

    def validate(self, horizon: Optional[float]) -> None:
        _require_window(self, horizon)


@dataclass(frozen=True)
class PfcStorm:
    """A PFC pause storm on the link over ``[start, end)``.

    In the DCQCN fluid tier this forces the PFC-paused step semantics
    regardless of queue thresholds: senders idle while the queue drains
    at capacity and ``pfc_pause_seconds`` accrues. Tiers without a PFC
    model degrade it to a transient link failure.
    """

    link: str
    start: float
    end: float

    kind = "pfc-storm"

    def validate(self, horizon: Optional[float]) -> None:
        _require_window(self, horizon)


@dataclass(frozen=True)
class LatencySpike:
    """Add ``extra`` seconds to communication phases starting inside
    ``[start, end)`` on this link (an RTT inflation / reroute detour)."""

    link: str
    start: float
    end: float
    extra: float

    kind = "latency-spike"

    def validate(self, horizon: Optional[float]) -> None:
        _require_window(self, horizon)
        if not math.isfinite(self.extra) or self.extra < 0:
            raise ConfigError(f"{self!r}: extra must be finite and >= 0")


@dataclass(frozen=True)
class Straggler:
    """Stretch the job's compute phases by ``factor`` inside the window
    (a slow worker dragging the whole data-parallel iteration)."""

    job: str
    start: float
    end: float
    factor: float

    kind = "straggler"

    def validate(self, horizon: Optional[float]) -> None:
        _require_window(self, horizon)
        if not math.isfinite(self.factor) or self.factor <= 0:
            raise ConfigError(f"{self!r}: factor must be finite and > 0")


@dataclass(frozen=True)
class ClockSkew:
    """Add a constant ``offset`` (seconds, may be negative) to compute
    phases beginning inside the window. The effective phase duration is
    clamped at zero."""

    job: str
    start: float
    end: float
    offset: float

    kind = "clock-skew"

    def validate(self, horizon: Optional[float]) -> None:
        _require_window(self, horizon)
        if not math.isfinite(self.offset):
            raise ConfigError(f"{self!r}: offset must be finite")


#: Events that address a link by name.
LINK_EVENT_TYPES = (RateChange, LinkFailure, PfcStorm, LatencySpike)
#: Link events that alter the link's effective capacity (and therefore
#: partition fixed-step runs into windows).
CAPACITY_EVENT_TYPES = (RateChange, LinkFailure, PfcStorm)
#: Events that address a job by name.
JOB_EVENT_TYPES = (Straggler, ClockSkew)

FaultEventT = Union[
    RateChange, LinkFailure, PfcStorm, LatencySpike, Straggler, ClockSkew
]

#: Codec registry: wire-format tag -> event class (see repro.io).
EVENT_KINDS: Dict[str, type] = {
    cls.kind: cls for cls in LINK_EVENT_TYPES + JOB_EVENT_TYPES
}


def _check_disjoint(events: List[FaultEventT], target: str) -> None:
    """Reject overlapping windows aimed at the same target."""
    ordered = sorted(events, key=lambda ev: (ev.start, ev.end))
    for left, right in zip(ordered, ordered[1:]):
        if right.start < left.end:
            raise ConfigError(
                f"overlapping fault windows on {target!r}: "
                f"{left!r} and {right!r}"
            )


@dataclass(frozen=True)
class InjectionSchedule:
    """A validated, immutable set of perturbation events.

    Args:
        events: The fault events. Zero-duration events (``end == start``)
            are documented no-ops and dropped at build time.
        horizon: Optional simulation horizon in seconds; events ending
            past it are rejected (they could never fire in full).

    Validation (all at construction, raising
    :class:`~repro.errors.ConfigError`):

    * every event's window must satisfy ``0 <= start <= end`` with
      finite bounds, and ``end <= horizon`` when a horizon is set;
    * windows on the same link — or the same job — must not overlap
      (events on *different* targets may overlap freely);
    * :class:`RateChange`/:class:`Straggler` factors must be > 0 and
      :class:`LatencySpike` extras >= 0.
    """

    events: Tuple[FaultEventT, ...] = ()
    horizon: Optional[float] = None

    def __post_init__(self) -> None:
        if self.horizon is not None and (
            not math.isfinite(self.horizon) or self.horizon <= 0
        ):
            raise ConfigError("schedule horizon must be finite and > 0")
        kept: List[FaultEventT] = []
        for event in self.events:
            if not isinstance(event, LINK_EVENT_TYPES + JOB_EVENT_TYPES):
                raise ConfigError(
                    f"not a fault event: {event!r}"
                )
            event.validate(self.horizon)
            if event.end == event.start:
                continue  # zero-duration windows are no-ops by contract
            kept.append(event)
        by_link: Dict[str, List[FaultEventT]] = {}
        by_job: Dict[str, List[FaultEventT]] = {}
        for event in kept:
            if isinstance(event, LINK_EVENT_TYPES):
                by_link.setdefault(event.link, []).append(event)
            else:
                by_job.setdefault(event.job, []).append(event)
        for link in sorted(by_link):
            _check_disjoint(by_link[link], link)
        for job in sorted(by_job):
            _check_disjoint(by_job[job], job)
        object.__setattr__(self, "events", tuple(kept))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """Whether the schedule perturbs nothing."""
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def link_names(self) -> List[str]:
        """Sorted names of all links addressed by the schedule."""
        return sorted({
            event.link
            for event in self.events
            if isinstance(event, LINK_EVENT_TYPES)
        })

    def job_names(self) -> List[str]:
        """Sorted names of all jobs addressed by the schedule."""
        return sorted({
            event.job
            for event in self.events
            if isinstance(event, JOB_EVENT_TYPES)
        })

    def capacity_events(
        self, link: Optional[str] = None
    ) -> List[FaultEventT]:
        """Capacity-affecting link events, optionally for one link,
        ordered by start time."""
        picked = [
            event
            for event in self.events
            if isinstance(event, CAPACITY_EVENT_TYPES)
            and (link is None or event.link == link)
        ]
        return sorted(picked, key=lambda ev: ev.start)

    def latency_events(
        self, link: Optional[str] = None
    ) -> List[LatencySpike]:
        """Latency spikes, optionally for one link, by start time."""
        picked = [
            event
            for event in self.events
            if isinstance(event, LatencySpike)
            and (link is None or event.link == link)
        ]
        return sorted(picked, key=lambda ev: ev.start)

    def job_events(self, job: str) -> List[FaultEventT]:
        """Job-targeted events for ``job``, ordered by start time."""
        picked = [
            event
            for event in self.events
            if isinstance(event, JOB_EVENT_TYPES) and event.job == job
        ]
        return sorted(picked, key=lambda ev: ev.start)
