"""Deterministic fault & perturbation injection (see docs/FAULTS.md).

Build an :class:`InjectionSchedule` from validated time-bounded events
and attach it to a :class:`repro.runner.RunSpec` (``faults=...``) — every
fidelity tier honors it, and an empty schedule is bit-identical to no
schedule at all.
"""

from .events import (
    CAPACITY_EVENT_TYPES,
    EVENT_KINDS,
    JOB_EVENT_TYPES,
    LINK_EVENT_TYPES,
    ClockSkew,
    InjectionSchedule,
    LatencySpike,
    LinkFailure,
    PfcStorm,
    RateChange,
    Straggler,
)
from .runtime import (
    MODE_FREEZE,
    MODE_NORMAL,
    MODE_STORM,
    FabricWindow,
    JobWarp,
    Window,
    build_warp,
    capacity_windows,
    emit_fault_events,
    link_capacity_windows,
    quantize_tick,
    single_link,
)

__all__ = [
    "CAPACITY_EVENT_TYPES",
    "EVENT_KINDS",
    "JOB_EVENT_TYPES",
    "LINK_EVENT_TYPES",
    "ClockSkew",
    "InjectionSchedule",
    "LatencySpike",
    "LinkFailure",
    "PfcStorm",
    "RateChange",
    "Straggler",
    "MODE_FREEZE",
    "MODE_NORMAL",
    "MODE_STORM",
    "FabricWindow",
    "JobWarp",
    "Window",
    "build_warp",
    "capacity_windows",
    "emit_fault_events",
    "link_capacity_windows",
    "quantize_tick",
    "single_link",
]
