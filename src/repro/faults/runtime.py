"""Adapters from an :class:`InjectionSchedule` into the simulators.

Two mechanisms cover every tier:

* **Capacity windows** — fixed-step fluid tiers quantize the schedule's
  capacity-affecting link events onto the tick grid and partition the
  run ``[0, steps)`` into :class:`Window` spans, each with a mode
  (normal / freeze / storm) and an effective capacity. An empty schedule
  yields a single normal window, so the unfaulted code path is
  bit-identical to a schedule-free run. The event-driven tiers instead
  schedule capacity mutations directly on the simulator clock.
* **Job warps** — per-job compute perturbations (stragglers, clock
  skew) and latency spikes compile into a :class:`JobWarp`, a picklable
  callable installed as :attr:`repro.core.lifecycle.JobLifecycle.warp`.
  Every tier calls the lifecycle's transition methods at identical
  simulation times, so warping inside the lifecycle keeps the scalar
  and vector engines bit-for-bit aligned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import ConfigError
from .events import (
    InjectionSchedule,
    LatencySpike,
    LinkFailure,
    PfcStorm,
    RateChange,
    Straggler,
)

#: Window modes of the fixed-step tiers.
MODE_NORMAL = "normal"
MODE_FREEZE = "freeze"
MODE_STORM = "storm"


@dataclass(frozen=True)
class Window:
    """One span of ticks ``[start, end)`` under a single fault mode.

    Attributes:
        start: First tick index of the span (inclusive).
        end: One past the last tick index (exclusive).
        mode: ``MODE_NORMAL`` (run the regular loop at ``capacity``),
            ``MODE_FREEZE`` (link failed: nothing moves) or
            ``MODE_STORM`` (PFC storm: senders idle, queue drains).
        capacity: Effective link capacity over the span, bytes/s.
    """

    start: int
    end: int
    mode: str
    capacity: float


def quantize_tick(time: float, dt: float) -> int:
    """Map an event time onto the tick grid (nearest tick boundary)."""
    return int(round(time / dt))


def single_link(schedule: Optional[InjectionSchedule]) -> Optional[str]:
    """The unique link a schedule addresses, for single-bottleneck tiers.

    Returns ``None`` for an empty/link-free schedule and raises
    :class:`~repro.errors.ConfigError` when events name more than one
    distinct link — a single-bottleneck fluid model cannot tell them
    apart.
    """
    if schedule is None:
        return None
    names = schedule.link_names()
    if not names:
        return None
    if len(names) > 1:
        raise ConfigError(
            "single-bottleneck tier cannot apply a schedule naming "
            f"multiple links: {names}"
        )
    return names[0]


def capacity_windows(
    schedule: Optional[InjectionSchedule],
    steps: int,
    dt: float,
    base_capacity: float,
) -> List[Window]:
    """Partition ``[0, steps)`` into fault windows for a fixed-step run.

    Event times are quantized with :func:`quantize_tick`; events that
    collapse to zero ticks at this resolution are dropped (consistent
    with the schedule-level zero-duration no-op rule). The returned
    windows tile the whole run, and an empty schedule yields exactly one
    ``MODE_NORMAL`` window at ``base_capacity``.
    """
    events = [] if schedule is None else schedule.capacity_events(
        single_link(schedule)
    )
    spans = _event_spans(events, steps, dt, base_capacity)
    windows: List[Window] = []
    cursor = 0
    for span in spans:
        if span.start > cursor:
            windows.append(Window(
                cursor, span.start, MODE_NORMAL, base_capacity
            ))
        windows.append(span)
        cursor = span.end
    if cursor < steps or not windows:
        windows.append(Window(cursor, steps, MODE_NORMAL, base_capacity))
    return windows


def _event_spans(
    events, steps: int, dt: float, base_capacity: float
) -> List[Window]:
    """One link's capacity events quantized into sorted mode spans.

    The shared per-link half of :func:`capacity_windows` and
    :func:`link_capacity_windows`: gap tiling (and, for the multi-link
    variant, cross-link boundary merging) happens in the callers.
    """
    spans: List[Window] = []
    for event in events:
        start = min(max(quantize_tick(event.start, dt), 0), steps)
        end = min(max(quantize_tick(event.end, dt), 0), steps)
        if end <= start:
            continue
        if isinstance(event, RateChange):
            spans.append(Window(
                start, end, MODE_NORMAL, base_capacity * event.factor
            ))
        elif isinstance(event, LinkFailure):
            spans.append(Window(start, end, MODE_FREEZE, 0.0))
        else:  # PfcStorm — the queue still drains at base capacity.
            spans.append(Window(start, end, MODE_STORM, base_capacity))
    spans.sort(key=lambda w: w.start)
    return spans


@dataclass(frozen=True)
class FabricWindow:
    """One span of ticks ``[start, end)`` with per-link fault modes.

    Attributes:
        start: First tick index of the span (inclusive).
        end: One past the last tick index (exclusive).
        modes: Link name -> ``(mode, effective_capacity)`` for every
            link whose schedule addresses this span; links absent from
            the mapping run ``MODE_NORMAL`` at their base capacity.
    """

    start: int
    end: int
    modes: Dict[str, Tuple[str, float]] = field(default_factory=dict)


def link_capacity_windows(
    schedule: Optional[InjectionSchedule],
    steps: int,
    dt: float,
    capacities: Mapping[str, float],
) -> List[FabricWindow]:
    """Partition ``[0, steps)`` into per-link fault windows.

    The multi-link generalization of :func:`capacity_windows`:
    ``capacities`` maps every fabric link name to its base capacity, the
    schedule may address any subset of them, and the returned windows
    merge all scheduled links' quantized boundaries so that within one
    window every link holds a single mode. An empty schedule yields one
    all-normal window — the unfaulted path stays bit-identical.

    Raises :class:`~repro.errors.ConfigError` when the schedule targets
    a link outside ``capacities``.
    """
    names = [] if schedule is None else [
        name
        for name in schedule.link_names()
        if schedule.capacity_events(name)
    ]
    unknown = [name for name in names if name not in capacities]
    if unknown:
        raise ConfigError(
            f"fault schedule targets unknown link(s) {unknown}; "
            f"fabric links are {sorted(capacities)}"
        )
    spans_by_link: Dict[str, List[Window]] = {}
    cut_set = {0, steps}
    for name in names:
        spans = _event_spans(
            schedule.capacity_events(name), steps, dt, capacities[name]
        )
        spans_by_link[name] = spans
        for span in spans:
            cut_set.add(span.start)
            cut_set.add(span.end)
    cuts = sorted(tick for tick in cut_set if 0 <= tick <= steps)
    windows: List[FabricWindow] = []
    for start, end in zip(cuts, cuts[1:]):
        if end <= start:
            continue
        modes: Dict[str, Tuple[str, float]] = {}
        for name in names:
            for span in spans_by_link[name]:
                if span.start <= start < span.end:
                    modes[name] = (span.mode, span.capacity)
                    break
        windows.append(FabricWindow(start, end, modes))
    if not windows:
        windows.append(FabricWindow(0, steps))
    return windows


@dataclass(frozen=True)
class JobWarp:
    """Compiled per-job perturbations, applied inside the lifecycle.

    Called as ``warp(now, duration)`` when a compute phase begins at
    simulation time ``now`` with unperturbed duration ``duration``;
    returns the perturbed duration (clamped at zero). Stragglers apply
    multiplicatively and clock skews additively when the phase *begins*
    inside their window; latency spikes add their extra seconds when the
    subsequent communication phase (at ``now + duration``) would begin
    inside theirs.
    """

    stragglers: Tuple[Tuple[float, float, float], ...] = ()
    skews: Tuple[Tuple[float, float, float], ...] = ()
    spikes: Tuple[Tuple[float, float, float], ...] = ()

    def __call__(self, now: float, duration: float) -> float:
        warped = duration
        for start, end, factor in self.stragglers:
            if start <= now < end:
                warped *= factor
        for start, end, offset in self.skews:
            if start <= now < end:
                warped += offset
        if warped < 0.0:
            warped = 0.0
        for start, end, extra in self.spikes:
            if start <= now + warped < end:
                warped += extra
        return warped


def build_warp(
    schedule: Optional[InjectionSchedule],
    job: str,
    links: Iterable[str] = (),
) -> Optional[JobWarp]:
    """Compile the schedule's perturbations of one job into a warp.

    ``links`` names the links the job's traffic traverses; latency
    spikes on those links delay the job's communication phases. Returns
    ``None`` when nothing in the schedule touches the job, so callers
    can skip installing a warp (and keep the unfaulted path untouched).
    """
    if schedule is None:
        return None
    link_set = set(links)
    stragglers = []
    skews = []
    for event in schedule.job_events(job):
        if isinstance(event, Straggler):
            stragglers.append((event.start, event.end, event.factor))
        else:
            skews.append((event.start, event.end, event.offset))
    spikes = [
        (event.start, event.end, event.extra)
        for event in schedule.latency_events()
        if event.link in link_set
    ]
    if not (stragglers or skews or spikes):
        return None
    return JobWarp(
        stragglers=tuple(stragglers),
        skews=tuple(skews),
        spikes=tuple(spikes),
    )


def emit_fault_events(telemetry, schedule: Optional[InjectionSchedule]) -> None:
    """Record every scheduled fault window into the telemetry trace."""
    if schedule is None or not telemetry.enabled:
        return
    from ..telemetry.trace import KIND_FAULT

    for event in schedule.events:
        target = getattr(event, "link", None)
        if target is None:
            target = event.job
        telemetry.event(
            KIND_FAULT,
            t=event.start,
            fault=event.kind,
            target=target,
            end=event.end,
        )
