"""Adapters from an :class:`InjectionSchedule` into the simulators.

Two mechanisms cover every tier:

* **Capacity windows** — fixed-step fluid tiers quantize the schedule's
  capacity-affecting link events onto the tick grid and partition the
  run ``[0, steps)`` into :class:`Window` spans, each with a mode
  (normal / freeze / storm) and an effective capacity. An empty schedule
  yields a single normal window, so the unfaulted code path is
  bit-identical to a schedule-free run. The event-driven tiers instead
  schedule capacity mutations directly on the simulator clock.
* **Job warps** — per-job compute perturbations (stragglers, clock
  skew) and latency spikes compile into a :class:`JobWarp`, a picklable
  callable installed as :attr:`repro.core.lifecycle.JobLifecycle.warp`.
  Every tier calls the lifecycle's transition methods at identical
  simulation times, so warping inside the lifecycle keeps the scalar
  and vector engines bit-for-bit aligned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..errors import ConfigError
from .events import (
    InjectionSchedule,
    LatencySpike,
    LinkFailure,
    PfcStorm,
    RateChange,
    Straggler,
)

#: Window modes of the fixed-step tiers.
MODE_NORMAL = "normal"
MODE_FREEZE = "freeze"
MODE_STORM = "storm"


@dataclass(frozen=True)
class Window:
    """One span of ticks ``[start, end)`` under a single fault mode.

    Attributes:
        start: First tick index of the span (inclusive).
        end: One past the last tick index (exclusive).
        mode: ``MODE_NORMAL`` (run the regular loop at ``capacity``),
            ``MODE_FREEZE`` (link failed: nothing moves) or
            ``MODE_STORM`` (PFC storm: senders idle, queue drains).
        capacity: Effective link capacity over the span, bytes/s.
    """

    start: int
    end: int
    mode: str
    capacity: float


def quantize_tick(time: float, dt: float) -> int:
    """Map an event time onto the tick grid (nearest tick boundary)."""
    return int(round(time / dt))


def single_link(schedule: Optional[InjectionSchedule]) -> Optional[str]:
    """The unique link a schedule addresses, for single-bottleneck tiers.

    Returns ``None`` for an empty/link-free schedule and raises
    :class:`~repro.errors.ConfigError` when events name more than one
    distinct link — a single-bottleneck fluid model cannot tell them
    apart.
    """
    if schedule is None:
        return None
    names = schedule.link_names()
    if not names:
        return None
    if len(names) > 1:
        raise ConfigError(
            "single-bottleneck tier cannot apply a schedule naming "
            f"multiple links: {names}"
        )
    return names[0]


def capacity_windows(
    schedule: Optional[InjectionSchedule],
    steps: int,
    dt: float,
    base_capacity: float,
) -> List[Window]:
    """Partition ``[0, steps)`` into fault windows for a fixed-step run.

    Event times are quantized with :func:`quantize_tick`; events that
    collapse to zero ticks at this resolution are dropped (consistent
    with the schedule-level zero-duration no-op rule). The returned
    windows tile the whole run, and an empty schedule yields exactly one
    ``MODE_NORMAL`` window at ``base_capacity``.
    """
    events = [] if schedule is None else schedule.capacity_events(
        single_link(schedule)
    )
    spans: List[Window] = []
    for event in events:
        start = min(max(quantize_tick(event.start, dt), 0), steps)
        end = min(max(quantize_tick(event.end, dt), 0), steps)
        if end <= start:
            continue
        if isinstance(event, RateChange):
            spans.append(Window(
                start, end, MODE_NORMAL, base_capacity * event.factor
            ))
        elif isinstance(event, LinkFailure):
            spans.append(Window(start, end, MODE_FREEZE, 0.0))
        else:  # PfcStorm — the queue still drains at base capacity.
            spans.append(Window(start, end, MODE_STORM, base_capacity))
    spans.sort(key=lambda w: w.start)
    windows: List[Window] = []
    cursor = 0
    for span in spans:
        if span.start > cursor:
            windows.append(Window(
                cursor, span.start, MODE_NORMAL, base_capacity
            ))
        windows.append(span)
        cursor = span.end
    if cursor < steps or not windows:
        windows.append(Window(cursor, steps, MODE_NORMAL, base_capacity))
    return windows


@dataclass(frozen=True)
class JobWarp:
    """Compiled per-job perturbations, applied inside the lifecycle.

    Called as ``warp(now, duration)`` when a compute phase begins at
    simulation time ``now`` with unperturbed duration ``duration``;
    returns the perturbed duration (clamped at zero). Stragglers apply
    multiplicatively and clock skews additively when the phase *begins*
    inside their window; latency spikes add their extra seconds when the
    subsequent communication phase (at ``now + duration``) would begin
    inside theirs.
    """

    stragglers: Tuple[Tuple[float, float, float], ...] = ()
    skews: Tuple[Tuple[float, float, float], ...] = ()
    spikes: Tuple[Tuple[float, float, float], ...] = ()

    def __call__(self, now: float, duration: float) -> float:
        warped = duration
        for start, end, factor in self.stragglers:
            if start <= now < end:
                warped *= factor
        for start, end, offset in self.skews:
            if start <= now < end:
                warped += offset
        if warped < 0.0:
            warped = 0.0
        for start, end, extra in self.spikes:
            if start <= now + warped < end:
                warped += extra
        return warped


def build_warp(
    schedule: Optional[InjectionSchedule],
    job: str,
    links: Iterable[str] = (),
) -> Optional[JobWarp]:
    """Compile the schedule's perturbations of one job into a warp.

    ``links`` names the links the job's traffic traverses; latency
    spikes on those links delay the job's communication phases. Returns
    ``None`` when nothing in the schedule touches the job, so callers
    can skip installing a warp (and keep the unfaulted path untouched).
    """
    if schedule is None:
        return None
    link_set = set(links)
    stragglers = []
    skews = []
    for event in schedule.job_events(job):
        if isinstance(event, Straggler):
            stragglers.append((event.start, event.end, event.factor))
        else:
            skews.append((event.start, event.end, event.offset))
    spikes = [
        (event.start, event.end, event.extra)
        for event in schedule.latency_events()
        if event.link in link_set
    ]
    if not (stragglers or skews or spikes):
        return None
    return JobWarp(
        stragglers=tuple(stragglers),
        skews=tuple(skews),
        spikes=tuple(spikes),
    )


def emit_fault_events(telemetry, schedule: Optional[InjectionSchedule]) -> None:
    """Record every scheduled fault window into the telemetry trace."""
    if schedule is None or not telemetry.enabled:
        return
    from ..telemetry.trace import KIND_FAULT

    for event in schedule.events:
        target = getattr(event, "link", None)
        if target is None:
            target = event.job
        telemetry.event(
            KIND_FAULT,
            t=event.start,
            fault=event.kind,
            target=target,
            end=event.end,
        )
