"""The unified circle (Figure 5).

Jobs with different iteration times cannot be overlaid directly; the paper
places each on a circle whose perimeter is the **least common multiple** of
all iteration times, tiling each job's pattern once per its own period.
Rotating a job on the unified circle rotates every tile together — a job's
rotation is therefore only meaningful modulo its *own* perimeter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from ..errors import GeometryError
from .arcs import ArcSet
from .circle import JobCircle


def unified_perimeter(circles: Sequence[JobCircle]) -> int:
    """LCM of the jobs' iteration times, in ticks."""
    if not circles:
        raise GeometryError("unified_perimeter of an empty collection")
    return math.lcm(*(circle.perimeter for circle in circles))


@dataclass
class UnifiedCircle:
    """All jobs tiled onto one LCM circle, with per-job rotations."""

    circles: Tuple[JobCircle, ...]
    perimeter: int = field(init=False)

    def __init__(self, circles: Sequence[JobCircle]) -> None:
        ids = [circle.job_id for circle in circles]
        if len(set(ids)) != len(ids):
            raise GeometryError(f"duplicate job ids: {ids}")
        self.circles = tuple(circles)
        self.perimeter = unified_perimeter(self.circles)

    def __len__(self) -> int:
        return len(self.circles)

    @property
    def job_ids(self) -> List[str]:
        """Job ids in registration order."""
        return [circle.job_id for circle in self.circles]

    def circle_of(self, job_id: str) -> JobCircle:
        """Look up a member circle."""
        for circle in self.circles:
            if circle.job_id == job_id:
                return circle
        raise GeometryError(f"unknown job {job_id!r}")

    def tiled(
        self, rotations: Mapping[str, int] | None = None
    ) -> Dict[str, ArcSet]:
        """Each job's communication arcs on the unified circle.

        Args:
            rotations: Optional per-job rotation in ticks (missing jobs
                rotate by 0). Rotations are applied on the job's *own*
                circle before tiling, so they are periodic in the job's
                perimeter — matching the sliding effect, which shifts every
                iteration of a job equally.
        """
        rotations = rotations or {}
        tiled: Dict[str, ArcSet] = {}
        for circle in self.circles:
            delta = rotations.get(circle.job_id, 0)
            tiled[circle.job_id] = circle.rotate(delta).tiled_comm(
                self.perimeter
            )
        return tiled

    def coverage(
        self, rotations: Mapping[str, int] | None = None
    ) -> List[Tuple[int, int, int]]:
        """Coverage segments ``(start, end, n_jobs_communicating)``."""
        return ArcSet.coverage(list(self.tiled(rotations).values()))

    def overlap_ticks(
        self,
        rotations: Mapping[str, int] | None = None,
        capacity: int = 1,
    ) -> int:
        """Ticks of the unified circle where more than ``capacity`` jobs
        communicate — the quantity the optimization drives to zero."""
        total = 0
        for start, end, count in self.coverage(rotations):
            if count > capacity:
                total += end - start
        return total

    def max_coverage(
        self, rotations: Mapping[str, int] | None = None
    ) -> int:
        """Maximum number of simultaneously communicating jobs."""
        return ArcSet.max_coverage(list(self.tiled(rotations).values()))

    def demand_coverage(
        self, rotations: Mapping[str, int] | None = None
    ) -> List[Tuple[int, int, float]]:
        """Segments ``(start, end, total demand)`` summing each job's
        fractional link demand (the §5 GPU-multi-tenancy generalization:
        bandwidth-limited jobs may overlap as long as demands fit)."""
        tiled = self.tiled(rotations)
        events: List[Tuple[int, float]] = []
        for circle in self.circles:
            demand = circle.demand
            for start, end in tiled[circle.job_id].intervals:
                events.append((start, demand))
                events.append((end, -demand))
        events.sort()
        segments: List[Tuple[int, int, float]] = []
        level = 0.0
        cursor = 0
        index = 0
        while index < len(events):
            position = events[index][0]
            if position > cursor:
                segments.append((cursor, position, level))
                cursor = position
            while index < len(events) and events[index][0] == position:
                level += events[index][1]
                index += 1
        if cursor < self.perimeter:
            segments.append((cursor, self.perimeter, level))
        return segments

    def fractional_overlap_ticks(
        self,
        rotations: Mapping[str, int] | None = None,
        capacity: float = 1.0,
    ) -> int:
        """Ticks where total fractional demand exceeds ``capacity``."""
        if capacity <= 0:
            raise GeometryError(f"capacity must be > 0, got {capacity}")
        tolerance = 1e-9
        return sum(
            end - start
            for start, end, level in self.demand_coverage(rotations)
            if level > capacity + tolerance
        )

    def total_comm_ticks(self) -> int:
        """Sum of all jobs' communication ticks on the unified circle."""
        return sum(
            circle.comm_ticks * (self.perimeter // circle.perimeter)
            for circle in self.circles
        )

    def utilization_lower_bound(self) -> float:
        """Total demanded comm time over the unified period, as a fraction.

        If this exceeds 1, the jobs cannot be fully compatible on a
        unit-capacity link: there is simply more communication than time —
        a cheap necessary condition every solver checks first.
        """
        return self.total_comm_ticks() / self.perimeter
