"""Cluster-level compatibility (§5).

In a real cluster a job traverses several links and meets *different*
jobs on each. The paper's §5 sketch: expand the unified circle to the LCM
of the iteration times of every job that shares at least one link with
another, and find a **single rotation per job** such that on *every*
link, the jobs sharing it never communicate simultaneously.

This is strictly harder than the single-link problem: the constraint
graph is per-link, but a job has one phase — it cannot rotate differently
for different links. :class:`ClusterCompatibilityProblem` solves it with
the same exact feasible-set machinery, intersecting each job's feasible
rotations against *only the jobs it actually shares links with* — jobs in
different parts of the fabric do not constrain each other, and
independent connected components are solved independently.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import CompatibilityError
from .arcs import ArcSet
from .circle import JobCircle
from .optimize import (
    annealing_search,
    exact_pair_feasible_rotations,
    feasible_rotations,
)
from .unified import UnifiedCircle, unified_perimeter


@dataclass
class ClusterCompatibilityResult:
    """Outcome of a cluster-wide rotation search.

    Attributes:
        compatible: A rotation per job exists such that no link ever
            carries two communicating jobs at once.
        rotations: The certificate (or best effort), ticks per job.
        overlap_ticks: Residual per-link overlap summed over links.
        violated_links: Links that still see simultaneous communication
            under ``rotations``.
        components: Jobs grouped by constraint-graph connected component.
        method: How the verdict was reached.
    """

    compatible: bool
    rotations: Dict[str, int]
    overlap_ticks: int
    violated_links: List[str]
    components: List[List[str]]
    method: str


class ClusterCompatibilityProblem:
    """Jobs, links, and the job->links mapping of one cluster snapshot."""

    def __init__(self, circles: Sequence[JobCircle]) -> None:
        ids = [circle.job_id for circle in circles]
        if len(set(ids)) != len(ids):
            raise CompatibilityError(f"duplicate job ids: {ids}")
        self._circles: Dict[str, JobCircle] = {
            circle.job_id: circle for circle in circles
        }
        self._links_of: Dict[str, Set[str]] = {
            job_id: set() for job_id in self._circles
        }
        self._jobs_on: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def assign(self, job_id: str, links: Sequence[str]) -> None:
        """Declare which links a job's traffic traverses."""
        if job_id not in self._circles:
            raise CompatibilityError(f"unknown job {job_id!r}")
        for link in links:
            self._links_of[job_id].add(link)
            self._jobs_on.setdefault(link, set()).add(job_id)

    @classmethod
    def from_assignments(
        cls,
        circles: Sequence[JobCircle],
        links_by_job: Mapping[str, Sequence[str]],
    ) -> "ClusterCompatibilityProblem":
        """Build a problem from a ``{job: [link names]}`` mapping."""
        problem = cls(circles)
        for job_id, links in links_by_job.items():
            problem.assign(job_id, links)
        return problem

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def neighbours(self, job_id: str) -> Set[str]:
        """Jobs sharing at least one link with ``job_id``."""
        result: Set[str] = set()
        for link in self._links_of[job_id]:
            result |= self._jobs_on[link]
        result.discard(job_id)
        return result

    def components(self) -> List[List[str]]:
        """Connected components of the shares-a-link graph."""
        remaining = set(self._circles)
        components: List[List[str]] = []
        while remaining:
            seed = min(remaining)  # deterministic order
            stack = [seed]
            component: Set[str] = set()
            while stack:
                job_id = stack.pop()
                if job_id in component:
                    continue
                component.add(job_id)
                stack.extend(self.neighbours(job_id) - component)
            components.append(sorted(component))
            remaining -= component
        return components

    def contended_links(self) -> Dict[str, Set[str]]:
        """Links carrying two or more jobs."""
        return {
            link: jobs
            for link, jobs in self._jobs_on.items()
            if len(jobs) > 1
        }

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(self, seed: int = 0, max_nodes: int = 200_000) -> (
        ClusterCompatibilityResult
    ):
        """Find one rotation per job satisfying every link constraint.

        Components are independent, so each is solved on its own unified
        circle: a DFS places one job at a time, intersecting its exact
        feasible-rotation sets against each already-placed *neighbour*
        (non-neighbours impose no constraint even within a component).
        Falls back to annealing on the component when the DFS misses.
        """
        rotations: Dict[str, int] = {}
        methods: List[str] = []
        compatible = True
        for component in self.components():
            outcome = self.solve_component(component, seed, max_nodes)
            if outcome is None:
                compatible = False
                methods.append("unsat")
                for job_id in component:
                    rotations.setdefault(job_id, 0)
            else:
                component_rotations, method = outcome
                rotations.update(component_rotations)
                methods.append(method)
        overlap, violated = self._audit(rotations)
        return ClusterCompatibilityResult(
            compatible=compatible and overlap == 0,
            rotations=rotations,
            overlap_ticks=overlap,
            violated_links=violated,
            components=self.components(),
            method="+".join(sorted(set(methods))),
        )

    # ------------------------------------------------------------------
    # Component-level API (reused by the incremental engine)
    # ------------------------------------------------------------------

    def solve_component(
        self,
        component: Sequence[str],
        seed: int = 0,
        max_nodes: int = 200_000,
    ) -> Optional[Tuple[Dict[str, int], str]]:
        """Solve one connected component: ``(rotations, method)`` or None.

        ``component`` must list the member job ids (sorted order is the
        canonical form produced by :meth:`components`). A ``None`` return
        means no zero-overlap rotation assignment was found (the DFS and
        the annealing fallback both missed).
        """
        circles = [self._circles[job_id] for job_id in component]
        if len(circles) == 1:
            return {component[0]: 0}, "trivial"

        # Pairwise screens between actual neighbours only.
        for first_id, second_id in itertools.combinations(component, 2):
            if second_id not in self.neighbours(first_id):
                continue
            feasible = exact_pair_feasible_rotations(
                self._circles[first_id], self._circles[second_id]
            )
            if feasible.is_empty:
                return None

        perimeter = unified_perimeter(circles)
        # Order jobs most-constrained first (degree, then comm length).
        order = sorted(
            component,
            key=lambda j: (
                -len(self.neighbours(j)),
                -self._circles[j].comm.measure,
            ),
        )
        nodes = 0

        def dfs(depth: int, placed: Dict[str, ArcSet],
                partial: Dict[str, int]) -> Optional[Dict[str, int]]:
            nonlocal nodes
            if depth == len(order):
                return dict(partial)
            if nodes > max_nodes:
                return None
            job_id = order[depth]
            circle = self._circles[job_id]
            feasible = ArcSet(circle.perimeter, [(0, circle.perimeter)])
            for neighbour in self.neighbours(job_id):
                arcs = placed.get(neighbour)
                if arcs is None:
                    continue
                feasible = feasible.intersection(
                    feasible_rotations(arcs, circle, perimeter)
                )
                if feasible.is_empty:
                    return None
            for delta in [start for start, _ in feasible.intervals]:
                nodes += 1
                partial[job_id] = delta
                placed[job_id] = circle.rotate(delta).tiled_comm(perimeter)
                result = dfs(depth + 1, placed, partial)
                if result is not None:
                    return result
                del partial[job_id]
                del placed[job_id]
            return None

        found = dfs(0, {}, {})
        if found is not None:
            return found, "dfs"

        # Fall back to annealing with the *link-aware* cost.
        return self._anneal_component(component, seed)

    def _anneal_component(
        self, component: Sequence[str], seed: int
    ) -> Optional[Tuple[Dict[str, int], str]]:
        import numpy as np

        rng = np.random.default_rng(seed)
        rotations = {job_id: 0 for job_id in component}
        best = dict(rotations)
        best_cost, _ = self._component_cost(component, rotations)
        iterations = 3000
        for step in range(iterations):
            if best_cost == 0:
                break
            job_id = component[int(rng.integers(len(component)))]
            period = self._circles[job_id].perimeter
            candidate = dict(rotations)
            candidate[job_id] = int(rng.integers(period))
            cost, _ = self._component_cost(component, candidate)
            temperature = max(
                1e-9, (1.0 - step / iterations) * best_cost + 1e-9
            )
            if cost <= best_cost or rng.random() < np.exp(
                (best_cost - cost) / temperature
            ):
                rotations = candidate
                if cost < best_cost:
                    best, best_cost = dict(candidate), cost
        if best_cost == 0:
            return best, "annealing"
        return None

    def _component_cost(
        self, component: Sequence[str], rotations: Mapping[str, int]
    ) -> Tuple[int, List[str]]:
        links = {
            link
            for job_id in component
            for link in self._links_of[job_id]
        }
        return self.audit_links(links, rotations)

    def _audit(
        self, rotations: Mapping[str, int]
    ) -> Tuple[int, List[str]]:
        return self.audit_links(set(self._jobs_on), rotations)

    def audit_links(
        self, links: Set[str], rotations: Mapping[str, int]
    ) -> Tuple[int, List[str]]:
        """Overlap ticks and violated links for fixed ``rotations``.

        Audits each link's unified circle independently (a link with
        fewer than two sharers can never overlap). Returns
        ``(total_overlap, violated_link_names)`` with the violated list
        in sorted link order.
        """
        total = 0
        violated: List[str] = []
        for link in sorted(links):
            jobs = sorted(self._jobs_on.get(link, ()))
            if len(jobs) < 2:
                continue
            circles = [self._circles[job_id] for job_id in jobs]
            unified = UnifiedCircle(circles)
            overlap = unified.overlap_ticks(
                {job_id: rotations.get(job_id, 0) for job_id in jobs}
            )
            if overlap > 0:
                violated.append(link)
            total += overlap
        return total, violated
