"""Compatibility metrics.

Beyond the binary fully-compatible verdict, schedulers want to rank
placements: *how close* to compatible is a set of jobs? These metrics
quantify residual overlap and build the pairwise compatibility matrix the
placement algorithms consult.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from ..errors import CompatibilityError
from .circle import JobCircle
from .optimize import annealing_search, exact_pair_feasible_rotations, solve
from .unified import UnifiedCircle


def overlap_ticks(
    circles: Sequence[JobCircle],
    rotations: Mapping[str, int] | None = None,
    capacity: int = 1,
) -> int:
    """Overlap (ticks covered by more than ``capacity`` jobs) at given
    rotations (all zero if omitted)."""
    return UnifiedCircle(circles).overlap_ticks(
        dict(rotations or {}), capacity=capacity
    )


def min_overlap(
    circles: Sequence[JobCircle],
    capacity: int = 1,
    seed: int = 0,
) -> Tuple[int, Dict[str, int]]:
    """Best-effort minimum overlap and the rotations achieving it.

    Exact when the solver proves compatibility (overlap 0); otherwise an
    upper bound from annealing — good enough for ranking placements. For
    instances whose tiling exceeds the search budget the solver's analytic
    lower bound is returned instead.
    """
    outcome = solve(circles, capacity=capacity, seed=seed)
    if outcome.found:
        return 0, dict(outcome.rotations)
    if outcome.method == "instance-too-large":
        return outcome.overlap, dict(outcome.rotations)
    refined = annealing_search(circles, capacity=capacity, seed=seed)
    if refined.overlap < outcome.overlap:
        return refined.overlap, dict(refined.rotations)
    return outcome.overlap, dict(outcome.rotations)


def compatibility_score(
    circles: Sequence[JobCircle],
    capacity: int = 1,
    seed: int = 0,
) -> float:
    """1 minus the fraction of communication time stuck in overlap.

    1.0 means fully compatible; 0.0 means all communication collides. The
    compatibility-aware scheduler maximizes this when no fully compatible
    placement exists.
    """
    if not circles:
        raise CompatibilityError("no circles given")
    total_comm = UnifiedCircle(circles).total_comm_ticks()
    if total_comm == 0:
        return 1.0
    overlap, _ = min_overlap(circles, capacity=capacity, seed=seed)
    return max(0.0, 1.0 - overlap / total_comm)


def pairwise_compatibility_matrix(
    circles: Sequence[JobCircle],
) -> np.ndarray:
    """Boolean matrix: ``[i, j]`` is True iff jobs i and j are pairwise
    compatible (exact gcd-reduced check; diagonal is True)."""
    n = len(circles)
    matrix = np.eye(n, dtype=bool)
    for i in range(n):
        for j in range(i + 1, n):
            feasible = exact_pair_feasible_rotations(circles[i], circles[j])
            matrix[i, j] = matrix[j, i] = not feasible.is_empty
    return matrix
