"""The compatibility checker facade.

Answers the paper's central question: *"Is there a way to slide the
communication pattern of the jobs such that their communication phases have
almost no overlap with each other?"* (§3). Jobs are **fully compatible**
when such rotations exist; the checker returns the rotations as the
certificate, plus diagnostics (unified perimeter, utilization bound, the
residual overlap when incompatible).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..errors import CompatibilityError
from ..units import gbps
from .circle import JobCircle
from .optimize import SolverOutcome, solve
from .unified import UnifiedCircle

if TYPE_CHECKING:  # annotation-only; `core` must not load `workloads`
    from ..workloads.job import JobSpec


@dataclass(frozen=True)
class CompatibilityResult:
    """Verdict for one set of jobs sharing a link.

    Attributes:
        compatible: Whether zero-overlap rotations were found.
        rotations: Per-job rotation in ticks (the certificate when
            compatible; the best-effort assignment otherwise).
        overlap_ticks: Residual overlap of ``rotations``.
        unified_perimeter: LCM of the iteration times, ticks.
        utilization: Total communication demand over the unified period
            (> 1 makes incompatibility trivial).
        certified: Whether the verdict is proven (found rotations, an
            infeasibility proof, or an exhausted complete search) rather
            than a heuristic miss.
        method: The solver that settled the question.
        job_ids: Jobs in the order they were given.
    """

    compatible: bool
    rotations: Dict[str, int]
    overlap_ticks: int
    unified_perimeter: int
    utilization: float
    certified: bool
    method: str
    job_ids: List[str] = field(default_factory=list)

    @property
    def overlap_fraction(self) -> float:
        """Residual overlap as a fraction of the unified perimeter."""
        return self.overlap_ticks / self.unified_perimeter


class CompatibilityChecker:
    """Builds circles from job specs and runs the rotation solvers."""

    def __init__(
        self,
        capacity: float = gbps(42),
        ticks_per_second: int = 1000,
        coverage_capacity: int = 1,
    ) -> None:
        """Create a checker.

        Args:
            capacity: Link bandwidth used to convert communication bytes to
                arc lengths (the solo profiling bandwidth).
            ticks_per_second: Geometry quantization. The default (1 tick =
                1 ms) matches profiling granularity and keeps LCMs small;
                raise it for sub-millisecond profiles.
            coverage_capacity: Maximum jobs allowed to communicate in the
                same sector (1 in the paper's formulation).
        """
        if ticks_per_second <= 0:
            raise CompatibilityError("ticks_per_second must be > 0")
        if coverage_capacity < 1:
            raise CompatibilityError("coverage_capacity must be >= 1")
        self.capacity = capacity
        self.ticks_per_second = ticks_per_second
        self.coverage_capacity = coverage_capacity

    # ------------------------------------------------------------------
    # Circle construction
    # ------------------------------------------------------------------

    def circle(self, spec: JobSpec) -> JobCircle:
        """Quantize one job spec onto its circle."""
        return JobCircle.from_job(
            spec, self.capacity, ticks_per_second=self.ticks_per_second
        )

    def circles(self, specs: Sequence[JobSpec]) -> List[JobCircle]:
        """Quantize many specs."""
        return [self.circle(spec) for spec in specs]

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------

    def check(
        self,
        specs: Sequence[JobSpec],
        method: str = "auto",
        seed: int = 0,
    ) -> CompatibilityResult:
        """Decide whether ``specs`` are fully compatible on one link."""
        if not specs:
            raise CompatibilityError("no jobs given")
        return self.check_circles(self.circles(specs), method=method, seed=seed)

    def check_circles(
        self,
        circles: Sequence[JobCircle],
        method: str = "auto",
        seed: int = 0,
    ) -> CompatibilityResult:
        """Decide compatibility for pre-built circles."""
        unified = UnifiedCircle(circles)
        outcome: SolverOutcome = solve(
            circles,
            capacity=self.coverage_capacity,
            method=method,
            seed=seed,
        )
        return CompatibilityResult(
            compatible=outcome.found,
            rotations=dict(outcome.rotations),
            overlap_ticks=0 if outcome.found else outcome.overlap,
            unified_perimeter=unified.perimeter,
            utilization=unified.utilization_lower_bound(),
            certified=outcome.found or outcome.complete,
            method=outcome.method,
            job_ids=[circle.job_id for circle in circles],
        )

    def check_incremental(
        self,
        placed_circles: Sequence[JobCircle],
        placed_rotations: Dict[str, int],
        new_circle: JobCircle,
    ) -> CompatibilityResult:
        """Can a new job join WITHOUT re-rotating the running jobs?

        An online scheduler often cannot re-phase jobs that are already
        training (re-sliding costs iterations); this admits the newcomer
        only if a rotation exists against the *fixed* placed arcs. The
        exact feasible set comes from the same interval arithmetic as the
        offline solver, so a positive answer carries a certificate and a
        negative answer is a proof **for the fixed placement** (the jobs
        may still be compatible if everyone re-rotates — check with
        :meth:`check_circles`).
        """
        from .arcs import ArcSet
        from .optimize import feasible_rotations
        from .unified import UnifiedCircle

        all_circles = list(placed_circles) + [new_circle]
        unified = UnifiedCircle(all_circles)
        placed = ArcSet(unified.perimeter)
        for circle in placed_circles:
            delta = placed_rotations.get(circle.job_id, 0)
            placed = placed.union(
                circle.rotate(delta).tiled_comm(unified.perimeter)
            )
        feasible = feasible_rotations(placed, new_circle, unified.perimeter)
        rotations = {
            circle.job_id: placed_rotations.get(circle.job_id, 0)
            for circle in placed_circles
        }
        if feasible.is_empty:
            rotations[new_circle.job_id] = 0
            overlap = unified.overlap_ticks(
                rotations, capacity=self.coverage_capacity
            )
            return CompatibilityResult(
                compatible=False,
                rotations=rotations,
                overlap_ticks=overlap,
                unified_perimeter=unified.perimeter,
                utilization=unified.utilization_lower_bound(),
                certified=True,
                method="incremental-infeasible",
                job_ids=[c.job_id for c in all_circles],
            )
        rotations[new_circle.job_id] = feasible.intervals[0][0]
        return CompatibilityResult(
            compatible=True,
            rotations=rotations,
            overlap_ticks=0,
            unified_perimeter=unified.perimeter,
            utilization=unified.utilization_lower_bound(),
            certified=True,
            method="incremental",
            job_ids=[c.job_id for c in all_circles],
        )

    def rotation_seconds(
        self, result: CompatibilityResult
    ) -> Dict[str, float]:
        """Convert a result's rotations from ticks to seconds."""
        return {
            job_id: ticks / self.ticks_per_second
            for job_id, ticks in result.rotations.items()
        }
