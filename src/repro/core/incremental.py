"""Incremental cluster compatibility for online scheduling.

The batch solver (:class:`repro.core.cluster_compat.
ClusterCompatibilityProblem`) re-derives everything from one cluster
snapshot. An online scheduler sees a *stream* of arrivals and departures,
and each event only touches the connected components of the shares-a-link
graph that the arriving or departing job is part of — every other
component's rotation solution is still valid. MLTCP (PAPERS.md) adds a
second constraint: jobs that are already training should keep their phase,
because re-sliding costs iterations.

:class:`IncrementalCompatibilityEngine` exploits both:

* **Per-component solution cache.** Component solutions are keyed by the
  component's *content* (job ids, circle geometry, link assignments), so
  an arrival or departure invalidates nothing explicitly — untouched
  components hash to the same key and hit the cache, while the touched
  component's key changes and is re-solved on demand.
* **Fixed-rotation screen.** When every component an arrival touches is
  compatible under its live rotations, the newcomer's feasible set is the
  intersection of its exact pairwise feasible sets against each
  link-sharing neighbour *at that neighbour's live rotation* (the
  ``gcd``-circle trick from :func:`repro.core.optimize.
  exact_pair_feasible_rotations`, so the cost never depends on the LCM).
  A non-empty set admits the job with a certificate and **without
  re-solving or re-phasing anything**.

:meth:`solve` assembles the canonical per-component solutions and is
metamorphically equivalent to building a fresh
``ClusterCompatibilityProblem`` from the same snapshot and calling
``solve()`` — the property ``tests/test_incremental.py`` drives with
randomized arrival/departure sequences.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import CompatibilityError
from .arcs import ArcSet
from .circle import JobCircle
from .cluster_compat import (
    ClusterCompatibilityProblem,
    ClusterCompatibilityResult,
)
from .compatibility import CompatibilityChecker
from .optimize import exact_pair_feasible_rotations

if TYPE_CHECKING:  # annotation-only; `core` must not load `workloads`
    from ..workloads.job import JobSpec

#: Canonical component solutions kept in the LRU cache by default.
DEFAULT_CACHE_ENTRIES = 4096


@dataclass(frozen=True)
class AdmissionVerdict:
    """Outcome of admitting (or probing) one job.

    Attributes:
        job_id: The candidate job.
        compatible: Whether the job joins without creating overlap on any
            link (under the engine's live rotations for ``screen``, under
            the canonical component solution otherwise).
        method: ``"screen"`` (admitted against fixed live rotations),
            or the component solver's method (``dfs``/``annealing``/
            ``trivial``/``unsat``) when a full component solve ran.
        rotation: The candidate's rotation in ticks (the certificate when
            compatible, best effort otherwise).
        overlap_ticks: Residual overlap of the touched component.
        violated_links: Links of the touched component still seeing
            simultaneous communication.
        component: Sorted ids of the component the job joins (including
            the job itself).
    """

    job_id: str
    compatible: bool
    method: str
    rotation: int
    overlap_ticks: int
    violated_links: Tuple[str, ...]
    component: Tuple[str, ...]


@dataclass(frozen=True)
class ComponentSolution:
    """Canonical solution of one connected component (cache value)."""

    members: Tuple[str, ...]
    rotations: Mapping[str, int]
    found: bool
    method: str
    overlap_ticks: int
    violated_links: Tuple[str, ...]


class IncrementalCompatibilityEngine:
    """Live cluster compatibility state under arrivals and departures."""

    def __init__(
        self,
        checker: Optional[CompatibilityChecker] = None,
        seed: int = 0,
        max_nodes: int = 200_000,
        max_cache_entries: int = DEFAULT_CACHE_ENTRIES,
    ) -> None:
        """Create an empty engine.

        Args:
            checker: Builds circles from job specs (:meth:`circle`); its
                profiling bandwidth and tick granularity apply. Coverage
                capacity must be 1 (the paper's formulation — the exact
                pairwise screen has no meaning for capacity > 1).
            seed: Seed forwarded to every component solve (annealing
                fallback), mirroring ``ClusterCompatibilityProblem.solve``.
            max_nodes: DFS node budget per component solve.
            max_cache_entries: LRU bound on cached component solutions.
        """
        checker = checker if checker is not None else CompatibilityChecker()
        if checker.coverage_capacity != 1:
            raise CompatibilityError(
                "incremental engine requires coverage_capacity == 1"
            )
        if max_cache_entries < 1:
            raise CompatibilityError("max_cache_entries must be >= 1")
        self.checker = checker
        self._seed = seed
        self._max_nodes = max_nodes
        self._max_cache_entries = max_cache_entries
        self._circles: Dict[str, JobCircle] = {}
        self._links_of: Dict[str, Tuple[str, ...]] = {}
        self._jobs_on: Dict[str, Set[str]] = {}
        self._rotations: Dict[str, int] = {}
        self._members: Dict[int, Tuple[str, ...]] = {}
        self._cid_of: Dict[str, int] = {}
        self._live_ok: Dict[int, bool] = {}
        self._next_cid = 0
        self._cache: "OrderedDict[Tuple, ComponentSolution]" = OrderedDict()
        self._stats: Dict[str, int] = {
            "adds": 0,
            "removes": 0,
            "screen_admits": 0,
            "component_solves": 0,
            "component_cache_hits": 0,
            "rephases": 0,
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def circle(self, spec: JobSpec) -> JobCircle:
        """Quantize a job spec onto its circle via the checker."""
        return self.checker.circle(spec)

    @property
    def jobs(self) -> List[str]:
        """Tracked job ids, sorted."""
        return sorted(self._circles)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._circles

    def __len__(self) -> int:
        return len(self._circles)

    def links_of(self, job_id: str) -> Tuple[str, ...]:
        """Links assigned to a tracked job."""
        self._require(job_id)
        return self._links_of[job_id]

    def rotation_of(self, job_id: str) -> int:
        """The job's live rotation in ticks."""
        self._require(job_id)
        return self._rotations[job_id]

    @property
    def live_rotations(self) -> Dict[str, int]:
        """Copy of every job's live rotation."""
        return dict(self._rotations)

    @property
    def cluster_compatible(self) -> bool:
        """Whether every live component is compatible."""
        return all(
            self._live_ok[cid] for cid in sorted(self._live_ok)
        )

    def components(self) -> List[List[str]]:
        """Live connected components, ordered by smallest member id."""
        return [
            list(members)
            for members in sorted(self._members.values())
        ]

    def component_of(self, job_id: str) -> Tuple[str, ...]:
        """Sorted members of the component containing ``job_id``."""
        self._require(job_id)
        return self._members[self._cid_of[job_id]]

    def stats(self) -> Dict[str, int]:
        """Deterministic solver-reuse counters."""
        return dict(self._stats)

    # ------------------------------------------------------------------
    # Admission / departure
    # ------------------------------------------------------------------

    def try_admit(
        self, circle: JobCircle, links: Sequence[str]
    ) -> AdmissionVerdict:
        """Probe an admission without committing any state.

        Component solves triggered by the probe still warm the canonical
        cache, so a following :meth:`add` of the same job is cheap.
        """
        link_names, neighbours, touched = self._locate(circle, links)
        verdict, _ = self._evaluate(circle, link_names, neighbours, touched)
        return verdict

    def add(
        self, circle: JobCircle, links: Sequence[str]
    ) -> AdmissionVerdict:
        """Admit a job (compatible or not) and update live state."""
        link_names, neighbours, touched = self._locate(circle, links)
        verdict, solution = self._evaluate(
            circle, link_names, neighbours, touched
        )
        job_id = circle.job_id
        self._circles[job_id] = circle
        self._links_of[job_id] = link_names
        for link in link_names:
            self._jobs_on.setdefault(link, set()).add(job_id)
        members = verdict.component
        for cid in touched:
            del self._members[cid]
            del self._live_ok[cid]
        cid = self._next_cid
        self._next_cid += 1
        self._members[cid] = members
        for member in members:
            self._cid_of[member] = cid
        self._live_ok[cid] = verdict.compatible
        if solution is not None and solution.found:
            # Canonical solve re-phases the whole merged component.
            rephased = 0
            for member in members:
                target = solution.rotations.get(member, 0)
                if self._rotations.get(member) != target:
                    rephased += 1
                self._rotations[member] = target
            self._rotations[job_id] = solution.rotations.get(job_id, 0)
            self._bump("rephases", max(rephased - 1, 0))
        else:
            # Screen admission (or best-effort on an unsat component):
            # running jobs keep their phase.
            self._rotations[job_id] = verdict.rotation
        self._bump("adds")
        return verdict

    def remove(self, job_id: str) -> None:
        """Forget a departed job; split and re-verdict its component."""
        self._require(job_id)
        del self._circles[job_id]
        links = self._links_of.pop(job_id)
        del self._rotations[job_id]
        for link in links:
            sharers = self._jobs_on[link]
            sharers.discard(job_id)
            if not sharers:
                del self._jobs_on[link]
        cid = self._cid_of.pop(job_id)
        parent = [m for m in self._members.pop(cid) if m != job_id]
        parent_ok = self._live_ok.pop(cid)
        for members in self._split(parent):
            new_cid = self._next_cid
            self._next_cid += 1
            self._members[new_cid] = members
            for member in members:
                self._cid_of[member] = new_cid
            if parent_ok:
                # A restriction of a valid certificate stays valid.
                self._live_ok[new_cid] = True
                continue
            # The departure may have cleared the congestion: re-solve the
            # fragment canonically and re-phase if it became compatible.
            solution = self._solution_for(members)
            self._live_ok[new_cid] = solution.found
            if solution.found:
                rephased = 0
                for member in members:
                    target = solution.rotations.get(member, 0)
                    if self._rotations.get(member) != target:
                        rephased += 1
                    self._rotations[member] = target
                self._bump("rephases", rephased)
        self._bump("removes")

    # ------------------------------------------------------------------
    # Canonical solve (metamorphically equal to the batch solver)
    # ------------------------------------------------------------------

    def solve(self) -> ClusterCompatibilityResult:
        """Assemble the canonical cluster-wide result.

        Equivalent — verdict, rotations, overlap, violated links,
        components, and method string — to building a fresh
        :class:`ClusterCompatibilityProblem` from the current snapshot and
        calling ``solve(seed)``; untouched components are served from the
        cache instead of re-solved.
        """
        rotations: Dict[str, int] = {}
        methods: List[str] = []
        total_overlap = 0
        violated: List[str] = []
        components: List[List[str]] = []
        compatible = True
        for members in sorted(self._members.values()):
            solution = self._solution_for(members)
            if not solution.found:
                compatible = False
            rotations.update(solution.rotations)
            methods.append(solution.method)
            total_overlap += solution.overlap_ticks
            violated.extend(solution.violated_links)
            components.append(list(members))
        return ClusterCompatibilityResult(
            compatible=compatible and total_overlap == 0,
            rotations=rotations,
            overlap_ticks=total_overlap,
            violated_links=sorted(violated),
            components=components,
            method="+".join(sorted(set(methods))),
        )

    def problem(self) -> ClusterCompatibilityProblem:
        """A fresh from-scratch problem for the current snapshot."""
        circles = [self._circles[j] for j in sorted(self._circles)]
        links_by_job = {
            j: list(self._links_of[j]) for j in sorted(self._links_of)
        }
        return ClusterCompatibilityProblem.from_assignments(
            circles, links_by_job
        )

    def live_audit(self) -> Tuple[int, List[str]]:
        """Overlap and violated links under the *live* rotations."""
        return self.problem().audit_links(
            set(self._jobs_on), self._rotations
        )

    # ------------------------------------------------------------------
    # Placement support
    # ------------------------------------------------------------------

    def candidate_score(
        self, circle: JobCircle, links: Sequence[str]
    ) -> Tuple[bool, float]:
        """Score a placement candidate against the live state.

        Returns ``(clean, forbidden_fraction)``: *clean* when every
        touched component is live-compatible and the candidate has a
        collision-free rotation against the fixed live rotations;
        ``forbidden_fraction`` is the share of the candidate's own circle
        excluded by its neighbours (0.0 when clean — ranking among clean
        candidates stays order-stable, matching the checker-based path).
        """
        link_names, neighbours, touched = self._locate(
            circle, links, allow_tracked=True
        )
        touched_ok = all(self._live_ok[cid] for cid in touched)
        feasible = self._screen(circle, neighbours)
        clean = touched_ok and not feasible.is_empty
        if clean:
            return True, 0.0
        fraction = 1.0 - feasible.measure / circle.perimeter
        return False, fraction

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require(self, job_id: str) -> None:
        if job_id not in self._circles:
            raise CompatibilityError(f"unknown job {job_id!r}")

    def _bump(self, key: str, amount: int = 1) -> None:
        if amount == 0:
            return
        self._stats[key] += amount
        from ..telemetry import session as _telemetry_session

        telemetry = _telemetry_session.current()
        if telemetry.enabled:
            telemetry.counter(f"incremental.{key}").inc(amount)

    def _locate(
        self,
        circle: JobCircle,
        links: Sequence[str],
        allow_tracked: bool = False,
    ) -> Tuple[Tuple[str, ...], List[str], List[int]]:
        """Normalized links, sorted neighbours, touched component ids."""
        if not allow_tracked and circle.job_id in self._circles:
            raise CompatibilityError(
                f"job {circle.job_id!r} already tracked"
            )
        link_names = tuple(sorted(set(links)))
        neighbour_set: Set[str] = set()
        for link in link_names:
            neighbour_set |= self._jobs_on.get(link, set())
        neighbour_set.discard(circle.job_id)
        neighbours = sorted(neighbour_set)
        touched = sorted({self._cid_of[j] for j in neighbours})
        return link_names, neighbours, touched

    def _evaluate(
        self,
        circle: JobCircle,
        link_names: Tuple[str, ...],
        neighbours: List[str],
        touched: List[int],
    ) -> Tuple[AdmissionVerdict, Optional[ComponentSolution]]:
        """Verdict for one candidate, screening before solving."""
        job_id = circle.job_id
        member_set = set(
            itertools.chain.from_iterable(
                self._members[cid] for cid in touched
            )
        )
        member_set.add(job_id)
        members = tuple(sorted(member_set))
        touched_ok = all(self._live_ok[cid] for cid in touched)
        feasible = self._screen(circle, neighbours)
        if touched_ok and not feasible.is_empty:
            self._bump("screen_admits")
            return (
                AdmissionVerdict(
                    job_id=job_id,
                    compatible=True,
                    method="screen",
                    rotation=feasible.intervals[0][0],
                    overlap_ticks=0,
                    violated_links=(),
                    component=members,
                ),
                None,
            )
        solution = self._solution_for(
            members,
            extra_circles={job_id: circle},
            extra_links={job_id: link_names},
        )
        if solution.found:
            rotation = solution.rotations.get(job_id, 0)
        elif not feasible.is_empty:
            # Best effort on an unsat component: at least avoid the
            # neighbours pointwise so the live overlap does not grow.
            rotation = feasible.intervals[0][0]
        else:
            rotation = solution.rotations.get(job_id, 0)
        return (
            AdmissionVerdict(
                job_id=job_id,
                compatible=solution.found,
                method=solution.method,
                rotation=rotation,
                overlap_ticks=solution.overlap_ticks,
                violated_links=solution.violated_links,
                component=members,
            ),
            solution,
        )

    def _screen(
        self, circle: JobCircle, neighbours: Sequence[str]
    ) -> ArcSet:
        """Exact feasible rotations against fixed neighbour rotations.

        Each neighbour constrains the candidate on the ``gcd`` of their
        perimeters (:func:`exact_pair_feasible_rotations`), shifted by the
        neighbour's live rotation and tiled up to the candidate's own
        perimeter — never the LCM, so screening stays cheap.
        """
        period = circle.perimeter
        feasible = ArcSet(period, [(0, period)])
        for neighbour in neighbours:
            other = self._circles[neighbour]
            pair = exact_pair_feasible_rotations(other, circle)
            shifted = pair.rotate(self._rotations.get(neighbour, 0))
            feasible = feasible.intersection(shifted.tile(period))
            if feasible.is_empty:
                return feasible
        return feasible

    def _split(self, members: Sequence[str]) -> List[Tuple[str, ...]]:
        """Connected components among ``members`` (current link state)."""
        remaining = set(members)
        pieces: List[Tuple[str, ...]] = []
        while remaining:
            seed_job = min(remaining)
            stack = [seed_job]
            component: Set[str] = set()
            while stack:
                job_id = stack.pop()
                if job_id in component:
                    continue
                component.add(job_id)
                for link in self._links_of[job_id]:
                    stack.extend(
                        sorted(self._jobs_on.get(link, set()) - component)
                    )
            pieces.append(tuple(sorted(component)))
            remaining -= component
        return pieces

    def _component_key(
        self,
        members: Tuple[str, ...],
        extra_circles: Mapping[str, JobCircle],
        extra_links: Mapping[str, Tuple[str, ...]],
    ) -> Tuple:
        parts = []
        for job_id in members:
            circle = extra_circles.get(job_id, self._circles.get(job_id))
            links = extra_links.get(job_id, self._links_of.get(job_id))
            assert circle is not None and links is not None
            parts.append(
                (
                    job_id,
                    circle.perimeter,
                    circle.comm.intervals,
                    circle.demand,
                    links,
                )
            )
        return tuple(parts)

    def _solution_for(
        self,
        members: Tuple[str, ...],
        extra_circles: Optional[Mapping[str, JobCircle]] = None,
        extra_links: Optional[Mapping[str, Tuple[str, ...]]] = None,
    ) -> ComponentSolution:
        """Canonical component solution, via the content-keyed cache."""
        extra_circles = extra_circles or {}
        extra_links = extra_links or {}
        key = self._component_key(members, extra_circles, extra_links)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self._bump("component_cache_hits")
            return cached
        circles = [
            extra_circles.get(j, self._circles.get(j)) for j in members
        ]
        links_by_job = {
            j: list(extra_links.get(j, self._links_of.get(j, ())))
            for j in members
        }
        subproblem = ClusterCompatibilityProblem.from_assignments(
            circles, links_by_job
        )
        outcome = subproblem.solve_component(
            list(members), self._seed, self._max_nodes
        )
        if outcome is None:
            rotations: Dict[str, int] = {j: 0 for j in members}
            found = False
            method = "unsat"
        else:
            rotations, method = outcome
            found = True
        links = {
            link for j in members for link in links_by_job[j]
        }
        overlap, violated = subproblem.audit_links(links, rotations)
        solution = ComponentSolution(
            members=members,
            rotations=rotations,
            found=found,
            method=method,
            overlap_ticks=overlap,
            violated_links=tuple(violated),
        )
        self._cache[key] = solution
        if len(self._cache) > self._max_cache_entries:
            self._cache.popitem(last=False)
        self._bump("component_solves")
        return solution
