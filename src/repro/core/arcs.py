"""Exact arc algebra on an integer circle.

An :class:`Arc` is a half-open interval ``[start, start+length)`` on a
circle of integer perimeter ``P``; an :class:`ArcSet` is a canonical union
of arcs (sorted, disjoint, non-adjacent, split at the 0 boundary). All
operations — union, intersection, complement, rotation, tiling, coverage
counting — are exact integer computations, which is what makes the
compatibility solvers sound: when a solver reports zero overlap, the
overlap *is* zero, not merely below a float tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..errors import GeometryError


@dataclass(frozen=True)
class Arc:
    """A half-open arc ``[start, start+length)`` on a circle.

    ``start`` is taken modulo the perimeter by :class:`ArcSet`; ``length``
    must be positive and at most the perimeter (a full-circle arc).
    """

    start: int
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise GeometryError(f"arc length must be > 0, got {self.length}")


class ArcSet:
    """A canonical set of arcs on a circle of integer perimeter."""

    __slots__ = ("_perimeter", "_intervals")

    def __init__(
        self,
        perimeter: int,
        arcs: Iterable[Tuple[int, int]] = (),
    ) -> None:
        """Build from ``(start, length)`` pairs (any order, may overlap).

        Args:
            perimeter: Circle perimeter in ticks (> 0).
            arcs: Iterable of ``(start, length)``; starts are reduced modulo
                the perimeter, lengths clamped to it (a length >= perimeter
                covers the full circle). Zero-length arcs are ignored.
        """
        if perimeter <= 0:
            raise GeometryError(f"perimeter must be > 0, got {perimeter}")
        self._perimeter = int(perimeter)
        linear: List[Tuple[int, int]] = []
        for start, length in arcs:
            if length < 0:
                raise GeometryError(f"arc length must be >= 0, got {length}")
            if length == 0:
                continue
            if length >= self._perimeter:
                linear = [(0, self._perimeter)]
                break
            start = int(start) % self._perimeter
            end = start + int(length)
            if end <= self._perimeter:
                linear.append((start, end))
            else:  # wraps past 0: split
                linear.append((start, self._perimeter))
                linear.append((0, end - self._perimeter))
        self._intervals: Tuple[Tuple[int, int], ...] = tuple(
            _merge(linear)
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def perimeter(self) -> int:
        """Circle perimeter in ticks."""
        return self._perimeter

    @property
    def intervals(self) -> Tuple[Tuple[int, int], ...]:
        """Canonical ``(start, end)`` linear intervals within ``[0, P]``."""
        return self._intervals

    @property
    def measure(self) -> int:
        """Total covered length in ticks."""
        return sum(end - start for start, end in self._intervals)

    @property
    def is_empty(self) -> bool:
        """Whether no point is covered."""
        return not self._intervals

    @property
    def is_full(self) -> bool:
        """Whether the whole circle is covered."""
        return self.measure == self._perimeter

    def contains(self, point: int) -> bool:
        """Whether ``point`` (mod perimeter) lies inside the set."""
        point = point % self._perimeter
        for start, end in self._intervals:
            if start <= point < end:
                return True
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArcSet):
            return NotImplemented
        return (
            self._perimeter == other._perimeter
            and self._intervals == other._intervals
        )

    def __hash__(self) -> int:
        return hash((self._perimeter, self._intervals))

    def __repr__(self) -> str:
        return f"ArcSet(P={self._perimeter}, {list(self._intervals)})"

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------

    def _require_same_circle(self, other: "ArcSet") -> None:
        if self._perimeter != other._perimeter:
            raise GeometryError(
                f"circle mismatch: {self._perimeter} vs {other._perimeter}"
            )

    def union(self, other: "ArcSet") -> "ArcSet":
        """Set union on the same circle."""
        self._require_same_circle(other)
        result = ArcSet.__new__(ArcSet)
        result._perimeter = self._perimeter
        result._intervals = tuple(
            _merge(list(self._intervals) + list(other._intervals))
        )
        return result

    def intersection(self, other: "ArcSet") -> "ArcSet":
        """Set intersection on the same circle."""
        self._require_same_circle(other)
        out: List[Tuple[int, int]] = []
        i = j = 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo < hi:
                out.append((lo, hi))
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        result = ArcSet.__new__(ArcSet)
        result._perimeter = self._perimeter
        result._intervals = tuple(out)
        return result

    def complement(self) -> "ArcSet":
        """All points not covered by this set."""
        out: List[Tuple[int, int]] = []
        cursor = 0
        for start, end in self._intervals:
            if cursor < start:
                out.append((cursor, start))
            cursor = end
        if cursor < self._perimeter:
            out.append((cursor, self._perimeter))
        result = ArcSet.__new__(ArcSet)
        result._perimeter = self._perimeter
        result._intervals = tuple(out)
        return result

    def overlap_length(self, other: "ArcSet") -> int:
        """Length of the intersection, ticks."""
        return self.intersection(other).measure

    def intersects(self, other: "ArcSet") -> bool:
        """Whether any point is covered by both sets (early exit)."""
        self._require_same_circle(other)
        i = j = 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            if max(a[i][0], b[j][0]) < min(a[i][1], b[j][1]):
                return True
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        return False

    # ------------------------------------------------------------------
    # Circle operations
    # ------------------------------------------------------------------

    def rotate(self, delta: int) -> "ArcSet":
        """Rotate every arc by ``delta`` ticks (counterclockwise positive)."""
        if delta % self._perimeter == 0:
            return self
        return ArcSet(
            self._perimeter,
            [
                (start + delta, end - start)
                for start, end in self._intervals
            ],
        )

    def tile(self, new_perimeter: int) -> "ArcSet":
        """Replicate this pattern onto a larger circle.

        ``new_perimeter`` must be a positive multiple of the current
        perimeter; the pattern repeats once per original period — this is
        how a job is placed on the unified (LCM) circle of Figure 5.
        """
        if new_perimeter % self._perimeter != 0 or new_perimeter <= 0:
            raise GeometryError(
                f"{new_perimeter} is not a positive multiple of "
                f"{self._perimeter}"
            )
        repeats = new_perimeter // self._perimeter
        arcs = [
            (start + k * self._perimeter, end - start)
            for k in range(repeats)
            for start, end in self._intervals
        ]
        return ArcSet(new_perimeter, arcs)

    def gaps(self) -> List[Tuple[int, int]]:
        """Circular gaps as ``(start, length)``, joining across 0.

        Unlike :meth:`complement`, the gap that spans the 0 boundary is
        reported as one circular gap — what a placement heuristic needs.
        """
        comp = self.complement()
        if comp.is_empty:
            return []
        if comp.is_full:
            return [(0, self._perimeter)]
        pieces = list(comp.intervals)
        starts_at_zero = pieces[0][0] == 0
        ends_at_perimeter = pieces[-1][1] == self._perimeter
        gaps = [(start, end - start) for start, end in pieces]
        if starts_at_zero and ends_at_perimeter and len(pieces) > 1:
            first = gaps.pop(0)
            last_start, last_length = gaps.pop()
            gaps.append((last_start, last_length + first[1]))
        return gaps

    # ------------------------------------------------------------------
    # Multi-set coverage
    # ------------------------------------------------------------------

    @staticmethod
    def coverage(arcsets: Sequence["ArcSet"]) -> List[Tuple[int, int, int]]:
        """Sweep the circle and count covering sets per segment.

        Returns:
            ``(start, end, count)`` segments partitioning ``[0, P)``; only
            segments with positive length are reported.

        Raises:
            GeometryError: if the sets live on different circles or the
                input is empty.
        """
        if not arcsets:
            raise GeometryError("coverage of an empty collection")
        perimeter = arcsets[0].perimeter
        events: List[Tuple[int, int]] = []
        for arcset in arcsets:
            if arcset.perimeter != perimeter:
                raise GeometryError("coverage requires a common perimeter")
            for start, end in arcset.intervals:
                events.append((start, 1))
                events.append((end, -1))
        events.sort()
        segments: List[Tuple[int, int, int]] = []
        count = 0
        cursor = 0
        index = 0
        while index < len(events):
            position = events[index][0]
            if position > cursor:
                segments.append((cursor, position, count))
                cursor = position
            while index < len(events) and events[index][0] == position:
                count += events[index][1]
                index += 1
        if cursor < perimeter:
            segments.append((cursor, perimeter, count))
        return segments

    @staticmethod
    def max_coverage(arcsets: Sequence["ArcSet"]) -> int:
        """Maximum number of sets covering any single point."""
        return max(
            (count for _, _, count in ArcSet.coverage(arcsets)), default=0
        )


def _merge(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Sort and merge overlapping or adjacent linear intervals."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged
