"""The shared job-lifecycle state machine behind every fidelity tier.

The paper's central object is a training job's periodic on-off cycle:
compute (no traffic), an optional gated wait, then a communication burst,
repeated once per iteration (§2, Fig. 1–2). This module implements that
cycle exactly once. :class:`JobLifecycle` owns the state transitions

    IDLE → COMPUTE → (WAITING, when gated) → COMM
         → next segment's COMPUTE/COMM … → iteration close → COMPUTE …

and writes every completed iteration into one canonical
:class:`~repro.core.timeline.JobTimeline`. The drivers differ only in
*when* they advance the machine:

* Event-driven tiers (:class:`repro.net.phasesim.PhaseLevelSimulator`,
  the runner's ``engine`` backend) call the transition methods from
  scheduled events; methods return the next phase's duration or byte
  budget so the caller can schedule the follow-up event.
* Fixed-step fluid tiers (:class:`repro.cc.dcqcn.DcqcnFluidSimulator`,
  :class:`repro.cc.aimd.AimdFluidSimulator`) wrap the machine in
  :class:`OnOffSource`, which polls it every ``dt`` and spawns a fresh
  congestion-control sender per communication burst.

New congestion-control mechanisms or fidelity tiers therefore plug in at
a single point: drive a :class:`JobLifecycle` (or hand
:class:`OnOffSource` a sender factory) and the timeline schema, gate
semantics and warm-up ``skip`` behaviour come along for free.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError, SimulationError, WorkloadError
from .timeline import IterationSample, JobTimeline

#: A gate delays the start of a communication phase: called with
#: ``(job_id, now)`` it returns the earliest permitted start time (>= now).
Gate = Callable[[str, float], float]

#: Slack tolerated when a gate releases marginally in the past (float
#: noise from period arithmetic), seconds.
_GATE_SLACK = 1e-12


class JobState(enum.Enum):
    """Lifecycle of a job within one iteration."""

    IDLE = "idle"
    COMPUTE = "compute"
    WAITING = "waiting"  # compute done, gated before communication
    COMM = "comm"
    DONE = "done"


class JobLifecycle:
    """One job's on-off state machine writing one canonical timeline.

    Args:
        job_id: The job's identifier (also the timeline's).
        segments: The iteration's ``(compute seconds, comm bytes)``
            sub-phases; one pair for the classic on-off job.
        n_iterations: Iterations to run before the job stops; ``None``
            runs for as long as the driver keeps stepping (the fluid
            tiers' long-lived jobs).
        start_offset: Simulation time of the first compute phase.
        gate: Optional flow-scheduling admission gate (§4, direction iii).
        rng: Random generator for compute jitter (required when
            ``compute_jitter > 0``).
        compute_jitter: Std-dev of per-iteration compute noise as a
            fraction of the segment compute time.
        warp: Optional fault-injection hook ``warp(now, duration)``
            applied to every compute phase's duration (see
            :class:`repro.faults.JobWarp`). Must be deterministic.
    """

    def __init__(
        self,
        job_id: str,
        segments: Sequence[Tuple[float, float]],
        n_iterations: Optional[int] = None,
        start_offset: float = 0.0,
        gate: Optional[Gate] = None,
        rng: Optional[np.random.Generator] = None,
        compute_jitter: float = 0.0,
        warp: Optional[Callable[[float, float], float]] = None,
    ) -> None:
        segments = tuple(segments)
        if not segments:
            raise ConfigError(f"{job_id}: a job needs at least one segment")
        for compute_s, bytes_ in segments:
            if compute_s < 0 or bytes_ <= 0:
                raise ConfigError(
                    f"{job_id}: need compute_time >= 0 and comm_bytes > 0"
                )
        if n_iterations is not None and n_iterations < 1:
            raise WorkloadError("n_iterations must be >= 1")
        if start_offset < 0:
            raise ConfigError("start_offset must be >= 0")
        if compute_jitter > 0 and rng is None:
            raise ConfigError(
                f"{job_id}: compute_jitter needs a random generator"
            )
        self.job_id = job_id
        self.n_iterations = n_iterations
        self.start_offset = start_offset
        self.gate = gate
        self.warp = warp
        self.compute_jitter = compute_jitter
        self.state = JobState.IDLE
        self.timeline = JobTimeline(job_id)
        self.iteration_start = 0.0
        self.comm_start = 0.0
        self.comm_sent = 0.0
        self.segment_index = 0
        self.compute_factor = 1.0
        #: Byte budget of the current segment — kept as a plain attribute
        #: (updated on segment changes) because the event-driven tiers
        #: read it in their innermost reallocation loops.
        self.comm_budget = segments[0][1]
        self._segments = segments
        self._rng = rng

    @classmethod
    def for_spec(
        cls,
        spec,
        n_iterations: Optional[int] = None,
        start_offset: float = 0.0,
        gate: Optional[Gate] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "JobLifecycle":
        """Build the machine from a :class:`repro.workloads.job.JobSpec`."""
        return cls(
            job_id=spec.job_id,
            segments=spec.effective_segments(),
            n_iterations=n_iterations,
            start_offset=start_offset,
            gate=gate,
            rng=rng,
            compute_jitter=spec.compute_jitter,
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether all requested iterations completed."""
        return self.state is JobState.DONE

    @property
    def iterations_done(self) -> int:
        """Completed iterations (the timeline's length)."""
        return len(self.timeline)

    @property
    def n_segments(self) -> int:
        """Sub-phases per iteration (1 for the classic on-off job)."""
        return len(self._segments)

    @property
    def has_more_segments(self) -> bool:
        """Whether the current iteration has sub-phases left."""
        return self.segment_index + 1 < len(self._segments)

    def segment_compute_time(self) -> float:
        """Jittered compute time of the current segment."""
        return self._segments[self.segment_index][0] * self.compute_factor

    def segment_comm_bytes(self) -> float:
        """Communication bytes of the current segment."""
        return self.comm_budget

    @property
    def remaining_bytes(self) -> float:
        """Bytes of the current segment not yet credited as sent."""
        return self.comm_budget - self.comm_sent

    def sample_compute_factor(self) -> float:
        """Per-iteration multiplicative compute jitter (1.0 when none)."""
        if self.compute_jitter <= 0:
            return 1.0
        noise = self._rng.normal(0.0, self.compute_jitter)
        return max(1.0 + noise, 0.0)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def phase_duration(self, now: float) -> float:
        """The current compute phase's duration, warp applied."""
        duration = self.segment_compute_time()
        if self.warp is not None:
            duration = self.warp(now, duration)
        return duration

    def begin_iteration(self, now: float) -> float:
        """Enter COMPUTE for a fresh iteration; returns its compute time."""
        if self.done:
            raise SimulationError(
                f"job {self.job_id} already completed its iterations"
            )
        self.state = JobState.COMPUTE
        self.iteration_start = now
        self.segment_index = 0
        self.comm_budget = self._segments[0][1]
        self.compute_factor = self.sample_compute_factor()
        return self.phase_duration(now)

    def release_time(self, now: float) -> float:
        """The gate's earliest permitted communication start.

        Returns ``now`` for ungated jobs. Raises when the gate answers
        with a time in the past — gates may only delay.
        """
        if self.gate is None:
            return now
        allowed = self.gate(self.job_id, now)
        if allowed < now - _GATE_SLACK:
            raise SimulationError(
                f"gate for {self.job_id} returned a past time"
            )
        return allowed

    def enter_waiting(self) -> None:
        """Compute finished but the gate holds the burst back."""
        self.state = JobState.WAITING

    def begin_comm(self, now: float) -> float:
        """Enter COMM for the current segment; returns its byte budget."""
        self.state = JobState.COMM
        if self.segment_index == 0:
            self.comm_start = now
        self.comm_sent = 0.0
        return self.comm_budget

    def credit(self, sent_bytes: float) -> None:
        """Credit bytes transferred toward the current segment."""
        self.comm_sent += sent_bytes

    def advance_segment(self, now: float) -> float:
        """Move to the next sub-phase's COMPUTE; returns its duration."""
        if not self.has_more_segments:
            raise SimulationError(
                f"job {self.job_id} has no further segments this iteration"
            )
        self.segment_index += 1
        self.comm_budget = self._segments[self.segment_index][1]
        self.state = JobState.COMPUTE
        return self.phase_duration(now)

    def close_iteration(self, now: float) -> IterationSample:
        """Record the finished iteration; DONE when the budget is spent."""
        timeline = self.timeline
        sample = IterationSample(
            index=len(timeline),
            start=self.iteration_start,
            comm_start=self.comm_start,
            end=now,
        )
        timeline.record(sample)
        if (
            self.n_iterations is not None
            and len(timeline) >= self.n_iterations
        ):
            self.state = JobState.DONE
        else:
            self.state = JobState.IDLE
        return sample


class OnOffSource:
    """Adapts :class:`JobLifecycle` to fixed-step fluid simulators.

    The fluid tiers poll traffic sources every ``dt``. This adapter owns
    the lifecycle's clockwork — compute deadlines, per-burst sender
    creation, iteration close — and delegates the actual rate dynamics
    to a congestion-control sender built by ``sender_factory`` at the
    start of every communication burst (RDMA flows start fresh at line
    rate, which is exactly how the paper's testbed behaves).

    ``sender_factory(data_bytes)`` must return an object with the fluid
    sender protocol: ``rate``, ``done`` and
    ``step(now, dt, marking_probability) -> bytes``.
    """

    def __init__(
        self,
        name: str,
        lifecycle: JobLifecycle,
        sender_factory: Callable[[float], object],
    ) -> None:
        self.name = name
        self.lifecycle = lifecycle
        self._sender_factory = sender_factory
        self._sender: Optional[object] = None
        self._deadline = lifecycle.start_offset + lifecycle.begin_iteration(
            lifecycle.start_offset
        )

    def install_warp(self, warp: Callable[[float, float], float]) -> None:
        """Install a fault warp on a source that has not started yet.

        The first compute deadline is fixed at construction, so a warp
        attached afterwards must be applied to it retroactively — the
        compute factor was already sampled, so no random draws repeat.
        """
        lifecycle = self.lifecycle
        if (
            self._sender is not None
            or len(lifecycle.timeline)
            or lifecycle.segment_index
        ):
            raise SimulationError(
                f"{self.name}: cannot install a fault warp mid-run"
            )
        lifecycle.warp = warp
        self._deadline = lifecycle.start_offset + lifecycle.phase_duration(
            lifecycle.start_offset
        )

    @property
    def timeline(self) -> JobTimeline:
        """The job's canonical iteration record."""
        return self.lifecycle.timeline

    @property
    def done(self) -> bool:
        """Whether a bounded job finished (unbounded jobs never do)."""
        return self.lifecycle.done

    @property
    def rate(self) -> float:
        """Instantaneous sending rate (0 while computing)."""
        if self._sender is None or self._sender.done:
            return 0.0
        return self._sender.rate

    def iteration_times(self, skip: int = 0) -> np.ndarray:
        """Durations of completed iterations, seconds."""
        return self.timeline.iteration_times(skip)

    def step(self, now: float, dt: float, marking_probability: float) -> float:
        """Advance one step; returns bytes injected."""
        lifecycle = self.lifecycle
        if lifecycle.done:
            return 0.0
        if self._sender is None:
            if now + dt < self._deadline:
                return 0.0
            # Communication burst begins: fresh CC state per phase.
            budget = lifecycle.begin_comm(now)
            self._sender = self._sender_factory(budget)
        sent = self._sender.step(now, dt, marking_probability)
        lifecycle.credit(sent)
        if self._sender.done:
            end = now + dt
            self._sender = None
            if lifecycle.has_more_segments:
                self._deadline = end + lifecycle.advance_segment(end)
            else:
                lifecycle.close_iteration(end)
                if not lifecycle.done:
                    self._deadline = end + lifecycle.begin_iteration(end)
        return sent
