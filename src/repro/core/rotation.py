"""Rotation-angle conversions and communication schedules.

The paper's flow-scheduling direction (§4, iii) observes that a rotation
angle "corresponds to a time-shift for the communication phase of a job":
the scheduler can release each job's flows at precise times so the phases
never collide. This module converts solver rotations into degrees (as in
Figure 5d's "30° counterclockwise") and into the per-job communication
windows a gate enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..errors import GeometryError
from .circle import JobCircle
from .unified import UnifiedCircle


def rotation_to_seconds(ticks: int, ticks_per_second: float) -> float:
    """Convert a rotation in ticks to a time shift in seconds."""
    if ticks_per_second <= 0:
        raise GeometryError("ticks_per_second must be > 0")
    return ticks / ticks_per_second


def rotation_to_degrees(ticks: int, perimeter: int) -> float:
    """Rotation angle in degrees on a circle of ``perimeter`` ticks.

    Figure 5d expresses J1's 10 ms shift on the 120 ms unified circle as a
    30° counterclockwise rotation: ``360 * 10 / 120 = 30``.
    """
    if perimeter <= 0:
        raise GeometryError("perimeter must be > 0")
    return 360.0 * (ticks % perimeter) / perimeter


def degrees_to_rotation(degrees: float, perimeter: int) -> int:
    """Inverse of :func:`rotation_to_degrees` (nearest tick)."""
    if perimeter <= 0:
        raise GeometryError("perimeter must be > 0")
    return round(degrees / 360.0 * perimeter) % perimeter


@dataclass(frozen=True)
class CommWindow:
    """One job's permitted communication window on the unified period.

    ``start`` and ``length`` are in ticks on the unified circle; the
    window repeats every ``period`` ticks (the unified perimeter).
    """

    job_id: str
    start: int
    length: int
    period: int


def communication_schedule(
    circles: Sequence[JobCircle],
    rotations: Mapping[str, int],
) -> Dict[str, List[CommWindow]]:
    """Turn solver rotations into per-job communication windows.

    Each window is one rotated communication arc on the unified circle;
    for compatible rotations the windows of different jobs are disjoint —
    a ready-made TDMA-style schedule for the central flow scheduler.
    """
    unified = UnifiedCircle(circles)
    tiled = unified.tiled(dict(rotations))
    schedule: Dict[str, List[CommWindow]] = {}
    for circle in circles:
        arcs = tiled[circle.job_id]
        schedule[circle.job_id] = [
            CommWindow(
                job_id=circle.job_id,
                start=start,
                length=end - start,
                period=unified.perimeter,
            )
            for start, end in arcs.intervals
        ]
    return schedule
