"""The canonical job timeline: one schema for every fidelity tier.

Every simulator in the library — the exact phase-level model, the
microsecond DCQCN fluid machine, the AIMD baseline, the cheap engine
backend and the cluster simulation — produces the same observable: a
sequence of completed training iterations, each with a start, a
communication start and an end. This module is that observable's single
home. :class:`IterationSample` is one completed iteration;
:class:`JobTimeline` is a job's ordered sample list with the uniform
``iteration_times(skip=...)`` / mean / median accessors every experiment
and analysis helper consumes.

Because all tiers emit the same record, cross-fidelity comparison is a
structural diff of identical objects, and warm-up ``skip`` semantics are
defined exactly once: asking for a mean or median when ``skip`` consumes
every completed iteration raises :class:`~repro.errors.SimulationError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..errors import SimulationError


@dataclass(frozen=True)
class IterationSample:
    """Timing of one completed training iteration.

    Attributes:
        index: Zero-based iteration number within the job.
        start: Simulation time the iteration's first compute phase began.
        comm_start: Simulation time its first communication burst began.
        end: Simulation time the last communication burst finished.
    """

    index: int
    start: float
    comm_start: float
    end: float

    @property
    def duration(self) -> float:
        """Iteration time, seconds."""
        return self.end - self.start

    @property
    def comm_duration(self) -> float:
        """Communication-phase duration (including queueing), seconds."""
        return self.end - self.comm_start

    @property
    def compute_duration(self) -> float:
        """Time before the first communication burst, seconds."""
        return self.comm_start - self.start

    def to_row(self) -> List[float]:
        """Compact ``[index, start, comm_start, end]`` row (for codecs)."""
        return [self.index, self.start, self.comm_start, self.end]

    @classmethod
    def from_row(cls, row: Sequence[float]) -> "IterationSample":
        """Inverse of :meth:`to_row`."""
        index, start, comm_start, end = row
        return cls(
            index=int(index),
            start=float(start),
            comm_start=float(comm_start),
            end=float(end),
        )


class JobTimeline:
    """One job's completed iterations, in order.

    The append-only record every lifecycle implementation writes into
    (via :class:`repro.core.lifecycle.JobLifecycle`) and every consumer
    reads from. Samples are contiguous: sample ``i`` has ``index == i``.
    """

    def __init__(
        self,
        job_id: str,
        samples: Optional[Sequence[IterationSample]] = None,
    ) -> None:
        self.job_id = job_id
        self._samples: List[IterationSample] = []
        for sample in samples or ():
            self.record(sample)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, sample: IterationSample) -> None:
        """Append one completed iteration; indexes must be contiguous."""
        if sample.index != len(self._samples):
            raise SimulationError(
                f"job {self.job_id}: iteration sample {sample.index} "
                f"appended out of order (expected {len(self._samples)})"
            )
        self._samples.append(sample)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def samples(self) -> List[IterationSample]:
        """The completed iterations, oldest first."""
        return self._samples

    @property
    def iterations(self) -> int:
        """Number of completed iterations."""
        return len(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[IterationSample]:
        return iter(self._samples)

    @property
    def iteration_starts(self) -> np.ndarray:
        """Start times of completed iterations, seconds."""
        return np.asarray([s.start for s in self._samples], dtype=float)

    @property
    def iteration_ends(self) -> np.ndarray:
        """End times of completed iterations, seconds."""
        return np.asarray([s.end for s in self._samples], dtype=float)

    def _sliced(self, values: List[float], skip: int) -> np.ndarray:
        if skip < 0:
            raise SimulationError(
                f"job {self.job_id}: skip must be >= 0, got {skip}"
            )
        return np.asarray(values[skip:], dtype=float)

    def iteration_times(self, skip: int = 0) -> np.ndarray:
        """Durations of completed iterations, seconds.

        ``skip`` drops that many warm-up iterations from the front.
        """
        return self._sliced([s.duration for s in self._samples], skip)

    def comm_times(self, skip: int = 0) -> np.ndarray:
        """Communication-phase durations, seconds."""
        return self._sliced([s.comm_duration for s in self._samples], skip)

    def compute_times(self, skip: int = 0) -> np.ndarray:
        """Pre-communication compute durations, seconds."""
        return self._sliced(
            [s.compute_duration for s in self._samples], skip
        )

    # ------------------------------------------------------------------
    # Statistics (warm-up skip semantics defined once, for every tier)
    # ------------------------------------------------------------------

    def _times_after_skip(self, skip: int) -> np.ndarray:
        times = self.iteration_times(skip)
        if times.size == 0:
            raise SimulationError(
                f"job {self.job_id} has no iterations after skip"
            )
        return times

    def mean_iteration_time(self, skip: int = 0) -> float:
        """Mean iteration time, optionally skipping warm-up iterations.

        Raises:
            SimulationError: when ``skip`` consumes every completed
                iteration (the warm-up window exceeded the run).
        """
        return float(self._times_after_skip(skip).mean())

    def median_iteration_time(self, skip: int = 0) -> float:
        """Median iteration time, optionally skipping warm-up iterations.

        Raises:
            SimulationError: when ``skip`` consumes every completed
                iteration.
        """
        return float(np.median(self._times_after_skip(skip)))

    # ------------------------------------------------------------------
    # Codec support (the dict shape lives in :mod:`repro.io`)
    # ------------------------------------------------------------------

    def to_rows(self) -> List[List[float]]:
        """All samples as compact rows."""
        return [sample.to_row() for sample in self._samples]

    @classmethod
    def from_rows(
        cls, job_id: str, rows: Sequence[Sequence[float]]
    ) -> "JobTimeline":
        """Rebuild a timeline from :meth:`to_rows` output."""
        return cls(
            job_id, [IterationSample.from_row(row) for row in rows]
        )

    def __repr__(self) -> str:
        return (
            f"JobTimeline(job_id={self.job_id!r}, "
            f"iterations={self.iterations})"
        )
