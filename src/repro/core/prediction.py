"""Analytic steady-state iteration-time predictions.

Closed-form bounds and estimates that cross-check the simulator:

* **solo** — ``compute + bytes/capacity``: no schedule can beat it.
* **link-saturation bound** — when jobs share a link, over any unified
  period the link must carry every job's bytes, so a job's steady period
  is at least the total communication time of its link (when total
  demand exceeds the period, the period stretches to fit).
* **fair-lockstep estimate** — identical jobs starting together under
  fair sharing stay overlapped forever at ``compute + n * comm_solo``
  (the Figure 2a pathology).

The integration test suite asserts the simulator respects the bounds and
matches the estimates in their regimes of validity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..errors import WorkloadError

if TYPE_CHECKING:  # annotation-only; `core` must not load `workloads`
    from ..workloads.job import JobSpec


def solo_iteration_time(spec: JobSpec, capacity: float) -> float:
    """Dedicated-network iteration time (the paper's target), seconds."""
    return spec.solo_iteration_time(capacity)


def steady_period_lower_bound(
    spec: JobSpec,
    sharers: Sequence[JobSpec],
    capacity: float,
) -> float:
    """Smallest steady-state period ``spec`` can sustain on a shared link.

    Args:
        spec: The job of interest.
        sharers: Every job sharing the link, **including** ``spec``.
        capacity: Link capacity, bytes/s.

    The link must move all sharers' bytes once per their (common) period;
    with equal periods the feasible period is at least the total
    communication time, and never below the job's own solo time.
    """
    if spec.job_id not in {s.job_id for s in sharers}:
        raise WorkloadError("sharers must include the job itself")
    total_comm = sum(s.solo_comm_time(capacity) for s in sharers)
    return max(spec.solo_iteration_time(capacity), total_comm)


def fair_lockstep_iteration_time(
    specs: Sequence[JobSpec],
    capacity: float,
) -> float:
    """Iteration time of identical jobs locked together under fair
    sharing: ``compute + n * comm_solo`` (Figure 2a).

    Raises:
        WorkloadError: if the specs are not mutually identical in their
            phase profile (the lockstep argument needs symmetry).
    """
    if not specs:
        raise WorkloadError("no specs given")
    first = specs[0]
    for spec in specs[1:]:
        same = (
            abs(spec.compute_time - first.compute_time) < 1e-12
            and abs(spec.comm_bytes - first.comm_bytes) < 1e-3
        )
        if not same:
            raise WorkloadError(
                "fair-lockstep estimate needs identical phase profiles"
            )
    return first.compute_time + len(specs) * first.solo_comm_time(capacity)


def unfairness_speedup_estimate(
    specs: Sequence[JobSpec],
    capacity: float,
) -> float:
    """Predicted fair-over-unfair speedup for identical compatible jobs.

    Fair lockstep runs at ``C + n*T``; perfect interleaving runs at
    ``max(solo, n*T)``. Their ratio is the best unfairness can deliver —
    e.g. the DLRM pair: ``(701 + 600) / max(1001, 600) = 1.30``, which is
    exactly the paper's Table 1 group 2 speedup.
    """
    fair = fair_lockstep_iteration_time(specs, capacity)
    first = specs[0]
    interleaved = max(
        first.solo_iteration_time(capacity),
        len(specs) * first.solo_comm_time(capacity),
    )
    return fair / interleaved
