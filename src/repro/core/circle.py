"""The per-job circle (Figure 3).

A :class:`JobCircle` rolls one job's iteration around a circle: the
perimeter is the iteration time in ticks, the communication phase is the
colored arc, and the compute phase is the uncolored remainder. Because the
on-off pattern of DNN training is periodic, every iteration's phases land
on the same arcs — which is exactly why the abstraction works.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Tuple

from ..errors import GeometryError
from ..units import TICKS_PER_SECOND, seconds_to_ticks
from .arcs import ArcSet

if TYPE_CHECKING:  # annotation-only; `core` must not load `workloads`
    from ..workloads.job import JobSpec

#: Default quantization for circles built from wall-clock profiles: one
#: tick per microsecond keeps LCMs exact while staying far below the
#: measurement noise of real profiling.
DEFAULT_TICKS_PER_SECOND = TICKS_PER_SECOND


@dataclass(frozen=True)
class JobCircle:
    """One job rolled around its iteration circle.

    Attributes:
        job_id: The job this circle describes.
        comm: Arc set of the communication phase(s).
        demand: Fraction of the link the job needs while communicating, in
            (0, 1]. The paper's formulation uses 1 (a communicating job
            wants the whole link); fractional demands generalize the
            abstraction to bandwidth-limited jobs.
    """

    job_id: str
    comm: ArcSet
    demand: float = 1.0

    def __post_init__(self) -> None:
        if not self.job_id:
            raise GeometryError("job_id must be non-empty")
        if not 0.0 < self.demand <= 1.0:
            raise GeometryError(f"demand must be in (0, 1], got {self.demand}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_phases(
        cls,
        job_id: str,
        compute_ticks: int,
        comm_ticks: int,
        demand: float = 1.0,
    ) -> "JobCircle":
        """Build the canonical one-arc circle: compute ``[0, C)``, then
        communication ``[C, C+M)``; perimeter ``C + M``."""
        if compute_ticks < 0:
            raise GeometryError("compute_ticks must be >= 0")
        if comm_ticks <= 0:
            raise GeometryError("comm_ticks must be > 0")
        perimeter = compute_ticks + comm_ticks
        return cls(
            job_id=job_id,
            comm=ArcSet(perimeter, [(compute_ticks, comm_ticks)]),
            demand=demand,
        )

    @classmethod
    def from_arcs(
        cls,
        job_id: str,
        perimeter: int,
        comm_arcs: Iterable[Tuple[int, int]],
        demand: float = 1.0,
    ) -> "JobCircle":
        """Build a circle with arbitrary communication arcs (e.g. a job
        with several bursts per iteration, as with layer-wise allreduce)."""
        comm = ArcSet(perimeter, comm_arcs)
        if comm.is_empty:
            raise GeometryError(f"{job_id}: needs at least one comm arc")
        return cls(job_id=job_id, comm=comm, demand=demand)

    @classmethod
    def from_job(
        cls,
        spec: JobSpec,
        capacity: float,
        ticks_per_second: int = DEFAULT_TICKS_PER_SECOND,
        demand: float = 1.0,
    ) -> "JobCircle":
        """Quantize a :class:`JobSpec` profiled at ``capacity``.

        The communication arc length is the solo communication time — the
        duration the phase takes with the whole link, matching the paper's
        profiling of jobs "in isolation in a dedicated cluster". Jobs
        with fine-grained sub-phases (layer-wise allreduce) produce one
        arc per communication burst.
        """
        if ticks_per_second <= 0:
            raise GeometryError("ticks_per_second must be > 0")
        scale = ticks_per_second / TICKS_PER_SECOND

        def to_ticks(time_s: float) -> int:
            return round(seconds_to_ticks(time_s) * scale)

        segments = spec.effective_segments()
        if len(segments) == 1:
            compute_ticks = to_ticks(spec.compute_time)
            comm_ticks = to_ticks(spec.solo_comm_time(capacity))
            if comm_ticks == 0:
                raise GeometryError(
                    f"{spec.job_id}: communication phase vanishes at this "
                    f"quantization; increase ticks_per_second"
                )
            return cls.from_phases(spec.job_id, compute_ticks, comm_ticks)

        arcs = []
        cursor = 0
        for compute_s, comm_bytes in segments:
            cursor += to_ticks(compute_s)
            comm_ticks = to_ticks(comm_bytes / capacity)
            if comm_ticks == 0:
                raise GeometryError(
                    f"{spec.job_id}: a communication burst vanishes at "
                    f"this quantization; increase ticks_per_second"
                )
            arcs.append((cursor, comm_ticks))
            cursor += comm_ticks
        return cls.from_arcs(spec.job_id, cursor, arcs, demand=demand)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def perimeter(self) -> int:
        """Iteration time in ticks."""
        return self.comm.perimeter

    @property
    def comm_ticks(self) -> int:
        """Total communication length per iteration, ticks."""
        return self.comm.measure

    @property
    def comm_fraction(self) -> float:
        """Fraction of the iteration spent communicating."""
        return self.comm_ticks / self.perimeter

    def rotate(self, delta: int) -> "JobCircle":
        """The same job with its phases slid by ``delta`` ticks."""
        return JobCircle(
            job_id=self.job_id,
            comm=self.comm.rotate(delta),
            demand=self.demand,
        )

    def tiled_comm(self, unified_perimeter: int) -> ArcSet:
        """This job's communication arcs on the unified circle."""
        return self.comm.tile(unified_perimeter)
