"""Rotation solvers — the paper's optimization formulation.

The paper searches for per-job rotation angles such that *no region of the
unified circle has more than one job communicating* (§3, footnote 1: the
circle is discretized into sectors with a coverage cap per sector). This
module implements that search exactly on the integer-tick circle, plus
approximate solvers for large instances:

* :func:`feasible_rotations` — given arcs already placed on the unified
  circle, the **exact** set of rotations of the next job that avoid all
  collisions, computed by interval arithmetic (no sampling).
* :func:`exact_pair_feasible_rotations` — for two jobs, the feasible set of
  *relative* rotations reduced modulo ``gcd(P1, P2)``: because both tiled
  patterns are periodic, collisions only depend on the relative shift
  modulo the gcd of the periods. This makes pairwise checks O(arcs²) even
  when the LCM is astronomically large (e.g. Table 1 group 3).
* :func:`backtracking_search` — depth-first search placing one job at a
  time, choosing rotations from the exact feasible set (boundary
  candidates by default, every feasible tick in ``complete`` mode).
* :func:`greedy_search` / :func:`annealing_search` /
  :func:`exhaustive_search` — heuristics and a brute-force grid for
  comparison and for the coverage-capacity > 1 generalization.
* :func:`solve` — the facade with the escalation policy used by
  :class:`repro.core.compatibility.CompatibilityChecker`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CompatibilityError, GeometryError
from .arcs import ArcSet
from .circle import JobCircle
from .unified import UnifiedCircle

#: Bail out of exact DFS when the placed union grows beyond this many
#: intervals (keeps worst-case cost bounded; solve() then falls back).
MAX_PLACED_INTERVALS = 20_000

#: In ``complete`` candidate mode, refuse to enumerate feasible sets larger
#: than this many ticks per level.
MAX_COMPLETE_CANDIDATES = 200_000

#: ``solve(method="auto")`` only escalates to the complete (proof-grade)
#: DFS when the unified perimeter is at most this many ticks.
COMPLETE_SEARCH_MAX_PERIMETER = 5_000

#: Above this many tiled arcs, even heuristic search (and exact overlap
#: reporting) is skipped — the caller should profile at a coarser tick
#: granularity, which is precisely the paper's sector discretization.
MAX_TILED_ARCS_FOR_SEARCH = 250_000


def _tiled_arc_estimate(circles: Sequence[JobCircle], perimeter: int) -> int:
    """Number of arcs all jobs produce when tiled on the unified circle."""
    return sum(
        len(circle.comm.intervals) * (perimeter // circle.perimeter)
        for circle in circles
    )


def _overlap_or_bound(
    unified: UnifiedCircle,
    rotations: Dict[str, int],
    capacity: int,
) -> int:
    """Exact overlap when tiling is affordable, else an analytic bound.

    The bound is the utilization excess ``total_comm - capacity * P``
    (never negative), which every rotation assignment must exceed.
    """
    estimate = _tiled_arc_estimate(unified.circles, unified.perimeter)
    if estimate <= MAX_TILED_ARCS_FOR_SEARCH:
        return unified.overlap_ticks(rotations, capacity=capacity)
    return max(
        0, unified.total_comm_ticks() - capacity * unified.perimeter
    )


@dataclass
class SolverOutcome:
    """Raw result of one solver invocation.

    Attributes:
        found: A zero-overlap rotation assignment was found.
        rotations: Per-job rotation in ticks (modulo each job's perimeter).
            Always populated with the best assignment seen.
        overlap: Overlap ticks of ``rotations`` (0 when ``found``).
        complete: The solver exhausted its search space, so a negative
            answer is a proof of infeasibility.
        method: Which solver produced this outcome.
        nodes: Search nodes / evaluations used (diagnostics).
    """

    found: bool
    rotations: Dict[str, int] = field(default_factory=dict)
    overlap: int = 0
    complete: bool = False
    method: str = ""
    nodes: int = 0


# ---------------------------------------------------------------------------
# Exact feasible-set computation
# ---------------------------------------------------------------------------

def feasible_rotations(
    placed: ArcSet,
    circle: JobCircle,
    unified: int,
) -> ArcSet:
    """Exact rotations of ``circle`` avoiding all placed arcs.

    ``placed`` lives on the unified circle of perimeter ``unified``; the
    job's rotation is periodic in its own perimeter ``P``, so the result is
    an :class:`ArcSet` on a circle of perimeter ``P`` whose covered points
    are the *feasible* rotations.

    For every placed interval ``[a1, a2)`` and every base communication
    arc ``[b1, b2)`` of the job, a rotation ``d`` collides iff some tile
    ``b + d + i*P`` intersects ``[a1, a2)``; since ``i*P mod unified``
    ranges over all multiples of ``P``, this happens exactly when
    ``d mod P`` lies in an interval of length ``lenA + lenB - 1`` starting
    at ``a1 - b1 - lenB + 1``.
    """
    period = circle.perimeter
    if unified % period != 0:
        raise GeometryError(
            f"unified perimeter {unified} not a multiple of {period}"
        )
    if placed.perimeter != unified:
        raise GeometryError("placed arcs must live on the unified circle")
    forbidden: List[Tuple[int, int]] = []
    for a1, a2 in placed.intervals:
        len_a = a2 - a1
        for b1, b2 in circle.comm.intervals:
            len_b = b2 - b1
            start = (a1 - b1 - len_b + 1) % period
            forbidden.append((start, len_a + len_b - 1))
    return ArcSet(period, forbidden).complement()


def exact_pair_feasible_rotations(
    first: JobCircle,
    second: JobCircle,
) -> ArcSet:
    """Feasible relative rotations of ``second`` against ``first``.

    Returned on a circle of perimeter ``g = gcd(P1, P2)``: both tiled
    patterns are periodic, so whether a relative shift collides depends
    only on the shift modulo ``g``. Any rotation ``d`` with ``d mod g``
    in the returned set is collision-free on the full unified circle.

    This is what makes pairwise compatibility checks cheap even when the
    two iteration times are nearly coprime and the LCM is enormous.
    """
    g = math.gcd(first.perimeter, second.perimeter)
    forbidden: List[Tuple[int, int]] = []
    for a1, a2 in first.comm.intervals:
        len_a = a2 - a1
        for b1, b2 in second.comm.intervals:
            len_b = b2 - b1
            start = (a1 - b1 - len_b + 1) % g
            forbidden.append((start, len_a + len_b - 1))
    return ArcSet(g, forbidden).complement()


def pair_compatible(first: JobCircle, second: JobCircle) -> Optional[int]:
    """A collision-free rotation for ``second`` (``first`` fixed), or None."""
    feasible = exact_pair_feasible_rotations(first, second)
    if feasible.is_empty:
        return None
    return feasible.intervals[0][0]


# ---------------------------------------------------------------------------
# Depth-first search over exact feasible sets
# ---------------------------------------------------------------------------

def backtracking_search(
    circles: Sequence[JobCircle],
    max_nodes: int = 100_000,
    candidate_mode: str = "boundaries",
    orders: Optional[int] = None,
) -> SolverOutcome:
    """DFS placing jobs one at a time from exact feasible rotation sets.

    Args:
        circles: Jobs to place (coverage capacity 1 only).
        max_nodes: Search-node budget across all orders.
        candidate_mode: ``"boundaries"`` tries the start of every feasible
            interval (fast, excellent in practice); ``"complete"`` tries
            every feasible tick, making a negative answer a proof.
        orders: How many job orders to try (None = all permutations for up
            to 5 jobs, otherwise 6 deterministic rotations of a size-sorted
            order).

    Returns:
        A :class:`SolverOutcome`; ``complete`` is set when the search space
        was exhausted under ``candidate_mode="complete"``.
    """
    if candidate_mode not in ("boundaries", "complete"):
        raise CompatibilityError(f"unknown candidate mode {candidate_mode!r}")
    unified = UnifiedCircle(circles)
    perimeter = unified.perimeter
    n = len(circles)
    if n == 0:
        raise CompatibilityError("no circles to place")

    ordered_indices: List[Tuple[int, ...]]
    if orders is None and n <= 5:
        ordered_indices = list(itertools.permutations(range(n)))
    else:
        by_size = sorted(
            range(n), key=lambda i: -circles[i].comm.measure
        )
        count = orders if orders is not None else 6
        ordered_indices = [
            tuple(by_size[k:] + by_size[:k]) for k in range(min(count, n))
        ]

    nodes = 0
    truncated = False

    def dfs(
        order: Tuple[int, ...],
        depth: int,
        placed: ArcSet,
        rotations: Dict[str, int],
    ) -> Optional[Dict[str, int]]:
        nonlocal nodes, truncated
        if depth == len(order):
            return dict(rotations)
        if nodes >= max_nodes or len(placed.intervals) > MAX_PLACED_INTERVALS:
            truncated = True
            return None
        circle = circles[order[depth]]
        if placed.is_empty:
            feasible = ArcSet(circle.perimeter, [(0, circle.perimeter)])
        else:
            feasible = feasible_rotations(placed, circle, perimeter)
        if feasible.is_empty:
            return None
        if candidate_mode == "boundaries":
            candidates = [start for start, _ in feasible.intervals]
        else:
            if feasible.measure > MAX_COMPLETE_CANDIDATES:
                truncated = True
                candidates = [start for start, _ in feasible.intervals]
            else:
                candidates = [
                    tick
                    for start, end in feasible.intervals
                    for tick in range(start, end)
                ]
        for delta in candidates:
            nodes += 1
            if nodes > max_nodes:
                truncated = True
                return None
            rotated = circle.rotate(delta).tiled_comm(perimeter)
            rotations[circle.job_id] = delta
            result = dfs(order, depth + 1, placed.union(rotated), rotations)
            if result is not None:
                return result
            del rotations[circle.job_id]
        return None

    for order in ordered_indices:
        found = dfs(order, 0, ArcSet(perimeter), {})
        if found is not None:
            full = {circle.job_id: found.get(circle.job_id, 0)
                    for circle in circles}
            return SolverOutcome(
                found=True,
                rotations=full,
                overlap=0,
                complete=True,
                method=f"backtracking-{candidate_mode}",
                nodes=nodes,
            )
        if truncated:
            break

    return SolverOutcome(
        found=False,
        rotations={circle.job_id: 0 for circle in circles},
        overlap=unified.overlap_ticks(),
        complete=(candidate_mode == "complete") and not truncated,
        method=f"backtracking-{candidate_mode}",
        nodes=nodes,
    )


# ---------------------------------------------------------------------------
# Heuristics
# ---------------------------------------------------------------------------

def greedy_search(circles: Sequence[JobCircle]) -> SolverOutcome:
    """Largest-job-first placement into exact feasible gaps.

    Places jobs in decreasing order of communication length; each job takes
    the first feasible rotation against everything placed so far, or — if
    none exists — the rotation minimizing the added overlap among gap
    boundaries. Fast and good, but a miss is not a proof.
    """
    unified = UnifiedCircle(circles)
    perimeter = unified.perimeter
    order = sorted(circles, key=lambda c: -c.comm.measure)
    placed = ArcSet(perimeter)
    rotations: Dict[str, int] = {}
    nodes = 0
    for circle in order:
        if placed.is_empty:
            rotations[circle.job_id] = 0
            placed = circle.tiled_comm(perimeter)
            continue
        feasible = feasible_rotations(placed, circle, perimeter)
        nodes += 1
        if not feasible.is_empty:
            delta = feasible.intervals[0][0]
        else:
            # Minimize added overlap over boundary-aligned candidates.
            candidates = {0}
            for gap_start, _ in placed.gaps():
                for b1, _ in circle.comm.intervals:
                    candidates.add((gap_start - b1) % circle.perimeter)
            best_delta, best_cost = 0, None
            for candidate in sorted(candidates):
                cost = placed.overlap_length(
                    circle.rotate(candidate).tiled_comm(perimeter)
                )
                nodes += 1
                if best_cost is None or cost < best_cost:
                    best_delta, best_cost = candidate, cost
            delta = best_delta
        rotations[circle.job_id] = delta
        placed = placed.union(circle.rotate(delta).tiled_comm(perimeter))
    overlap = unified.overlap_ticks(rotations)
    return SolverOutcome(
        found=overlap == 0,
        rotations={c.job_id: rotations.get(c.job_id, 0) for c in circles},
        overlap=overlap,
        complete=False,
        method="greedy",
        nodes=nodes,
    )


class _OverlapEvaluator:
    """Fast repeated evaluation of overlap cost under rotations.

    Tiles every job once at rotation zero and, per query, shifts the
    cached interval endpoints and sweeps them with vectorized numpy — a
    rotated tiling equals the tiling rotated, so no re-tiling is needed.
    """

    def __init__(self, circles: Sequence[JobCircle]) -> None:
        self._unified = UnifiedCircle(circles)
        perimeter = self._unified.perimeter
        tiled = self._unified.tiled()
        self._starts: Dict[str, np.ndarray] = {}
        self._ends: Dict[str, np.ndarray] = {}
        for job_id, arcset in tiled.items():
            # Join the split-at-zero pair back into one modular interval
            # so a rotation never changes the interval count.
            intervals = list(arcset.intervals)
            if (
                len(intervals) >= 2
                and intervals[0][0] == 0
                and intervals[-1][1] == perimeter
            ):
                first = intervals.pop(0)
                last = intervals.pop()
                intervals.append((last[0], perimeter + first[1]))
            self._starts[job_id] = np.asarray(
                [s for s, _ in intervals], dtype=np.int64
            )
            self._ends[job_id] = np.asarray(
                [e for _, e in intervals], dtype=np.int64
            )

    @property
    def perimeter(self) -> int:
        """Unified-circle perimeter."""
        return self._unified.perimeter

    def cost(self, rotations: Dict[str, int], capacity: int) -> int:
        """Ticks covered by more than ``capacity`` jobs."""
        perimeter = self._unified.perimeter
        starts_list = []
        ends_list = []
        base_count = 0
        for job_id, starts in self._starts.items():
            delta = rotations.get(job_id, 0)
            s = (starts + delta) % perimeter
            e = (self._ends[job_id] + delta) % perimeter
            # Intervals that wrap contribute +1 at position 0.
            base_count += int(np.count_nonzero(e <= s))
            starts_list.append(s)
            ends_list.append(e)
        all_starts = np.concatenate(starts_list)
        all_ends = np.concatenate(ends_list)
        positions = np.concatenate([all_starts, all_ends, [0, perimeter]])
        deltas = np.concatenate(
            [
                np.ones(all_starts.size, dtype=np.int64),
                -np.ones(all_ends.size, dtype=np.int64),
                [0, 0],
            ]
        )
        order = np.argsort(positions, kind="stable")
        positions = positions[order]
        deltas = deltas[order]
        counts = base_count + np.cumsum(deltas)
        # counts[i] is the coverage on [positions[i], positions[i+1]).
        widths = np.diff(positions)
        over = counts[:-1] > capacity
        return int(widths[over].sum())


def annealing_search(
    circles: Sequence[JobCircle],
    capacity: int = 1,
    iterations: Optional[int] = None,
    restarts: int = 4,
    seed: int = 0,
) -> SolverOutcome:
    """Simulated annealing over integer rotations.

    Minimizes the number of ticks covered by more than ``capacity`` jobs.
    Works for any coverage capacity (the generalization the paper sketches
    for GPU multi-tenancy) and for instances too large for exact search.
    ``iterations`` defaults to a budget scaled inversely with the tiled
    arc count, keeping one call around a hundred milliseconds even on
    unified circles with thousands of arcs.
    """
    if capacity < 1:
        raise CompatibilityError(f"capacity must be >= 1, got {capacity}")
    unified = UnifiedCircle(circles)
    evaluator = _OverlapEvaluator(circles)
    if iterations is None:
        total_arcs = sum(
            len(circle.comm.intervals)
            * (unified.perimeter // circle.perimeter)
            for circle in circles
        )
        iterations = max(600, min(4000, 1_000_000 // max(total_arcs, 1)))
    rng = np.random.default_rng(seed)
    job_ids = [circle.job_id for circle in circles]
    periods = {circle.job_id: circle.perimeter for circle in circles}

    def cost(rotations: Dict[str, int]) -> int:
        return evaluator.cost(rotations, capacity)

    best_rotations = {job_id: 0 for job_id in job_ids}
    best_cost = cost(best_rotations)
    nodes = 1
    for restart in range(restarts):
        if best_cost == 0:
            break
        current = {
            job_id: int(rng.integers(periods[job_id]))
            for job_id in job_ids
        }
        current_cost = cost(current)
        temperature_scale = max(unified.perimeter // 10, 1)
        for step in range(iterations):
            nodes += 1
            temperature = temperature_scale * (1.0 - step / iterations) + 1e-9
            job_id = job_ids[int(rng.integers(len(job_ids)))]
            period = periods[job_id]
            # Mix fine and coarse moves so the walk can both slide into a
            # gap and jump across the circle.
            if rng.random() < 0.5:
                shift = int(rng.integers(1, max(period // 20, 2)))
            else:
                shift = int(rng.integers(period))
            candidate = dict(current)
            candidate[job_id] = (current[job_id] + shift) % period
            candidate_cost = cost(candidate)
            accept = candidate_cost <= current_cost or (
                rng.random()
                < np.exp((current_cost - candidate_cost) / temperature)
            )
            if accept:
                current, current_cost = candidate, candidate_cost
                if current_cost < best_cost:
                    best_rotations, best_cost = dict(current), current_cost
                    if best_cost == 0:
                        break
    return SolverOutcome(
        found=best_cost == 0,
        rotations=best_rotations,
        overlap=best_cost,
        complete=False,
        method="annealing",
        nodes=nodes,
    )


def exhaustive_search(
    circles: Sequence[JobCircle],
    capacity: int = 1,
    steps_per_job: int = 36,
    max_evaluations: int = 2_000_000,
) -> SolverOutcome:
    """Brute-force grid over rotations (the paper's sector discretization).

    Each job's rotation is sampled at ``steps_per_job`` evenly spaced
    angles — exactly the discretized formulation the paper describes. Used
    for cross-checking the exact solvers and for the sector-count ablation;
    exponential in the number of jobs.
    """
    if capacity < 1:
        raise CompatibilityError(f"capacity must be >= 1, got {capacity}")
    if steps_per_job < 1:
        raise CompatibilityError("steps_per_job must be >= 1")
    unified = UnifiedCircle(circles)
    grids: List[List[int]] = []
    total = 1
    for circle in circles:
        step = max(circle.perimeter // steps_per_job, 1)
        grid = list(range(0, circle.perimeter, step))
        grids.append(grid)
        total *= len(grid)
    if total > max_evaluations:
        raise CompatibilityError(
            f"grid of {total} evaluations exceeds budget {max_evaluations}; "
            f"reduce steps_per_job or use annealing_search"
        )
    job_ids = [circle.job_id for circle in circles]
    best_rotations = {job_id: 0 for job_id in job_ids}
    best_cost: Optional[int] = None
    nodes = 0
    for combo in itertools.product(*grids):
        nodes += 1
        rotations = dict(zip(job_ids, combo))
        cost = unified.overlap_ticks(rotations, capacity=capacity)
        if best_cost is None or cost < best_cost:
            best_cost, best_rotations = cost, rotations
            if best_cost == 0:
                break
    return SolverOutcome(
        found=best_cost == 0,
        rotations=best_rotations,
        overlap=int(best_cost or 0),
        complete=best_cost == 0,
        method=f"exhaustive-{steps_per_job}",
        nodes=nodes,
    )


def solve_fractional(
    circles: Sequence[JobCircle],
    capacity: float = 1.0,
    iterations: int = 5000,
    restarts: int = 4,
    seed: int = 0,
) -> SolverOutcome:
    """Rotation search under fractional link demands (§5).

    Each circle carries a ``demand`` in (0, 1]; jobs may overlap as long
    as the sum of demands stays within ``capacity`` at every point. A job
    demanding the full link reduces to the classic formulation. Solved by
    annealing on the demand-weighted overlap (the exact DFS machinery
    does not apply because constraints are no longer pairwise-disjoint).
    """
    if capacity <= 0:
        raise CompatibilityError(f"capacity must be > 0, got {capacity}")
    unified = UnifiedCircle(circles)
    rng = np.random.default_rng(seed)
    job_ids = [circle.job_id for circle in circles]
    periods = {circle.job_id: circle.perimeter for circle in circles}

    def cost(rotations: Dict[str, int]) -> int:
        return unified.fractional_overlap_ticks(rotations, capacity)

    best_rotations = {job_id: 0 for job_id in job_ids}
    best_cost = cost(best_rotations)
    nodes = 1
    for _restart in range(restarts):
        if best_cost == 0:
            break
        current = {
            job_id: int(rng.integers(periods[job_id])) for job_id in job_ids
        }
        current_cost = cost(current)
        scale = max(unified.perimeter // 10, 1)
        for step in range(iterations):
            nodes += 1
            temperature = scale * (1.0 - step / iterations) + 1e-9
            job_id = job_ids[int(rng.integers(len(job_ids)))]
            period = periods[job_id]
            if rng.random() < 0.5:
                shift = int(rng.integers(1, max(period // 20, 2)))
            else:
                shift = int(rng.integers(period))
            candidate = dict(current)
            candidate[job_id] = (current[job_id] + shift) % period
            candidate_cost = cost(candidate)
            if candidate_cost <= current_cost or rng.random() < np.exp(
                (current_cost - candidate_cost) / temperature
            ):
                current, current_cost = candidate, candidate_cost
                if current_cost < best_cost:
                    best_rotations, best_cost = dict(current), current_cost
                    if best_cost == 0:
                        break
    return SolverOutcome(
        found=best_cost == 0,
        rotations=best_rotations,
        overlap=best_cost,
        complete=False,
        method="fractional-annealing",
        nodes=nodes,
    )


# ---------------------------------------------------------------------------
# Facade
# ---------------------------------------------------------------------------

def solve(
    circles: Sequence[JobCircle],
    capacity: int = 1,
    method: str = "auto",
    seed: int = 0,
) -> SolverOutcome:
    """Decide compatibility and find rotations.

    ``method="auto"`` escalates: utilization bound -> exact pairwise checks
    (capacity 1) -> boundary DFS -> complete DFS (when affordable) ->
    annealing. The outcome's ``complete`` flag records whether a negative
    answer is proven.

    Each invocation runs under a ``solve_rotations`` telemetry span and
    reports its outcome (method, nodes, verdict) to the ambient session.
    """
    from ..telemetry.session import current
    from ..telemetry.trace import KIND_SOLVE

    telemetry = current()
    with telemetry.span("solve_rotations"):
        outcome = _solve(circles, capacity=capacity, method=method, seed=seed)
    if telemetry.enabled:
        telemetry.counter("solve.calls").inc()
        telemetry.counter("solve.nodes").inc(outcome.nodes)
        telemetry.event(
            KIND_SOLVE,
            t=0.0,
            method=outcome.method,
            found=outcome.found,
            complete=outcome.complete,
            overlap=outcome.overlap,
            nodes=outcome.nodes,
            jobs=len(circles),
        )
    return outcome


def _solve(
    circles: Sequence[JobCircle],
    capacity: int,
    method: str,
    seed: int,
) -> SolverOutcome:
    if not circles:
        raise CompatibilityError("no circles given")
    if capacity < 1:
        raise CompatibilityError(f"capacity must be >= 1, got {capacity}")

    if method == "greedy":
        return greedy_search(circles)
    if method == "annealing":
        return annealing_search(circles, capacity=capacity, seed=seed)
    if method == "exhaustive":
        return exhaustive_search(circles, capacity=capacity)
    if method == "backtracking":
        return backtracking_search(circles)
    if method != "auto":
        raise CompatibilityError(f"unknown method {method!r}")

    unified = UnifiedCircle(circles)
    if len(circles) == 1:
        return SolverOutcome(
            found=True,
            rotations={circles[0].job_id: 0},
            overlap=0,
            complete=True,
            method="trivial",
        )

    zero_rotations = {circle.job_id: 0 for circle in circles}

    # Necessary condition: total communication must fit in the period.
    if unified.total_comm_ticks() > capacity * unified.perimeter:
        return SolverOutcome(
            found=False,
            rotations=zero_rotations,
            overlap=_overlap_or_bound(unified, zero_rotations, capacity),
            complete=True,
            method="utilization-bound",
        )

    if capacity == 1:
        # Exact pairwise screens (cheap even for huge LCMs).
        for first, second in itertools.combinations(circles, 2):
            if exact_pair_feasible_rotations(first, second).is_empty:
                return SolverOutcome(
                    found=False,
                    rotations=zero_rotations,
                    overlap=_overlap_or_bound(
                        unified, zero_rotations, capacity
                    ),
                    complete=True,
                    method=f"pairwise({first.job_id},{second.job_id})",
                )
        if len(circles) == 2:
            first, second = circles
            delta = pair_compatible(first, second)
            # Pairwise screen above guarantees delta exists here.
            return SolverOutcome(
                found=True,
                rotations={first.job_id: 0, second.job_id: int(delta)},
                overlap=0,
                complete=True,
                method="exact-pair",
            )
        tiled_arc_estimate = _tiled_arc_estimate(circles, unified.perimeter)
        if tiled_arc_estimate <= MAX_PLACED_INTERVALS:
            outcome = backtracking_search(circles)
            if outcome.found:
                return outcome
            # A complete enumeration proves infeasibility but touches every
            # feasible tick; only affordable on small unified circles.
            if unified.perimeter <= COMPLETE_SEARCH_MAX_PERIMETER:
                complete = backtracking_search(
                    circles, candidate_mode="complete", max_nodes=500_000
                )
                if complete.found or complete.complete:
                    return complete

    if (
        _tiled_arc_estimate(circles, unified.perimeter)
        > MAX_TILED_ARCS_FOR_SEARCH
    ):
        # Tiling alone would dominate; tell the caller to coarsen the
        # profiling granularity (the paper's sector discretization) rather
        # than silently burning minutes.
        return SolverOutcome(
            found=False,
            rotations=zero_rotations,
            overlap=_overlap_or_bound(unified, zero_rotations, capacity),
            complete=False,
            method="instance-too-large",
        )
    outcome = annealing_search(circles, capacity=capacity, seed=seed)
    return outcome
