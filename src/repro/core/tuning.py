"""Hyper-parameter tuning for compatibility (§5).

The paper observes that a job's circle is a function of its
hyper-parameters — batch size moves the compute phase, worker count and
allreduce algorithm move the communication arc — which gives the
scheduler "an opportunity ... to adjust the hyper-parameters to improve
the compatibility of jobs sharing links".

:func:`suggest_compute_scaling` searches small per-job compute-phase
scalings (the batch-size lever: compute time is linear in batch size
while gradient size — hence the communication arc — is unchanged) that
turn an incompatible set into a fully compatible one, preferring the
smallest total adjustment and touching as few jobs as possible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CompatibilityError
from ..floats import isclose
from .circle import JobCircle
from .optimize import solve


@dataclass(frozen=True)
class TuningSuggestion:
    """A compatibility-restoring hyper-parameter adjustment.

    Attributes:
        scales: Per-job compute-phase scale factor (1.0 = untouched).
            A scale of 1.05 means "grow the batch ~5%".
        circles: The adjusted circles (same job ids).
        rotations: The certificate rotations for the adjusted set.
        total_adjustment: Sum of ``|scale - 1|`` across jobs (the cost).
    """

    scales: Dict[str, float]
    circles: Tuple[JobCircle, ...]
    rotations: Dict[str, int]
    total_adjustment: float

    @property
    def jobs_touched(self) -> int:
        """Jobs whose compute phase was actually changed."""
        return sum(
            1
            for scale in self.scales.values()
            if not isclose(scale, 1.0)
        )


def scale_compute(circle: JobCircle, scale: float) -> JobCircle:
    """A copy of ``circle`` with its compute phase scaled by ``scale``.

    Only the canonical one-arc layout (compute then communication) is
    supported, since batch-size scaling stretches the whole forward pass.
    """
    if scale <= 0:
        raise CompatibilityError(f"scale must be > 0, got {scale}")
    intervals = circle.comm.intervals
    if len(intervals) != 1:
        raise CompatibilityError(
            f"{circle.job_id}: compute scaling needs a single comm arc"
        )
    (start, end), = intervals
    compute_ticks = circle.perimeter - (end - start)
    comm_ticks = end - start
    new_compute = max(0, round(compute_ticks * scale))
    return JobCircle.from_phases(
        circle.job_id, new_compute, comm_ticks, demand=circle.demand
    )


def suggest_compute_scaling(
    circles: Sequence[JobCircle],
    max_scale_change: float = 0.25,
    steps: int = 10,
    max_jobs_touched: int = 2,
    seed: int = 0,
) -> Optional[TuningSuggestion]:
    """Search compute-phase scalings that make the set compatible.

    Args:
        circles: The (typically incompatible) job set.
        max_scale_change: Largest allowed ``|scale - 1|`` per job.
        steps: Grid resolution per job within the allowed range.
        max_jobs_touched: Try adjusting at most this many jobs at once
            (subsets are explored smallest-first, so the suggestion
            touches as few jobs as possible).
        seed: Seed forwarded to the rotation solver.

    Returns:
        The cheapest suggestion found, or ``None`` if nothing within the
        budget restores compatibility. If the set is already compatible,
        the identity suggestion (all scales 1.0) is returned.
    """
    if not circles:
        raise CompatibilityError("no circles given")
    if max_scale_change <= 0 or steps < 1:
        raise CompatibilityError("need max_scale_change > 0 and steps >= 1")

    baseline = solve(list(circles), seed=seed)
    if baseline.found:
        return TuningSuggestion(
            scales={c.job_id: 1.0 for c in circles},
            circles=tuple(circles),
            rotations=dict(baseline.rotations),
            total_adjustment=0.0,
        )

    grid = sorted(
        {
            round(1.0 + sign * max_scale_change * k / steps, 6)
            for k in range(1, steps + 1)
            for sign in (1, -1)
        },
        key=lambda scale: abs(scale - 1.0),
    )
    job_ids = [circle.job_id for circle in circles]
    by_id = {circle.job_id: circle for circle in circles}

    best: Optional[TuningSuggestion] = None
    budget = min(max_jobs_touched, len(job_ids))
    for subset_size in range(1, budget + 1):
        for subset in itertools.combinations(job_ids, subset_size):
            for combo in itertools.product(grid, repeat=subset_size):
                adjustment = sum(abs(scale - 1.0) for scale in combo)
                if best is not None and adjustment >= best.total_adjustment:
                    continue
                scales = {job_id: 1.0 for job_id in job_ids}
                scales.update(dict(zip(subset, combo)))
                adjusted = [
                    scale_compute(by_id[job_id], scales[job_id])
                    if not isclose(scales[job_id], 1.0)
                    else by_id[job_id]
                    for job_id in job_ids
                ]
                outcome = solve(adjusted, seed=seed)
                if outcome.found:
                    best = TuningSuggestion(
                        scales=scales,
                        circles=tuple(adjusted),
                        rotations=dict(outcome.rotations),
                        total_adjustment=adjustment,
                    )
        if best is not None:
            # A smaller subset already succeeded; no need to touch more.
            break
    return best
