"""The paper's geometric abstraction, job lifecycle, and compatibility machinery.

Time is *rolled around a circle* whose perimeter equals a job's training
iteration time; communication phases become arcs (§3, Figure 3). Jobs with
different iteration times live on a **unified circle** whose perimeter is
the LCM of their iteration times (Figure 5). A set of jobs is **fully
compatible** when rotations exist under which no point of the circle is
covered by more than one job's communication arcs (Figure 4) — rotating a
circle is equivalent to the sliding side effect of unfair congestion
control.

Durations are quantized to integer ticks (microseconds by default) so that
LCM arithmetic and overlap tests are exact.
"""

from .arcs import Arc, ArcSet
from .lifecycle import Gate, JobLifecycle, JobState, OnOffSource
from .timeline import IterationSample, JobTimeline
from .circle import JobCircle
from .unified import UnifiedCircle, unified_perimeter
from .compatibility import (
    CompatibilityChecker,
    CompatibilityResult,
)
from .optimize import (
    solve,
    solve_fractional,
    exact_pair_feasible_rotations,
    backtracking_search,
    greedy_search,
    annealing_search,
    exhaustive_search,
)
from .cluster_compat import (
    ClusterCompatibilityProblem,
    ClusterCompatibilityResult,
)
from .tuning import TuningSuggestion, scale_compute, suggest_compute_scaling
from .prediction import (
    fair_lockstep_iteration_time,
    steady_period_lower_bound,
    unfairness_speedup_estimate,
)
from .rotation import (
    rotation_to_seconds,
    rotation_to_degrees,
    degrees_to_rotation,
    communication_schedule,
)
from .metrics import (
    overlap_ticks,
    min_overlap,
    compatibility_score,
    pairwise_compatibility_matrix,
)

__all__ = [
    "Arc",
    "ArcSet",
    "Gate",
    "IterationSample",
    "JobLifecycle",
    "JobState",
    "JobTimeline",
    "OnOffSource",
    "JobCircle",
    "UnifiedCircle",
    "unified_perimeter",
    "CompatibilityChecker",
    "CompatibilityResult",
    "solve",
    "solve_fractional",
    "exact_pair_feasible_rotations",
    "backtracking_search",
    "greedy_search",
    "annealing_search",
    "exhaustive_search",
    "ClusterCompatibilityProblem",
    "ClusterCompatibilityResult",
    "TuningSuggestion",
    "scale_compute",
    "suggest_compute_scaling",
    "fair_lockstep_iteration_time",
    "steady_period_lower_bound",
    "unfairness_speedup_estimate",
    "rotation_to_seconds",
    "rotation_to_degrees",
    "degrees_to_rotation",
    "communication_schedule",
    "overlap_ticks",
    "min_overlap",
    "compatibility_score",
    "pairwise_compatibility_matrix",
]
