"""JSON serialization for workloads, circles, results and telemetry.

Lets operators exchange profiled workloads and verdicts between tools:
job specs and circles round-trip losslessly (circles are integer data);
compatibility results serialize with their certificates so a deployment
can re-verify them before trusting them. Telemetry traces round-trip as
JSONL (one record per line) so recorded runs can be summarized, diffed
and replayed by the ``repro-experiments stats`` / ``trace`` commands.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from .core.circle import JobCircle
from .core.compatibility import CompatibilityResult
from .errors import ConfigError
from .telemetry.trace import TraceRecord
from .workloads.job import JobSpec

#: Format tag embedded in every document.
FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# JobSpec
# ---------------------------------------------------------------------------

def job_spec_to_dict(spec: JobSpec) -> Dict[str, Any]:
    """Serialize a job spec to plain data."""
    data: Dict[str, Any] = {
        "version": FORMAT_VERSION,
        "job_id": spec.job_id,
        "compute_time": spec.compute_time,
        "comm_bytes": spec.comm_bytes,
        "model_name": spec.model_name,
        "batch_size": spec.batch_size,
        "compute_jitter": spec.compute_jitter,
        "n_workers": spec.n_workers,
    }
    if spec.segments:
        data["segments"] = [list(segment) for segment in spec.segments]
    return data


def job_spec_from_dict(data: Dict[str, Any]) -> JobSpec:
    """Deserialize a job spec.

    Raises:
        ConfigError: on a missing field or unknown format version.
    """
    _check_version(data)
    try:
        return JobSpec(
            job_id=data["job_id"],
            compute_time=float(data["compute_time"]),
            comm_bytes=float(data["comm_bytes"]),
            model_name=data.get("model_name", ""),
            batch_size=int(data.get("batch_size", 0)),
            compute_jitter=float(data.get("compute_jitter", 0.0)),
            n_workers=int(data.get("n_workers", 2)),
            segments=tuple(
                (float(c), float(b))
                for c, b in data.get("segments", [])
            ),
        )
    except KeyError as exc:
        raise ConfigError(f"missing field in job spec: {exc}") from exc


# ---------------------------------------------------------------------------
# JobCircle
# ---------------------------------------------------------------------------

def circle_to_dict(circle: JobCircle) -> Dict[str, Any]:
    """Serialize a circle (exact: integers only)."""
    return {
        "version": FORMAT_VERSION,
        "job_id": circle.job_id,
        "perimeter": circle.perimeter,
        "comm_arcs": [
            [start, end - start] for start, end in circle.comm.intervals
        ],
        "demand": circle.demand,
    }


def circle_from_dict(data: Dict[str, Any]) -> JobCircle:
    """Deserialize a circle."""
    _check_version(data)
    try:
        return JobCircle.from_arcs(
            data["job_id"],
            int(data["perimeter"]),
            [(int(s), int(length)) for s, length in data["comm_arcs"]],
            demand=float(data.get("demand", 1.0)),
        )
    except KeyError as exc:
        raise ConfigError(f"missing field in circle: {exc}") from exc


# ---------------------------------------------------------------------------
# CompatibilityResult
# ---------------------------------------------------------------------------

def result_to_dict(result: CompatibilityResult) -> Dict[str, Any]:
    """Serialize a compatibility verdict with its certificate."""
    return {
        "version": FORMAT_VERSION,
        "compatible": result.compatible,
        "rotations": dict(result.rotations),
        "overlap_ticks": result.overlap_ticks,
        "unified_perimeter": result.unified_perimeter,
        "utilization": result.utilization,
        "certified": result.certified,
        "method": result.method,
        "job_ids": list(result.job_ids),
    }


def result_from_dict(data: Dict[str, Any]) -> CompatibilityResult:
    """Deserialize a compatibility verdict."""
    _check_version(data)
    try:
        return CompatibilityResult(
            compatible=bool(data["compatible"]),
            rotations={k: int(v) for k, v in data["rotations"].items()},
            overlap_ticks=int(data["overlap_ticks"]),
            unified_perimeter=int(data["unified_perimeter"]),
            utilization=float(data["utilization"]),
            certified=bool(data["certified"]),
            method=data["method"],
            job_ids=list(data["job_ids"]),
        )
    except KeyError as exc:
        raise ConfigError(f"missing field in result: {exc}") from exc


# ---------------------------------------------------------------------------
# Files
# ---------------------------------------------------------------------------

def save_workload(
    specs: Sequence[JobSpec], path: Union[str, Path]
) -> None:
    """Write a list of job specs to a JSON file."""
    document = {
        "version": FORMAT_VERSION,
        "jobs": [job_spec_to_dict(spec) for spec in specs],
    }
    Path(path).write_text(json.dumps(document, indent=2))


def load_workload(path: Union[str, Path]) -> List[JobSpec]:
    """Read a list of job specs from a JSON file."""
    document = json.loads(Path(path).read_text())
    _check_version(document)
    if "jobs" not in document:
        raise ConfigError("workload file has no 'jobs' field")
    return [job_spec_from_dict(entry) for entry in document["jobs"]]


# ---------------------------------------------------------------------------
# Telemetry traces (JSONL) and run manifests
# ---------------------------------------------------------------------------

def trace_to_jsonl(records: Sequence[TraceRecord]) -> str:
    """Serialize trace records to JSONL text.

    The first line is a header carrying the format version; each further
    line is one record. Keys are sorted and separators fixed so that two
    identical traces serialize to byte-identical text — the determinism
    tests depend on this.
    """
    lines = [
        json.dumps(
            {"type": "trace", "version": FORMAT_VERSION},
            sort_keys=True,
            separators=(",", ":"),
        )
    ]
    for record in records:
        lines.append(
            json.dumps(
                record.to_dict(), sort_keys=True, separators=(",", ":")
            )
        )
    return "\n".join(lines) + "\n"


def trace_from_jsonl(text: str) -> List[TraceRecord]:
    """Inverse of :func:`trace_to_jsonl`.

    Raises:
        ConfigError: on a missing/invalid header or a malformed record.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ConfigError("empty trace document")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ConfigError(f"bad trace header: {exc}") from exc
    if not isinstance(header, dict) or header.get("type") != "trace":
        raise ConfigError("trace document has no trace header line")
    _check_version(header)
    records: List[TraceRecord] = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            records.append(TraceRecord.from_dict(json.loads(line)))
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"trace line {number} is not valid JSON: {exc}"
            ) from exc
    return records


def save_trace(
    records: Sequence[TraceRecord], path: Union[str, Path]
) -> None:
    """Write trace records to a JSONL file."""
    Path(path).write_text(trace_to_jsonl(records))


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read trace records from a JSONL file."""
    return trace_from_jsonl(Path(path).read_text())


def save_manifest(data: Dict[str, Any], path: Union[str, Path]) -> None:
    """Write a run manifest (adds the format version)."""
    document = {"version": FORMAT_VERSION, **data}
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a run manifest.

    Raises:
        ConfigError: on an unknown format version.
    """
    document = json.loads(Path(path).read_text())
    _check_version(document)
    return document


def _check_version(data: Dict[str, Any]) -> None:
    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ConfigError(
            f"unsupported format version {version} (expected "
            f"{FORMAT_VERSION})"
        )
