"""JSON serialization for workloads, circles, results and telemetry.

Lets operators exchange profiled workloads and verdicts between tools:
job specs and circles round-trip losslessly (circles are integer data);
compatibility results serialize with their certificates so a deployment
can re-verify them before trusting them. Telemetry traces round-trip as
JSONL (one record per line) so recorded runs can be summarized, diffed
and replayed by the ``repro-experiments stats`` / ``trace`` commands.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

import numpy as np

from .cc.adaptive import AdaptiveUnfair
from .cc.fair import FairSharing
from .cc.priority import PrioritySharing
from .cc.weighted import StaticWeighted
from .core.circle import JobCircle
from .core.compatibility import CompatibilityResult
from .core.lifecycle import JobState
from .core.timeline import JobTimeline
from .errors import ConfigError
from .faults.events import EVENT_KINDS, InjectionSchedule
from .mechanisms.flow_scheduling import PeriodicGate
from .net.phasesim import JobRun, SimulationResult
from .net.topology import NodeKind, Topology
from .sim.trace import StepFunction, TimeSeries
from .telemetry.trace import TraceRecord
from .workloads.job import JobSpec

#: Format tag embedded in every document.
FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# JobSpec
# ---------------------------------------------------------------------------

def job_spec_to_dict(spec: JobSpec) -> Dict[str, Any]:
    """Serialize a job spec to plain data."""
    data: Dict[str, Any] = {
        "version": FORMAT_VERSION,
        "job_id": spec.job_id,
        "compute_time": spec.compute_time,
        "comm_bytes": spec.comm_bytes,
        "model_name": spec.model_name,
        "batch_size": spec.batch_size,
        "compute_jitter": spec.compute_jitter,
        "n_workers": spec.n_workers,
    }
    if spec.segments:
        data["segments"] = [list(segment) for segment in spec.segments]
    return data


def job_spec_from_dict(data: Dict[str, Any]) -> JobSpec:
    """Deserialize a job spec.

    Raises:
        ConfigError: on a missing field or unknown format version.
    """
    _check_version(data)
    try:
        return JobSpec(
            job_id=data["job_id"],
            compute_time=float(data["compute_time"]),
            comm_bytes=float(data["comm_bytes"]),
            model_name=data.get("model_name", ""),
            batch_size=int(data.get("batch_size", 0)),
            compute_jitter=float(data.get("compute_jitter", 0.0)),
            n_workers=int(data.get("n_workers", 2)),
            segments=tuple(
                (float(c), float(b))
                for c, b in data.get("segments", [])
            ),
        )
    except KeyError as exc:
        raise ConfigError(f"missing field in job spec: {exc}") from exc


# ---------------------------------------------------------------------------
# JobCircle
# ---------------------------------------------------------------------------

def circle_to_dict(circle: JobCircle) -> Dict[str, Any]:
    """Serialize a circle (exact: integers only)."""
    return {
        "version": FORMAT_VERSION,
        "job_id": circle.job_id,
        "perimeter": circle.perimeter,
        "comm_arcs": [
            [start, end - start] for start, end in circle.comm.intervals
        ],
        "demand": circle.demand,
    }


def circle_from_dict(data: Dict[str, Any]) -> JobCircle:
    """Deserialize a circle."""
    _check_version(data)
    try:
        return JobCircle.from_arcs(
            data["job_id"],
            int(data["perimeter"]),
            [(int(s), int(length)) for s, length in data["comm_arcs"]],
            demand=float(data.get("demand", 1.0)),
        )
    except KeyError as exc:
        raise ConfigError(f"missing field in circle: {exc}") from exc


# ---------------------------------------------------------------------------
# CompatibilityResult
# ---------------------------------------------------------------------------

def result_to_dict(result: CompatibilityResult) -> Dict[str, Any]:
    """Serialize a compatibility verdict with its certificate."""
    return {
        "version": FORMAT_VERSION,
        "compatible": result.compatible,
        "rotations": dict(result.rotations),
        "overlap_ticks": result.overlap_ticks,
        "unified_perimeter": result.unified_perimeter,
        "utilization": result.utilization,
        "certified": result.certified,
        "method": result.method,
        "job_ids": list(result.job_ids),
    }


def result_from_dict(data: Dict[str, Any]) -> CompatibilityResult:
    """Deserialize a compatibility verdict."""
    _check_version(data)
    try:
        return CompatibilityResult(
            compatible=bool(data["compatible"]),
            rotations={k: int(v) for k, v in data["rotations"].items()},
            overlap_ticks=int(data["overlap_ticks"]),
            unified_perimeter=int(data["unified_perimeter"]),
            utilization=float(data["utilization"]),
            certified=bool(data["certified"]),
            method=data["method"],
            job_ids=list(data["job_ids"]),
        )
    except KeyError as exc:
        raise ConfigError(f"missing field in result: {exc}") from exc


# ---------------------------------------------------------------------------
# Files
# ---------------------------------------------------------------------------

def save_workload(
    specs: Sequence[JobSpec], path: Union[str, Path]
) -> None:
    """Write a list of job specs to a JSON file."""
    document = {
        "version": FORMAT_VERSION,
        "jobs": [job_spec_to_dict(spec) for spec in specs],
    }
    Path(path).write_text(json.dumps(document, indent=2))


def load_workload(path: Union[str, Path]) -> List[JobSpec]:
    """Read a list of job specs from a JSON file."""
    document = json.loads(Path(path).read_text())
    _check_version(document)
    if "jobs" not in document:
        raise ConfigError("workload file has no 'jobs' field")
    return [job_spec_from_dict(entry) for entry in document["jobs"]]


# ---------------------------------------------------------------------------
# Telemetry traces (JSONL) and run manifests
# ---------------------------------------------------------------------------

def trace_to_jsonl(records: Sequence[TraceRecord]) -> str:
    """Serialize trace records to JSONL text.

    The first line is a header carrying the format version; each further
    line is one record. Keys are sorted and separators fixed so that two
    identical traces serialize to byte-identical text — the determinism
    tests depend on this.
    """
    lines = [
        json.dumps(
            {"type": "trace", "version": FORMAT_VERSION},
            sort_keys=True,
            separators=(",", ":"),
        )
    ]
    for record in records:
        lines.append(
            json.dumps(
                record.to_dict(), sort_keys=True, separators=(",", ":")
            )
        )
    return "\n".join(lines) + "\n"


def trace_from_jsonl(text: str) -> List[TraceRecord]:
    """Inverse of :func:`trace_to_jsonl`.

    Raises:
        ConfigError: on a missing/invalid header or a malformed record.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ConfigError("empty trace document")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ConfigError(f"bad trace header: {exc}") from exc
    if not isinstance(header, dict) or header.get("type") != "trace":
        raise ConfigError("trace document has no trace header line")
    _check_version(header)
    records: List[TraceRecord] = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            records.append(TraceRecord.from_dict(json.loads(line)))
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"trace line {number} is not valid JSON: {exc}"
            ) from exc
    return records


def save_trace(
    records: Sequence[TraceRecord], path: Union[str, Path]
) -> None:
    """Write trace records to a JSONL file."""
    Path(path).write_text(trace_to_jsonl(records))


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read trace records from a JSONL file."""
    return trace_from_jsonl(Path(path).read_text())


def save_manifest(data: Dict[str, Any], path: Union[str, Path]) -> None:
    """Write a run manifest (adds the format version)."""
    document = {"version": FORMAT_VERSION, **data}
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a run manifest.

    Raises:
        ConfigError: on an unknown format version.
    """
    document = json.loads(Path(path).read_text())
    _check_version(document)
    return document


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------

def topology_to_dict(topology: Topology) -> Dict[str, Any]:
    """Serialize a topology (nodes and directed links, insertion order)."""
    return {
        "version": FORMAT_VERSION,
        "nodes": [[node.name, node.kind.value] for node in topology.nodes],
        "links": [
            [link.src, link.dst, link.capacity, link.name]
            for link in topology.links
        ],
    }


def topology_from_dict(data: Dict[str, Any]) -> Topology:
    """Deserialize a topology (exact: every directed link is explicit)."""
    _check_version(data)
    topology = Topology()
    try:
        for name, kind in data["nodes"]:
            topology.add_node(name, NodeKind(kind))
        for src, dst, capacity, name in data["links"]:
            topology.add_link(
                src, dst, float(capacity), name=name, bidirectional=False
            )
    except (KeyError, ValueError) as exc:
        raise ConfigError(f"bad topology document: {exc}") from exc
    return topology


# ---------------------------------------------------------------------------
# Share policies
# ---------------------------------------------------------------------------

def policy_to_dict(policy: Any) -> Dict[str, Any]:
    """Serialize one of the library's share policies.

    Raises:
        ConfigError: for policy types the codec does not know — such
            specs are executable but not cacheable.
    """
    if isinstance(policy, FairSharing):
        return {"kind": "fair"}
    if isinstance(policy, StaticWeighted):
        return {
            "kind": "static-weighted",
            "weights": policy.weights,
            "default": policy.default_weight,
        }
    if isinstance(policy, AdaptiveUnfair):
        return {
            "kind": "adaptive-unfair",
            "gain": policy.gain,
            "exponent": policy.exponent,
            "base_weight": policy.base_weight,
            "reallocation_interval": policy.reallocation_interval,
        }
    if isinstance(policy, PrioritySharing):
        return {
            "kind": "priority",
            "priorities": policy.priorities,
            "default": policy.default_priority,
        }
    raise ConfigError(
        f"cannot serialize policy of type {type(policy).__name__}"
    )


def policy_from_dict(data: Dict[str, Any]) -> Any:
    """Deserialize a share policy."""
    kind = data.get("kind")
    if kind == "fair":
        return FairSharing()
    if kind == "static-weighted":
        return StaticWeighted(
            {k: float(v) for k, v in data["weights"].items()},
            default=float(data.get("default", 1.0)),
        )
    if kind == "adaptive-unfair":
        return AdaptiveUnfair(
            gain=float(data["gain"]),
            exponent=float(data["exponent"]),
            base_weight=float(data["base_weight"]),
            reallocation_interval=float(data["reallocation_interval"]),
        )
    if kind == "priority":
        return PrioritySharing(
            {k: int(v) for k, v in data["priorities"].items()},
            default=int(data.get("default", 0)),
        )
    raise ConfigError(f"unknown policy kind {kind!r}")


# ---------------------------------------------------------------------------
# Gates
# ---------------------------------------------------------------------------

def gate_to_dict(gate: Any) -> Dict[str, Any]:
    """Serialize a flow-scheduling gate (periodic gates only)."""
    if isinstance(gate, PeriodicGate):
        return {"kind": "periodic", **gate.to_state()}
    raise ConfigError(
        f"cannot serialize gate of type {type(gate).__name__}"
    )


def gate_from_dict(data: Dict[str, Any]) -> PeriodicGate:
    """Deserialize a flow-scheduling gate."""
    if data.get("kind") != "periodic":
        raise ConfigError(f"unknown gate kind {data.get('kind')!r}")
    return PeriodicGate.from_state(data)


# ---------------------------------------------------------------------------
# Fault injection schedules
# ---------------------------------------------------------------------------

def fault_event_to_dict(event: Any) -> Dict[str, Any]:
    """Serialize one fault event, tagged with its ``kind``."""
    kind = getattr(event, "kind", None)
    if kind not in EVENT_KINDS or not isinstance(event, EVENT_KINDS[kind]):
        raise ConfigError(
            f"cannot serialize fault event of type {type(event).__name__}"
        )
    data = {
        field.name: getattr(event, field.name)
        for field in dataclasses.fields(event)
    }
    data["kind"] = kind
    return data


def fault_event_from_dict(data: Dict[str, Any]) -> Any:
    """Deserialize one kind-tagged fault event."""
    kind = data.get("kind")
    try:
        cls = EVENT_KINDS[kind]
    except KeyError:
        raise ConfigError(f"unknown fault event kind {kind!r}") from None
    fields = {
        field.name: data[field.name] for field in dataclasses.fields(cls)
    }
    return cls(**fields)


def injection_schedule_to_dict(
    schedule: InjectionSchedule,
) -> Dict[str, Any]:
    """Serialize a fault injection schedule."""
    return {
        "version": FORMAT_VERSION,
        "horizon": schedule.horizon,
        "events": [
            fault_event_to_dict(event) for event in schedule.events
        ],
    }


def injection_schedule_from_dict(
    data: Dict[str, Any],
) -> InjectionSchedule:
    """Deserialize a fault injection schedule (re-validates it)."""
    _check_version(data)
    try:
        return InjectionSchedule(
            events=tuple(
                fault_event_from_dict(entry)
                for entry in data["events"]
            ),
            horizon=(
                None if data.get("horizon") is None
                else float(data["horizon"])
            ),
        )
    except KeyError as exc:
        raise ConfigError(
            f"missing field in injection schedule: {exc}"
        ) from exc


# ---------------------------------------------------------------------------
# Time series and step functions
# ---------------------------------------------------------------------------

def step_function_to_dict(fn: StepFunction) -> Dict[str, Any]:
    """Serialize a step function via its minimal breakpoint list."""
    return {
        "name": fn.name,
        "initial": fn._initial,
        "points": [list(pair) for pair in fn.breakpoints()],
    }


def step_function_from_dict(data: Dict[str, Any]) -> StepFunction:
    """Exact inverse of :func:`step_function_to_dict`.

    Breakpoints are restored verbatim (not replayed through ``set``,
    whose no-op skipping could drop an overwrite-created breakpoint).
    """
    fn = StepFunction(float(data["initial"]), name=data.get("name", ""))
    fn._times = [float(t) for t, _ in data["points"]]
    fn._values = [float(v) for _, v in data["points"]]
    return fn


def time_series_to_dict(series: TimeSeries) -> Dict[str, Any]:
    """Serialize an irregular time series."""
    return {
        "name": series.name,
        "times": list(series._times),
        "values": list(series._values),
    }


def time_series_from_dict(data: Dict[str, Any]) -> TimeSeries:
    """Deserialize an irregular time series."""
    series = TimeSeries(name=data.get("name", ""))
    series._times = [float(t) for t in data["times"]]
    series._values = [float(v) for v in data["values"]]
    return series


# ---------------------------------------------------------------------------
# Timelines and phase-level results
# ---------------------------------------------------------------------------

def timeline_to_dict(timeline: JobTimeline) -> Dict[str, Any]:
    """Serialize a canonical job timeline (compact sample rows)."""
    return {
        "job_id": timeline.job_id,
        "samples": timeline.to_rows(),
    }


def timeline_from_dict(data: Dict[str, Any]) -> JobTimeline:
    """Deserialize a canonical job timeline."""
    try:
        return JobTimeline.from_rows(data["job_id"], data["samples"])
    except KeyError as exc:
        raise ConfigError(f"missing field in timeline: {exc}") from exc


def job_run_to_dict(run: JobRun) -> Dict[str, Any]:
    """Serialize a completed job run (flows/gate/rng are not carried)."""
    return {
        "spec": job_spec_to_dict(run.spec),
        "n_iterations": run.n_iterations,
        "start_offset": run.start_offset,
        "state": run.state.value,
        "timeline": timeline_to_dict(run.timeline),
        "rate_trace": step_function_to_dict(run.rate_trace),
    }


def job_run_from_dict(data: Dict[str, Any]) -> JobRun:
    """Deserialize a job run (as a result container: no flows, no rng)."""
    run = JobRun(
        spec=job_spec_from_dict(data["spec"]),
        flows=[],
        n_iterations=int(data["n_iterations"]),
        start_offset=float(data["start_offset"]),
        gate=None,
        rng=np.random.default_rng(0),
    )
    run.state = JobState(data["state"])
    run.lifecycle.timeline = timeline_from_dict(data["timeline"])
    run.rate_trace = step_function_from_dict(data["rate_trace"])
    return run


def simulation_result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Serialize a phase-level simulation result."""
    return {
        "jobs": {
            job_id: job_run_to_dict(run)
            for job_id, run in sorted(result.jobs.items())
        },
        "link_loads": {
            name: step_function_to_dict(fn)
            for name, fn in sorted(result.link_loads.items())
        },
        "duration": result.duration,
    }


def simulation_result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    """Deserialize a phase-level simulation result."""
    return SimulationResult(
        jobs={
            job_id: job_run_from_dict(entry)
            for job_id, entry in data["jobs"].items()
        },
        link_loads={
            name: step_function_from_dict(entry)
            for name, entry in data["link_loads"].items()
        },
        duration=float(data["duration"]),
    )


# ---------------------------------------------------------------------------
# Fluid (DCQCN) results
# ---------------------------------------------------------------------------

def dcqcn_result_to_dict(result: Any) -> Dict[str, Any]:
    """Serialize a :class:`repro.cc.dcqcn.DcqcnResult`.

    The per-link queue series of fabric runs are emitted only when
    present, so single-bottleneck result documents are byte-identical
    to the pre-fabric format.
    """
    document = {
        "rate_series": {
            name: time_series_to_dict(series)
            for name, series in sorted(result.rate_series.items())
        },
        "queue_series": time_series_to_dict(result.queue_series),
        "duration": result.duration,
        "timelines": {
            name: timeline_to_dict(timeline)
            for name, timeline in sorted(result.timelines.items())
        },
    }
    if result.link_queue_series:
        document["link_queue_series"] = {
            name: time_series_to_dict(series)
            for name, series in sorted(result.link_queue_series.items())
        }
    return document


def dcqcn_result_from_dict(data: Dict[str, Any]) -> Any:
    """Deserialize a DCQCN fluid result."""
    from .cc.dcqcn import DcqcnResult

    return DcqcnResult(
        rate_series={
            name: time_series_from_dict(entry)
            for name, entry in data["rate_series"].items()
        },
        queue_series=time_series_from_dict(data["queue_series"]),
        duration=float(data["duration"]),
        timelines={
            name: timeline_from_dict(entry)
            for name, entry in data.get("timelines", {}).items()
        },
        link_queue_series={
            name: time_series_from_dict(entry)
            for name, entry in data.get("link_queue_series", {}).items()
        },
    )


# ---------------------------------------------------------------------------
# Run specs and results
# ---------------------------------------------------------------------------

def _encode_option(value: Any) -> Any:
    """Encode one backend option value as JSON-able data.

    Primitives pass through; sequences become lists; mappings keep
    string keys; job specs are tagged so they round-trip.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, JobSpec):
        return {"__jobspec__": job_spec_to_dict(value)}
    if isinstance(value, (list, tuple)):
        return [_encode_option(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _encode_option(v) for k, v in value.items()}
    raise ConfigError(
        f"cannot serialize option value of type {type(value).__name__}"
    )


def _decode_option(value: Any) -> Any:
    if isinstance(value, dict):
        if "__jobspec__" in value:
            return job_spec_from_dict(value["__jobspec__"])
        return {k: _decode_option(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_option(item) for item in value]
    return value


def sender_spec_to_dict(sender: Any) -> Dict[str, Any]:
    """Serialize a fluid-backend sender spec.

    ``route`` is emitted only when set: routeless (single-bottleneck)
    sender documents — and therefore existing spec content hashes —
    stay byte-identical to the pre-fabric format.
    """
    document = {
        "name": sender.name,
        "timer": sender.timer,
        "data_bytes": sender.data_bytes,
        "compute_time": sender.compute_time,
        "comm_bytes": sender.comm_bytes,
        "start_offset": sender.start_offset,
        "stream": sender.stream,
    }
    if sender.route:
        document["route"] = list(sender.route)
    return document


def sender_spec_from_dict(data: Dict[str, Any]) -> Any:
    """Deserialize a fluid-backend sender spec."""
    from .runner.spec import SenderSpec

    return SenderSpec(
        name=data["name"],
        timer=float(data["timer"]),
        data_bytes=(
            None if data.get("data_bytes") is None
            else float(data["data_bytes"])
        ),
        compute_time=(
            None if data.get("compute_time") is None
            else float(data["compute_time"])
        ),
        comm_bytes=(
            None if data.get("comm_bytes") is None
            else float(data["comm_bytes"])
        ),
        start_offset=float(data.get("start_offset", 0.0)),
        stream=data.get("stream", ""),
        route=tuple(data.get("route", ())),
    )


def run_spec_to_dict(spec: Any) -> Dict[str, Any]:
    """Serialize a :class:`repro.runner.spec.RunSpec`.

    Raises:
        ConfigError: when the spec holds something the codecs cannot
            express (ad-hoc gates, unknown policies, odd option values).
    """
    return {
        "version": FORMAT_VERSION,
        "backend": spec.backend,
        "label": spec.label,
        "seed": spec.seed,
        "jobs": [job_spec_to_dict(job) for job in spec.jobs],
        "policy": (
            None if spec.policy is None else policy_to_dict(spec.policy)
        ),
        "topology": (
            None if spec.topology is None
            else topology_to_dict(spec.topology)
        ),
        "n_iterations": spec.n_iterations,
        "capacity": spec.capacity,
        "start_offsets": [
            [job_id, offset] for job_id, offset in spec.start_offsets
        ],
        "gates": [
            [job_id, gate_to_dict(gate)] for job_id, gate in spec.gates
        ],
        "until": spec.until,
        "duration": spec.duration,
        "scenarios": [
            {
                "name": scenario.name,
                "senders": [
                    sender_spec_to_dict(sender)
                    for sender in scenario.senders
                ],
            }
            for scenario in spec.scenarios
        ],
        "options": [
            [key, _encode_option(value)] for key, value in spec.options
        ],
        "backend_module": spec.backend_module,
        # An empty schedule is the documented no-op, bit-identical to
        # no schedule at all — normalize it to null so clean and
        # zero-event specs share one content hash (and cache entry).
        "faults": (
            None if spec.faults is None or spec.faults.is_empty
            else injection_schedule_to_dict(spec.faults)
        ),
    }


def run_spec_from_dict(data: Dict[str, Any]) -> Any:
    """Deserialize a run spec."""
    from .runner.spec import RunSpec, ScenarioSpec

    _check_version(data)
    return RunSpec(
        backend=data["backend"],
        label=data.get("label", ""),
        seed=int(data.get("seed", 0)),
        jobs=tuple(
            job_spec_from_dict(entry) for entry in data.get("jobs", [])
        ),
        policy=(
            None if data.get("policy") is None
            else policy_from_dict(data["policy"])
        ),
        topology=(
            None if data.get("topology") is None
            else topology_from_dict(data["topology"])
        ),
        n_iterations=int(data.get("n_iterations", 0)),
        capacity=float(data.get("capacity", 0.0)),
        start_offsets=tuple(
            (job_id, float(offset))
            for job_id, offset in data.get("start_offsets", [])
        ),
        gates=tuple(
            (job_id, gate_from_dict(entry))
            for job_id, entry in data.get("gates", [])
        ),
        until=(
            None if data.get("until") is None else float(data["until"])
        ),
        duration=float(data.get("duration", 0.0)),
        scenarios=tuple(
            ScenarioSpec(
                name=entry["name"],
                senders=tuple(
                    sender_spec_from_dict(sender)
                    for sender in entry["senders"]
                ),
            )
            for entry in data.get("scenarios", [])
        ),
        options=tuple(
            (key, _decode_option(value))
            for key, value in data.get("options", [])
        ),
        backend_module=data.get("backend_module", ""),
        faults=(
            None if data.get("faults") is None
            else injection_schedule_from_dict(data["faults"])
        ),
    )


def fluid_scenario_result_to_dict(scenario: Any) -> Dict[str, Any]:
    """Serialize one fluid scenario result."""
    return {
        "trace": dcqcn_result_to_dict(scenario.trace),
        "timelines": {
            name: timeline_to_dict(timeline)
            for name, timeline in sorted(scenario.timelines.items())
        },
    }


def fluid_scenario_result_from_dict(data: Dict[str, Any]) -> Any:
    """Deserialize one fluid scenario result."""
    from .runner.spec import FluidScenarioResult

    return FluidScenarioResult(
        trace=dcqcn_result_from_dict(data["trace"]),
        timelines={
            name: timeline_from_dict(entry)
            for name, entry in data["timelines"].items()
        },
    )


def run_result_to_dict(result: Any) -> Dict[str, Any]:
    """Serialize a :class:`repro.runner.spec.RunResult`.

    The ``data`` payload must already be JSON-able; backend adapters
    keep it that way by construction.
    """
    return {
        "version": FORMAT_VERSION,
        "spec_hash": result.spec_hash,
        "backend": result.backend,
        "label": result.label,
        "phase": (
            None if result.phase is None
            else simulation_result_to_dict(result.phase)
        ),
        "fluid": {
            name: fluid_scenario_result_to_dict(scenario)
            for name, scenario in sorted(result.fluid.items())
        },
        "data": result.data,
    }


def run_result_from_dict(data: Dict[str, Any]) -> Any:
    """Deserialize a run result."""
    from .runner.spec import RunResult

    _check_version(data)
    return RunResult(
        spec_hash=data["spec_hash"],
        backend=data["backend"],
        label=data.get("label", ""),
        phase=(
            None if data.get("phase") is None
            else simulation_result_from_dict(data["phase"])
        ),
        fluid={
            name: fluid_scenario_result_from_dict(entry)
            for name, entry in data.get("fluid", {}).items()
        },
        data=dict(data.get("data", {})),
    )


def _check_version(data: Dict[str, Any]) -> None:
    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ConfigError(
            f"unsupported format version {version} (expected "
            f"{FORMAT_VERSION})"
        )
