"""repro — reproduction of "Congestion Control in Machine Learning
Clusters" (HotNets '22).

Public API re-exports the pieces a downstream user needs: the geometric
abstraction (:mod:`repro.core`), workload models (:mod:`repro.workloads`),
the simulators (:mod:`repro.net`, :mod:`repro.cc`), the three §4 mechanisms
(:mod:`repro.mechanisms`) and the compatibility-aware scheduler
(:mod:`repro.scheduler`).

Quickstart::

    from repro import (
        CompatibilityChecker, JobSpec, PhaseLevelSimulator,
        Topology, make_policy, gbps, ms,
    )

    j1 = JobSpec("j1", compute_time=ms(100), comm_bytes=ms(110) * gbps(42))
    j2 = JobSpec("j2", compute_time=ms(100), comm_bytes=ms(110) * gbps(42))

    result = CompatibilityChecker().check([j1, j2])
    print(result.compatible, result.rotations)
"""

from .errors import (
    ReproError,
    ConfigError,
    SimulationError,
    TopologyError,
    RoutingError,
    AllocationError,
    WorkloadError,
    GeometryError,
    CompatibilityError,
    PlacementError,
    CalibrationError,
)
from .units import gbps, mbps, ms, us, seconds, to_gbps, to_milliseconds
from .net import (
    Topology,
    NodeKind,
    Link,
    Router,
    EcmpRouter,
    Flow,
    FluidAllocator,
    PhaseLevelSimulator,
    SimulationResult,
)
from .cc import (
    SharePolicy,
    FairSharing,
    StaticWeighted,
    AdaptiveUnfair,
    PrioritySharing,
    DcqcnParams,
    DcqcnFluidSimulator,
    calibrate_timer_weights,
    make_policy,
)
from .workloads import (
    JobSpec,
    ModelSpec,
    MODEL_ZOO,
    WorkloadGenerator,
    paper_profile,
    figure2_vgg19_pair,
    figure3_vgg16,
    table1_groups,
)
from .core import (
    Arc,
    ArcSet,
    Gate,
    IterationSample,
    JobLifecycle,
    JobState,
    JobTimeline,
    OnOffSource,
    JobCircle,
    UnifiedCircle,
    CompatibilityChecker,
    CompatibilityResult,
    ClusterCompatibilityProblem,
    ClusterCompatibilityResult,
    TuningSuggestion,
    suggest_compute_scaling,
    rotation_to_degrees,
    communication_schedule,
)
from .mechanisms import (
    adaptive_policy,
    timer_skew_policy,
    aggressiveness_policy,
    PriorityAssigner,
    PeriodicGate,
    FlowSchedule,
    CongestionFreeController,
    DeploymentPlan,
    Mechanism,
)
from .telemetry import (
    Telemetry,
    TraceRecord,
    Registry,
)
from .telemetry import NULL as NULL_TELEMETRY
from .telemetry import current as current_telemetry
from .telemetry import use as use_telemetry
from .io import load_workload, save_workload, load_trace, save_trace
from .scheduler import (
    ClusterState,
    PlacedJob,
    RandomPlacement,
    ConsolidatedPlacement,
    CompatibilityAwarePlacement,
    ClusterSimulation,
    ClusterReport,
)
from .analysis import (
    summarize,
    speedup,
    empirical_cdf,
    ascii_table,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError", "ConfigError", "SimulationError", "TopologyError",
    "RoutingError", "AllocationError", "WorkloadError", "GeometryError",
    "CompatibilityError", "PlacementError", "CalibrationError",
    # units
    "gbps", "mbps", "ms", "us", "seconds", "to_gbps", "to_milliseconds",
    # net
    "Topology", "NodeKind", "Link", "Router", "EcmpRouter", "Flow",
    "FluidAllocator", "PhaseLevelSimulator", "SimulationResult",
    # cc
    "SharePolicy", "FairSharing", "StaticWeighted", "AdaptiveUnfair",
    "PrioritySharing", "DcqcnParams", "DcqcnFluidSimulator",
    "calibrate_timer_weights", "make_policy",
    # workloads
    "JobSpec", "ModelSpec", "MODEL_ZOO", "WorkloadGenerator",
    "paper_profile", "figure2_vgg19_pair", "figure3_vgg16", "table1_groups",
    # core
    "Arc", "ArcSet", "JobCircle", "UnifiedCircle",
    "Gate", "IterationSample", "JobLifecycle", "JobState",
    "JobTimeline", "OnOffSource",
    "CompatibilityChecker", "CompatibilityResult",
    "ClusterCompatibilityProblem", "ClusterCompatibilityResult",
    "TuningSuggestion", "suggest_compute_scaling",
    "rotation_to_degrees", "communication_schedule",
    # mechanisms
    "adaptive_policy", "timer_skew_policy", "aggressiveness_policy",
    "PriorityAssigner", "PeriodicGate", "FlowSchedule",
    "CongestionFreeController", "DeploymentPlan", "Mechanism",
    # telemetry
    "Telemetry", "TraceRecord", "Registry", "NULL_TELEMETRY",
    "current_telemetry", "use_telemetry",
    # io
    "load_workload", "save_workload", "load_trace", "save_trace",
    # scheduler
    "ClusterState", "PlacedJob", "RandomPlacement",
    "ConsolidatedPlacement", "CompatibilityAwarePlacement",
    "ClusterSimulation", "ClusterReport",
    # analysis
    "summarize", "speedup", "empirical_cdf", "ascii_table",
    "__version__",
]
