"""Unit conventions and conversion helpers.

The library uses a small, consistent set of base units:

* **time** — seconds (``float``) inside the simulators; the geometric
  abstraction quantizes to integer *ticks* (microseconds by default) so that
  least-common-multiple arithmetic is exact (see :mod:`repro.core`).
* **data** — bytes (``float`` in the fluid models, since fluid flows are
  infinitely divisible).
* **rate** — bytes per second.

Helpers convert from human-friendly units (milliseconds, gigabits per
second) at API boundaries. Keeping conversions in one module avoids the
classic factor-of-8 and factor-of-1000 bugs in networking code.
"""

from __future__ import annotations

from .errors import ConfigError

#: Number of geometry ticks per second (tick = 1 microsecond).
TICKS_PER_SECOND = 1_000_000

#: Bits per byte, named to keep the factor of 8 visible at call sites.
BITS_PER_BYTE = 8


# --------------------------------------------------------------------------
# Time conversions (to seconds)
# --------------------------------------------------------------------------

def seconds(value: float) -> float:
    """Identity helper; documents that ``value`` is already in seconds."""
    return float(value)


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return float(value) * 1e-3


def microseconds(value: float) -> float:
    """Convert microseconds to seconds."""
    return float(value) * 1e-6


# Short aliases used heavily in experiment configuration.
ms = milliseconds
us = microseconds


def to_milliseconds(time_s: float) -> float:
    """Convert seconds to milliseconds (for reporting)."""
    return time_s * 1e3


def to_microseconds(time_s: float) -> float:
    """Convert seconds to microseconds (for reporting)."""
    return time_s * 1e6


# --------------------------------------------------------------------------
# Geometry tick quantization
# --------------------------------------------------------------------------

def seconds_to_ticks(time_s: float) -> int:
    """Quantize a duration in seconds to integer geometry ticks.

    Rounds to the nearest tick. Raises :class:`ConfigError` for negative
    durations because arcs and perimeters must be non-negative.
    """
    if time_s < 0:
        raise ConfigError(f"duration must be non-negative, got {time_s}")
    return round(time_s * TICKS_PER_SECOND)


def ticks_to_seconds(ticks: int) -> float:
    """Convert integer geometry ticks back to seconds."""
    return ticks / TICKS_PER_SECOND


# --------------------------------------------------------------------------
# Rate conversions (to bytes/second)
# --------------------------------------------------------------------------

def gbps(value: float) -> float:
    """Convert gigabits per second to bytes per second."""
    return float(value) * 1e9 / BITS_PER_BYTE


def mbps(value: float) -> float:
    """Convert megabits per second to bytes per second."""
    return float(value) * 1e6 / BITS_PER_BYTE


def to_gbps(rate_bytes_per_s: float) -> float:
    """Convert bytes per second to gigabits per second (for reporting)."""
    return rate_bytes_per_s * BITS_PER_BYTE / 1e9


# --------------------------------------------------------------------------
# Data-size conversions (to bytes)
# --------------------------------------------------------------------------

def kib(value: float) -> float:
    """Convert kibibytes to bytes."""
    return float(value) * 1024


def mib(value: float) -> float:
    """Convert mebibytes to bytes."""
    return float(value) * 1024 ** 2


def gib(value: float) -> float:
    """Convert gibibytes to bytes."""
    return float(value) * 1024 ** 3


def megabytes(value: float) -> float:
    """Convert decimal megabytes (1e6 bytes) to bytes."""
    return float(value) * 1e6


def to_megabytes(size_bytes: float) -> float:
    """Convert bytes to decimal megabytes (for reporting)."""
    return size_bytes / 1e6
