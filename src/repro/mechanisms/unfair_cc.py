"""Direction (i): unfair transport protocols.

Two flavours:

* :func:`adaptive_policy` — the paper's adaptively-unfair DCQCN rule in
  fluid form (progress-weighted shares). Safe to deploy cluster-wide: it
  interleaves compatible jobs and degrades to fair sharing for
  incompatible ones, because the aggressiveness advantage alternates.
* :func:`timer_skew_policy` — the testbed trick: per-job DCQCN increase
  timers. The fine-grained DCQCN model measures the steady-state share
  each timer earns and the result is expressed as static weights for the
  phase-level simulator, bridging the two fidelities.
* :func:`aggressiveness_policy` — Table 1's protocol: a pure ordering of
  jobs by aggressiveness with a fixed ratio between ranks.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..cc.adaptive import AdaptiveUnfair
from ..cc.dcqcn import DcqcnParams, calibrate_timer_weights
from ..cc.weighted import DEFAULT_AGGRESSIVENESS_RATIO, StaticWeighted
from ..errors import ConfigError
from ..units import gbps


def adaptive_policy(
    gain: float = 1.0,
    exponent: float = 1.0,
    reallocation_interval: float = 2e-3,
) -> AdaptiveUnfair:
    """The paper's §4(i) rule with recommended deployment settings.

    ``gain=1, exponent=1`` is the literal
    ``R_AI * (1 + Data_sent / Data_comm_phase)`` scaling; a higher exponent
    sharpens the head start of nearly-finished phases, which speeds up
    convergence of the sliding effect at the cost of burstier rates.
    """
    return AdaptiveUnfair(
        gain=gain,
        exponent=exponent,
        reallocation_interval=reallocation_interval,
    )


def aggressiveness_policy(
    job_ids: Sequence[str],
    ratio: float = DEFAULT_AGGRESSIVENESS_RATIO,
) -> StaticWeighted:
    """Static unfairness by rank — Table 1's experimental protocol."""
    return StaticWeighted.from_aggressiveness_order(job_ids, ratio)


def timer_skew_policy(
    timers_by_job: Dict[str, float],
    capacity: float = gbps(50),
    params: Optional[DcqcnParams] = None,
    calibration_duration: float = 0.25,
    seed: int = 0,
) -> StaticWeighted:
    """Weights equivalent to running per-job DCQCN increase timers.

    Runs the fine-grained DCQCN model once per distinct timer value and
    converts the measured steady-state shares into
    :class:`~repro.cc.weighted.StaticWeighted` weights, so phase-level
    simulations inherit exactly the unfairness the ``T`` skew produces.

    Args:
        timers_by_job: Each job's DCQCN rate-increase timer, seconds.
        capacity: Bottleneck capacity used during calibration.
        params: Base DCQCN parameters (defaults scaled to ``capacity``).
        calibration_duration: Seconds of fine-grained simulation.
        seed: Calibration RNG seed.
    """
    if not timers_by_job:
        raise ConfigError("timers_by_job must not be empty")
    timers = sorted(set(timers_by_job.values()))
    if len(timers) == 1:
        # One distinct timer means fair sharing: all weights equal.
        return StaticWeighted({job_id: 1.0 for job_id in timers_by_job})
    weight_by_timer = calibrate_timer_weights(
        timers,
        capacity=capacity,
        duration=calibration_duration,
        seed=seed,
        params=params,
    )
    return StaticWeighted(
        {
            job_id: weight_by_timer[timer]
            for job_id, timer in timers_by_job.items()
        }
    )
