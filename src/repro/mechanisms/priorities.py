"""Direction (ii): per-job switch priority queues.

The scheduler assigns a *unique* priority to each job sharing a link;
end-hosts mark packets and the switch serves classes strictly, mimicking
extreme unfairness without touching congestion control. The paper flags
one practical constraint — switches expose only a few priority queues —
so :class:`PriorityAssigner` models a fixed queue budget and reports when
jobs must share the lowest class (losing the interleaving guarantee
between those jobs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..cc.priority import PrioritySharing
from ..errors import ConfigError

#: Typical number of hardware priority queues per port.
DEFAULT_QUEUE_BUDGET = 8


@dataclass(frozen=True)
class PriorityAssignment:
    """Result of assigning queue priorities to jobs on one link.

    Attributes:
        priorities: Per-job priority class (higher served first).
        overflowed: Jobs that could not get a unique class and share the
            lowest one; between these jobs sharing is plain fair and the
            paper's interleaving guarantee does not hold.
    """

    priorities: Dict[str, int]
    overflowed: List[str]

    def policy(self) -> PrioritySharing:
        """A share policy enforcing this assignment."""
        return PrioritySharing(self.priorities)


class PriorityAssigner:
    """Assigns unique per-job priorities under a hardware queue budget."""

    def __init__(self, n_queues: int = DEFAULT_QUEUE_BUDGET) -> None:
        if n_queues < 1:
            raise ConfigError(f"n_queues must be >= 1, got {n_queues}")
        self.n_queues = n_queues

    def assign(self, job_ids: Sequence[str]) -> PriorityAssignment:
        """Assign priorities in the given order (first = highest).

        The paper notes the actual priority values can be arbitrary as
        long as they are unique per link; we use descending integers. Jobs
        beyond the queue budget collapse into class 0.
        """
        if len(set(job_ids)) != len(job_ids):
            raise ConfigError("job ids must be unique")
        priorities: Dict[str, int] = {}
        overflowed: List[str] = []
        for rank, job_id in enumerate(job_ids):
            if rank < self.n_queues - 1 or len(job_ids) <= self.n_queues:
                priorities[job_id] = len(job_ids) - rank
            else:
                priorities[job_id] = 0
                overflowed.append(job_id)
        return PriorityAssignment(priorities=priorities, overflowed=overflowed)
