"""Direction (iii): precise flow scheduling.

The solver's rotation angle for each job "corresponds to a time-shift for
the communication phase" (§4). A central scheduler can therefore release
each job's flows only inside its assigned windows — TDMA over the unified
period — and the communication phases never collide, with no unfairness in
the transport at all. The paper's caveat (precise scheduling of short
transfers needs tight clock sync) shows up here as the gate's slack
parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from ..core.circle import JobCircle
from ..core.compatibility import CompatibilityResult
from ..core.rotation import CommWindow, communication_schedule
from ..errors import ConfigError


class PeriodicGate:
    """Admits a job's communication only inside its periodic windows.

    A window ``[start, start + length)`` repeats every ``period`` ticks of
    the unified circle. A communication phase may begin anywhere within
    the first ``slack`` fraction of a window; otherwise the gate holds it
    until the next window opens.
    """

    def __init__(
        self,
        windows: Sequence[CommWindow],
        ticks_per_second: float,
        slack: float = 1.0,
        epoch: float = 0.0,
    ) -> None:
        if not windows:
            raise ConfigError("a gate needs at least one window")
        if ticks_per_second <= 0:
            raise ConfigError("ticks_per_second must be > 0")
        if not 0.0 < slack <= 1.0:
            raise ConfigError(f"slack must be in (0, 1], got {slack}")
        period_ticks = windows[0].period
        if any(w.period != period_ticks for w in windows):
            raise ConfigError("windows must share one period")
        self.period = period_ticks / ticks_per_second
        self.epoch = epoch
        self._openings: List[tuple[float, float]] = sorted(
            (
                window.start / ticks_per_second,
                (window.start + slack * window.length) / ticks_per_second,
            )
            for window in windows
        )

    def to_state(self) -> Dict[str, object]:
        """The gate's resolved timing state (seconds, not ticks)."""
        return {
            "period": self.period,
            "epoch": self.epoch,
            "openings": [list(pair) for pair in self._openings],
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "PeriodicGate":
        """Rebuild a gate from :meth:`to_state` output."""
        gate = cls.__new__(cls)
        gate.period = float(state["period"])
        gate.epoch = float(state["epoch"])
        gate._openings = [
            (float(start), float(end)) for start, end in state["openings"]
        ]
        if not gate._openings or gate.period <= 0:
            raise ConfigError("invalid gate state")
        return gate

    def __reduce__(self):
        # Pickle via the resolved state: gates cross process boundaries
        # when the runner fans flow-scheduling specs out to workers.
        return (PeriodicGate.from_state, (self.to_state(),))

    def __call__(self, job_id: str, now: float) -> float:
        """Earliest admissible communication start at or after ``now``."""
        phase = (now - self.epoch) % self.period
        for start, end in self._openings:
            if start <= phase < end:
                return now
            if phase < start:
                return now + (start - phase)
        # Past the last opening: wait for the first one next period.
        first_start = self._openings[0][0]
        return now + (self.period - phase) + first_start


@dataclass
class FlowSchedule:
    """Per-job communication windows derived from solver rotations."""

    windows: Dict[str, List[CommWindow]]
    ticks_per_second: float

    @classmethod
    def from_rotations(
        cls,
        circles: Sequence[JobCircle],
        rotations: Mapping[str, int],
        ticks_per_second: float,
    ) -> "FlowSchedule":
        """Build the schedule for given circles and rotations."""
        return cls(
            windows=communication_schedule(circles, rotations),
            ticks_per_second=ticks_per_second,
        )

    @classmethod
    def from_compatibility(
        cls,
        circles: Sequence[JobCircle],
        result: CompatibilityResult,
        ticks_per_second: float,
    ) -> "FlowSchedule":
        """Build the schedule from a compatibility verdict.

        Raises:
            ConfigError: if the jobs were not found compatible — scheduling
                incompatible jobs into overlapping windows defeats the
                mechanism.
        """
        if not result.compatible:
            raise ConfigError(
                "flow scheduling requires a compatible job set"
            )
        return cls.from_rotations(
            circles, result.rotations, ticks_per_second
        )

    def gate_for(
        self, job_id: str, slack: float = 1.0, epoch: float = 0.0
    ) -> PeriodicGate:
        """The admission gate enforcing ``job_id``'s windows."""
        if job_id not in self.windows:
            raise ConfigError(f"no windows for job {job_id!r}")
        return PeriodicGate(
            self.windows[job_id],
            self.ticks_per_second,
            slack=slack,
            epoch=epoch,
        )

    def gates(self, slack: float = 1.0) -> Dict[str, PeriodicGate]:
        """Gates for every scheduled job."""
        return {
            job_id: self.gate_for(job_id, slack=slack)
            for job_id in self.windows
        }
