"""The congestion-free cluster controller — §4's end-to-end vision.

The paper's workflow: profile jobs → place compatible jobs on links →
"artificially create the desirable side effect of unfairness" with one of
the three mechanisms. :class:`CongestionFreeController` automates the
last step for a placed cluster:

1. audit every contended link (and, with ``cluster_level``, the global
   single-rotation constraint across links);
2. for fully compatible contention pick the requested mechanism —
   flow-scheduling gates from the solver's rotations, unique switch
   priorities, or a static weight order;
3. for incompatible contention fall back to the adaptively-unfair policy,
   which is safe by construction (it degrades to fair sharing).

The result is a :class:`DeploymentPlan` that can drive
:class:`~repro.scheduler.simulation.ClusterSimulation` directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..cc.adaptive import AdaptiveUnfair
from ..cc.base import SharePolicy
from ..cc.priority import PrioritySharing
from ..cc.weighted import StaticWeighted
from ..core.circle import JobCircle
from ..core.cluster_compat import ClusterCompatibilityProblem
from ..core.compatibility import CompatibilityChecker
from ..errors import ConfigError
from ..net.phasesim import Gate
from .flow_scheduling import FlowSchedule
from .priorities import PriorityAssigner

if TYPE_CHECKING:  # annotation-only; `mechanisms` sits below `scheduler`
    from ..scheduler.cluster import ClusterState


class Mechanism(enum.Enum):
    """Which §4 direction to deploy for compatible contention."""

    FLOW_SCHEDULING = "flow-scheduling"
    PRIORITIES = "priorities"
    WEIGHTED = "weighted"
    ADAPTIVE = "adaptive"


@dataclass
class DeploymentPlan:
    """What the controller decided for one cluster snapshot.

    Attributes:
        policy: The share policy to run cluster-wide.
        gates: Per-job admission gates (flow scheduling only).
        compatible_links: Contended links whose sharers are fully
            compatible (the mechanism guarantees solo speed there).
        incompatible_links: Contended links left to the safe fallback.
        rotations: Solver rotations backing the gates, ticks.
        mechanism: The mechanism deployed for compatible contention.
    """

    policy: SharePolicy
    gates: Dict[str, Gate] = field(default_factory=dict)
    compatible_links: List[str] = field(default_factory=list)
    incompatible_links: List[str] = field(default_factory=list)
    rotations: Dict[str, int] = field(default_factory=dict)
    mechanism: Mechanism = Mechanism.ADAPTIVE

    @property
    def fully_congestion_free(self) -> bool:
        """Whether every contended link got the solo-speed guarantee."""
        return not self.incompatible_links


class CongestionFreeController:
    """Audits a placed cluster and deploys a §4 mechanism."""

    def __init__(
        self,
        checker: Optional[CompatibilityChecker] = None,
        n_priority_queues: int = 8,
    ) -> None:
        self.checker = checker if checker is not None else CompatibilityChecker()
        self.n_priority_queues = n_priority_queues

    def plan(
        self,
        cluster: ClusterState,
        mechanism: Mechanism = Mechanism.FLOW_SCHEDULING,
        cluster_level: bool = True,
    ) -> DeploymentPlan:
        """Decide how to run the cluster's current placement.

        Args:
            cluster: The placed cluster to audit.
            mechanism: Preferred mechanism for compatible contention.
            cluster_level: Solve the §5 global single-rotation problem
                (recommended); with False only per-link verdicts are used
                and flow scheduling falls back to priorities, because
                per-link rotations need not agree across links.
        """
        network_jobs = [job for job in cluster.jobs if job.uses_network]
        circles = {
            job.job_id: self.checker.circle(job.spec)
            for job in network_jobs
        }
        contended = {
            link: sorted(sharers)
            for link, sharers in cluster.link_sharing().items()
            if len(sharers) > 1
        }
        if not contended:
            return DeploymentPlan(
                policy=AdaptiveUnfair(), mechanism=Mechanism.ADAPTIVE
            )

        compatible_links: List[str] = []
        incompatible_links: List[str] = []
        for link, sharers in contended.items():
            verdict = self.checker.check_circles(
                [circles[job_id] for job_id in sharers]
            )
            (compatible_links if verdict.compatible
             else incompatible_links).append(link)

        rotations: Dict[str, int] = {}
        globally_clean = False
        if cluster_level and not incompatible_links:
            problem = ClusterCompatibilityProblem.from_assignments(
                list(circles.values()),
                {
                    job.job_id: [link.name for link in job.links]
                    for job in network_jobs
                },
            )
            outcome = problem.solve()
            globally_clean = outcome.compatible
            if globally_clean:
                rotations = dict(outcome.rotations)
            else:
                # Some link set is per-link compatible but no single
                # rotation satisfies all links at once.
                incompatible_links = sorted(contended)
                compatible_links = []

        return self._deploy(
            mechanism,
            network_jobs,
            circles,
            rotations,
            compatible_links,
            incompatible_links,
            globally_clean,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _deploy(
        self,
        mechanism: Mechanism,
        network_jobs,
        circles: Dict[str, JobCircle],
        rotations: Dict[str, int],
        compatible_links: List[str],
        incompatible_links: List[str],
        globally_clean: bool,
    ) -> DeploymentPlan:
        job_ids = [job.job_id for job in network_jobs]
        if incompatible_links or not compatible_links:
            # Safe fallback everywhere: adaptive unfairness never hurts.
            return DeploymentPlan(
                policy=AdaptiveUnfair(),
                compatible_links=compatible_links,
                incompatible_links=incompatible_links,
                mechanism=Mechanism.ADAPTIVE,
            )
        if mechanism is Mechanism.FLOW_SCHEDULING and globally_clean:
            schedule = FlowSchedule.from_rotations(
                [circles[job_id] for job_id in job_ids],
                rotations,
                self.checker.ticks_per_second,
            )
            return DeploymentPlan(
                policy=AdaptiveUnfair(),  # harmless under disjoint windows
                gates=schedule.gates(),
                compatible_links=compatible_links,
                incompatible_links=incompatible_links,
                rotations=rotations,
                mechanism=Mechanism.FLOW_SCHEDULING,
            )
        if mechanism in (Mechanism.FLOW_SCHEDULING, Mechanism.PRIORITIES):
            assignment = PriorityAssigner(self.n_priority_queues).assign(
                job_ids
            )
            return DeploymentPlan(
                policy=assignment.policy(),
                compatible_links=compatible_links,
                incompatible_links=incompatible_links,
                rotations=rotations,
                mechanism=Mechanism.PRIORITIES,
            )
        if mechanism is Mechanism.WEIGHTED:
            return DeploymentPlan(
                policy=StaticWeighted.from_aggressiveness_order(job_ids),
                compatible_links=compatible_links,
                incompatible_links=incompatible_links,
                rotations=rotations,
                mechanism=Mechanism.WEIGHTED,
            )
        if mechanism is Mechanism.ADAPTIVE:
            return DeploymentPlan(
                policy=AdaptiveUnfair(),
                compatible_links=compatible_links,
                incompatible_links=incompatible_links,
                rotations=rotations,
                mechanism=Mechanism.ADAPTIVE,
            )
        raise ConfigError(f"unsupported mechanism {mechanism}")
