"""The paper's three §4 mechanisms for congestion-free sharing.

Once compatible jobs are placed on a link, the provider must *create* the
desirable side effect of unfairness. Three interchangeable ways:

* :mod:`repro.mechanisms.unfair_cc` — deploy an (adaptively) unfair
  congestion control; includes the calibration bridge that turns a DCQCN
  timer skew into equivalent share weights.
* :mod:`repro.mechanisms.priorities` — assign unique switch priorities per
  job (limited priority queues handled explicitly).
* :mod:`repro.mechanisms.flow_scheduling` — convert solver rotations into
  precise communication windows enforced by a gate.
"""

from .unfair_cc import (
    adaptive_policy,
    timer_skew_policy,
    aggressiveness_policy,
)
from .priorities import PriorityAssigner
from .flow_scheduling import PeriodicGate, FlowSchedule
from .controller import (
    CongestionFreeController,
    DeploymentPlan,
    Mechanism,
)

__all__ = [
    "adaptive_policy",
    "timer_skew_policy",
    "aggressiveness_policy",
    "PriorityAssigner",
    "PeriodicGate",
    "FlowSchedule",
    "CongestionFreeController",
    "DeploymentPlan",
    "Mechanism",
]
