"""Time-series recording for simulation probes.

Two containers cover the library's needs:

* :class:`TimeSeries` — irregular samples ``(t, value)``, e.g. measured
  per-iteration times.
* :class:`StepFunction` — a piecewise-constant signal, e.g. the rate a flow
  holds between allocation changes. Supports exact time-integration, which
  is how the phase simulator computes bytes transferred and how utilization
  plots are produced without sampling error.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import SimulationError


class TimeSeries:
    """An append-only series of ``(time, value)`` samples."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def record(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise SimulationError(
                f"time series {self.name!r} sampled out of order: "
                f"{time} after {self._times[-1]}"
            )
        self._times.append(time)
        self._values.append(value)

    @classmethod
    def from_arrays(
        cls,
        name: str,
        times: Iterable[float],
        values: Iterable[float],
    ) -> "TimeSeries":
        """Build a series from already-collected samples in one shot.

        The fixed-step engines buffer their sample rows and materialize
        the series after the run instead of appending inside the hot
        loop. Times must be non-decreasing, as with :meth:`record`.
        """
        series = cls(name)
        series._times = [float(t) for t in times]
        series._values = [float(v) for v in values]
        for earlier, later in zip(series._times, series._times[1:]):
            if later < earlier:
                raise SimulationError(
                    f"time series {name!r} sampled out of order: "
                    f"{later} after {earlier}"
                )
        return series

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> np.ndarray:
        """Sample times as an array."""
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        """Sample values as an array."""
        return np.asarray(self._values, dtype=float)


class StepFunction:
    """A right-continuous piecewise-constant function of time.

    The function holds ``initial`` before the first breakpoint; setting a
    value at time ``t`` makes the function equal to that value on
    ``[t, next breakpoint)``.
    """

    def __init__(self, initial: float = 0.0, name: str = "") -> None:
        self.name = name
        self._initial = float(initial)
        self._times: list[float] = []
        self._values: list[float] = []

    def set(self, time: float, value: float) -> None:
        """Set the value from ``time`` onward; times must be non-decreasing.

        Setting a new value at an existing last breakpoint overwrites it,
        which lets callers update several quantities at one instant.
        """
        if self._times and time < self._times[-1]:
            raise SimulationError(
                f"step function {self.name!r} set out of order: "
                f"{time} after {self._times[-1]}"
            )
        if self._times and time == self._times[-1]:
            self._values[-1] = float(value)
            return
        # Skip no-op transitions to keep the representation minimal.
        current = self._values[-1] if self._values else self._initial
        if value == current:
            return
        self._times.append(float(time))
        self._values.append(float(value))

    def value_at(self, time: float) -> float:
        """Evaluate the function at ``time`` (right-continuous)."""
        index = bisect.bisect_right(self._times, time)
        if index == 0:
            return self._initial
        return self._values[index - 1]

    def integrate(self, start: float, end: float) -> float:
        """Exact integral of the function over ``[start, end]``."""
        if end < start:
            raise SimulationError(f"bad integration window [{start}, {end}]")
        if end == start:
            return 0.0
        total = 0.0
        lo = bisect.bisect_right(self._times, start)
        cursor = start
        value = self._values[lo - 1] if lo > 0 else self._initial
        for index in range(lo, len(self._times)):
            breakpoint_time = self._times[index]
            if breakpoint_time >= end:
                break
            total += value * (breakpoint_time - cursor)
            cursor = breakpoint_time
            value = self._values[index]
        total += value * (end - cursor)
        return total

    def breakpoints(self) -> Sequence[tuple[float, float]]:
        """All ``(time, value)`` transitions, for plotting."""
        return list(zip(self._times, self._values))

    def sample(self, times: Iterable[float]) -> np.ndarray:
        """Evaluate the function at each time in ``times``."""
        return np.asarray([self.value_at(t) for t in times], dtype=float)

    def last_value(self) -> float:
        """The value after the final breakpoint."""
        return self._values[-1] if self._values else self._initial
