"""Named, independently seeded random streams.

Simulations that draw randomness from one shared generator become
irreproducible the moment a component adds or removes a draw. Each model
component instead asks :class:`RandomStreams` for a stream by name; streams
are derived from the root seed with :class:`numpy.random.SeedSequence`, so
adding a new stream never perturbs existing ones.
"""

from __future__ import annotations

import numpy as np


class RandomStreams:
    """A factory of named, deterministic :class:`numpy.random.Generator`."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same ``(seed, name)`` pair always yields the same sequence.
        """
        if name not in self._streams:
            entropy = (self._seed, _stable_hash(name))
            self._streams[name] = np.random.default_rng(
                np.random.SeedSequence(entropy)
            )
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Derive an independent child factory (e.g. per simulation run)."""
        return RandomStreams(_stable_hash((self._seed, name)))


def _stable_hash(value) -> int:
    """A deterministic 64-bit hash (``hash()`` is salted per process)."""
    import hashlib

    digest = hashlib.sha256(repr(value).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")
