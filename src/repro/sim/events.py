"""Event objects and the pending-event queue.

Events are ordered by ``(time, priority, sequence)``. The sequence number
breaks ties deterministically in FIFO order, which makes simulations
reproducible regardless of heap internals. Cancellation is lazy: a cancelled
event stays in the heap and is skipped when popped, which keeps both
``cancel`` and ``push`` O(log n) amortized.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from ..errors import SimulationError


class Event:
    """A scheduled callback.

    Attributes:
        time: Absolute simulation time at which the event fires.
        priority: Secondary ordering key; lower fires first at equal time.
        seq: Monotonic tie-breaker assigned by the queue.
        fn: Callable invoked when the event fires.
        args: Positional arguments passed to ``fn``.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled", "executed")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.executed = False

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"Event(t={self.time:.9f}, fn={name}, {state})"


class EventQueue:
    """Min-heap of pending events with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time`` and return the event."""
        event = Event(time, priority, next(self._counter), fn, args)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event.

        Idempotent, and a no-op for events that already executed — model
        code may hold stale handles after an event fires.
        """
        if not event.cancelled and not event.executed:
            event.cancelled = True
            self._live -= 1

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            SimulationError: if the queue has no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                event.executed = True
                return event
        raise SimulationError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
