"""The simulator loop.

:class:`Simulator` advances a virtual clock by executing events in
timestamp order. It is callback-based rather than coroutine-based: model
code schedules plain callables. This keeps the engine easy to reason about
and keeps stack traces flat, at the price of models keeping their own state
machines — which the fluid models in this library need anyway.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import SimulationError
from ..telemetry import session as _telemetry_session
from ..telemetry.trace import KIND_DISPATCH
from .events import Event, EventQueue

#: Relative tolerance used when comparing simulation times.
TIME_EPSILON = 1e-12


class Simulator:
    """A discrete-event simulator with an absolute clock in seconds.

    Args:
        telemetry: Optional :class:`repro.telemetry.Telemetry` session.
            ``None`` inherits the ambient session (disabled unless a
            ``telemetry.use(...)`` block or run recorder is active).
            When enabled, every dispatched event is recorded to the
            trace and counted in the metrics registry.
    """

    def __init__(
        self,
        telemetry: Optional["_telemetry_session.Telemetry"] = None,
    ) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self.telemetry = _telemetry_session.resolve(telemetry)
        self._event_counter = self.telemetry.counter("sim.events")

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far (for diagnostics)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live events waiting in the queue."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Raises:
            SimulationError: if ``delay`` is negative beyond tolerance.
        """
        if delay < -TIME_EPSILON:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        return self._queue.push(self._now + max(delay, 0.0), fn, args, priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time``.

        Raises:
            SimulationError: if ``time`` precedes the current clock.
        """
        if time < self._now - TIME_EPSILON:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        return self._queue.push(max(time, self._now), fn, args, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (safe to call more than once)."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single earliest event.

        Returns:
            ``True`` if an event ran, ``False`` if the queue was empty.
        """
        if not self._queue:
            return False
        event = self._queue.pop()
        if event.time < self._now - TIME_EPSILON:
            raise SimulationError(
                f"event time {event.time} precedes clock {self._now}"
            )
        self._now = max(self._now, event.time)
        self._events_executed += 1
        if self.telemetry.enabled:
            self._event_counter.inc()
            self.telemetry.event(
                KIND_DISPATCH,
                t=event.time,
                fn=getattr(event.fn, "__qualname__", type(event.fn).__name__),
                priority=event.priority,
            )
        event.fn(*event.args)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run events until the queue drains, the clock passes ``until``,
        or ``max_events`` have executed — whichever comes first.

        When ``until`` is given, the clock is advanced to exactly ``until``
        on return even if the last event fired earlier, so utilization
        probes cover the full horizon.

        Returns:
            The simulation time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue and not self._stopped:
                next_time = self._queue.peek_time()
                if until is not None and next_time is not None and (
                    next_time > until + TIME_EPSILON
                ):
                    break
                if max_events is not None and executed >= max_events:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        if until is not None and not self._stopped:
            self._now = max(self._now, until)
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero."""
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self._queue.clear()
        self._now = 0.0
        self._events_executed = 0
        self._stopped = False
