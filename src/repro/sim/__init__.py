"""Discrete-event simulation engine.

A deliberately small, dependency-free core: an event heap
(:mod:`repro.sim.events`), a simulator loop (:mod:`repro.sim.engine`),
seeded random streams (:mod:`repro.sim.rng`) and time-series probes
(:mod:`repro.sim.trace`). Every simulator in the library — the fine-grained
DCQCN fluid integrator, the phase-level network simulator, and the
cluster-scheduling simulator — runs on this engine.
"""

from .events import Event, EventQueue
from .engine import Simulator
from .rng import RandomStreams
from .trace import TimeSeries, StepFunction

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "RandomStreams",
    "TimeSeries",
    "StepFunction",
]
