"""§4 mechanisms head-to-head: one compatible group, four treatments.

Runs a fully compatible job group (Table 1's group 5) under:

1. fair sharing (the baseline pathology),
2. static weighted unfairness (the testbed's T skew),
3. unique switch priorities (§4 ii),
4. precise flow scheduling from solver rotations (§4 iii),
5. adaptively-unfair congestion control (§4 i).

The paper's claim: for compatible jobs each mechanism should approach the
dedicated-network iteration time; flow scheduling achieves it exactly by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..telemetry import current
from ..analysis.report import ascii_table
from ..cc.adaptive import AdaptiveUnfair
from ..cc.base import SharePolicy
from ..cc.fair import FairSharing
from ..cc.weighted import StaticWeighted
from ..core.compatibility import CompatibilityChecker
from ..mechanisms.flow_scheduling import FlowSchedule
from ..mechanisms.priorities import PriorityAssigner
from ..runner import run_many
from ..workloads.job import JobSpec
from ..workloads.profiles import EFFECTIVE_BOTTLENECK, table1_groups
from .common import phase_spec


@dataclass
class MechanismOutcome:
    """Mean iteration times under one mechanism."""

    mechanism: str
    iteration_ms: Dict[str, float]
    solo_ms: Dict[str, float]

    @property
    def mean_slowdown(self) -> float:
        """Average iteration time over solo, across jobs."""
        ratios = [
            self.iteration_ms[job] / self.solo_ms[job]
            for job in self.iteration_ms
        ]
        return sum(ratios) / len(ratios)


def run(
    specs: Sequence[JobSpec] | None = None,
    n_iterations: int = 60,
    skip: int = 20,
    desync: float = 0.007,
    seed: int = 0,
) -> List[MechanismOutcome]:
    """Run the five treatments on a compatible group."""
    if specs is None:
        specs = table1_groups()[4].specs  # group 5: compatible triple
    job_ids = [spec.job_id for spec in specs]
    solo_ms = {
        spec.job_id: spec.solo_iteration_time(EFFECTIVE_BOTTLENECK) * 1e3
        for spec in specs
    }
    offsets = {spec.job_id: i * desync for i, spec in enumerate(specs)}

    checker = CompatibilityChecker()
    compatibility = checker.check(specs)
    treatments: List[tuple[str, SharePolicy, dict]] = [
        ("fair", FairSharing(), {}),
        (
            "weighted 2:1",
            StaticWeighted.from_aggressiveness_order(job_ids),
            {},
        ),
        (
            "priorities",
            PriorityAssigner().assign(job_ids).policy(),
            {},
        ),
        ("adaptive", AdaptiveUnfair(), {}),
    ]
    # Flow scheduling needs the compatibility certificate.
    if compatibility.compatible:
        schedule = FlowSchedule.from_compatibility(
            checker.circles(specs),
            compatibility,
            ticks_per_second=checker.ticks_per_second,
        )
        treatments.append(
            (
                "flow scheduling",
                FairSharing(),  # with disjoint windows the policy is moot
                {"gates": schedule.gates(), "start_offsets": {}},
            )
        )

    results = run_many(
        [
            phase_spec(
                specs,
                policy,
                n_iterations=n_iterations,
                seed=seed,
                label=f"mechanisms-{name}",
                **{"start_offsets": offsets, **extra},
            )
            for name, policy, extra in treatments
        ]
    )
    outcomes: List[MechanismOutcome] = []
    for (name, _, _), run_result in zip(treatments, results):
        result = run_result.phase
        outcomes.append(
            MechanismOutcome(
                mechanism=name,
                iteration_ms={
                    job: result.mean_iteration_time(job, skip=skip) * 1e3
                    for job in job_ids
                },
                solo_ms=solo_ms,
            )
        )
    return outcomes


def report(outcomes: Sequence[MechanismOutcome]) -> str:
    """Render the mechanism comparison."""
    job_ids = list(outcomes[0].iteration_ms)
    rows = []
    for outcome in outcomes:
        rows.append(
            (
                outcome.mechanism,
                *(f"{outcome.iteration_ms[j]:.0f}" for j in job_ids),
                f"{outcome.mean_slowdown:.3f}",
            )
        )
    rows.append(
        (
            "solo (dedicated)",
            *(f"{outcomes[0].solo_ms[j]:.0f}" for j in job_ids),
            "1.000",
        )
    )
    return ascii_table(
        ["mechanism", *[f"{j} ms" for j in job_ids], "mean slowdown"],
        rows,
        title="S4 mechanisms on a fully compatible group",
    )


def main() -> None:
    """Print the mechanisms comparison."""
    with current().span("experiment.mechanisms"):
        print(report(run()))


if __name__ == "__main__":
    main()
