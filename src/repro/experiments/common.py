"""Shared experiment infrastructure.

Every testbed-style experiment runs on the paper's Figure 1a shape: jobs
whose flows cross the dumbbell bottleneck ``L1``. These helpers describe
that setup as :class:`~repro.runner.spec.RunSpec` objects and execute
them through the runner, so every experiment automatically picks up the
process pool and result cache configured by ``repro-experiments run``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..cc.base import SharePolicy
from ..errors import ConfigError
from ..net.phasesim import Gate, SimulationResult
from ..net.topology import BOTTLENECK, Topology
from ..runner import RunSpec, freeze_mapping, run_many
from ..telemetry import Telemetry
from ..workloads.job import JobSpec
from ..workloads.profiles import EFFECTIVE_BOTTLENECK

__all__ = [
    "BOTTLENECK",  # re-exported from repro.net.topology (single home)
    "PairedRun",
    "dumbbell_for",
    "phase_spec",
    "run_jobs",
]


def dumbbell_for(
    n_jobs: int,
    capacity: float = EFFECTIVE_BOTTLENECK,
) -> Topology:
    """A dumbbell with one host pair per job and bottleneck ``L1``.

    Host NICs match the bottleneck capacity so that ``L1`` is the only
    point of contention, as in the paper's testbed.
    """
    if n_jobs < 1:
        raise ConfigError("need at least one job")
    return Topology.dumbbell(
        hosts_per_side=n_jobs,
        host_capacity=capacity,
        bottleneck_capacity=capacity,
        bottleneck_name=BOTTLENECK,
    )


def phase_spec(
    specs: Sequence[JobSpec],
    policy: SharePolicy,
    n_iterations: int,
    capacity: float = EFFECTIVE_BOTTLENECK,
    start_offsets: Optional[Mapping[str, float]] = None,
    gates: Optional[Mapping[str, Gate]] = None,
    seed: int = 0,
    until: Optional[float] = None,
    label: str = "",
) -> RunSpec:
    """Describe a dumbbell phase-level run as a :class:`RunSpec`.

    Job ``i`` sends from ``ha{i}`` to ``hb{i}``; all flows share ``L1``
    (the phase backend builds the matching dumbbell itself).
    """
    if not specs:
        raise ConfigError("no job specs given")
    return RunSpec(
        backend="phase",
        label=label,
        seed=seed,
        jobs=tuple(specs),
        policy=policy,
        n_iterations=n_iterations,
        capacity=capacity,
        start_offsets=freeze_mapping(start_offsets),
        gates=freeze_mapping(gates),
        until=until,
    )


def run_jobs(
    specs: Sequence[JobSpec],
    policy: SharePolicy,
    n_iterations: int,
    capacity: float = EFFECTIVE_BOTTLENECK,
    start_offsets: Optional[Mapping[str, float]] = None,
    gates: Optional[Mapping[str, Gate]] = None,
    seed: int = 0,
    until: Optional[float] = None,
    telemetry: Optional[Telemetry] = None,
) -> SimulationResult:
    """Run ``specs`` across the dumbbell bottleneck under ``policy``.

    Convenience wrapper building one :func:`phase_spec` and executing it
    through the runner. ``telemetry`` defaults to the ambient session, so
    experiments record automatically under ``repro-experiments run``.
    """
    [result] = run_many(
        [
            phase_spec(
                specs,
                policy,
                n_iterations,
                capacity=capacity,
                start_offsets=start_offsets,
                gates=gates,
                seed=seed,
                until=until,
            )
        ],
        telemetry=telemetry,
        batch=True,
    )
    return result.phase


@dataclass
class PairedRun:
    """A fair run and an unfair run of the same job set."""

    fair: SimulationResult
    unfair: SimulationResult
    job_ids: List[str]

    def mean_ms(self, scenario: str, job_id: str, skip: int = 0) -> float:
        """Mean iteration time in ms for one job in one scenario."""
        result = self.fair if scenario == "fair" else self.unfair
        return result.mean_iteration_time(job_id, skip=skip) * 1e3

    def speedups(self, skip: int = 0) -> Dict[str, float]:
        """Per-job fair/unfair mean-iteration speedups."""
        return {
            job_id: (
                self.fair.mean_iteration_time(job_id, skip=skip)
                / self.unfair.mean_iteration_time(job_id, skip=skip)
            )
            for job_id in self.job_ids
        }
