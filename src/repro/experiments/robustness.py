"""Robustness: how much perturbation does the sliding effect survive?

The paper's headline mechanism — engineered unfairness sliding
*compatible* jobs apart until their communication phases interleave —
assumes a quiet network. This experiment stresses that assumption with
the fault-injection runtime: a bottleneck capacity dip of configurable
magnitude and duration hits both the fair and the unfair run of the
same placement, and the sliding effect is re-measured inside the
perturbed window.

Two placements anchor the comparison:

* **compatible** — the Table 1 group 2 DLRM pair, the paper's cleanest
  sliding win (~1.3x speedup);
* **incompatible** — the Table 1 group 1 BERT/VGG19 pair, where sliding
  never pays off.

Shrinking the bottleneck inflates every job's communication fraction,
so a deep enough dip pushes even a compatible pair past the
compatibility boundary (total communication demand exceeding the
period). Below that boundary the slide *survives* — the fair/unfair
speedup actually grows with the dip, because interleaving is worth more
when bandwidth is scarce. Past it the slide has nothing left to
separate and the speedup collapses. The monotone signature of that
collapse is the **slide efficiency**: the analytically ideal slid
iteration time at the dipped capacity over the measured unfair
iteration time. It sits near 1.0 while the slide holds and decays once
the placement is perturbed into incompatibility; the *collapse level*
reported at the end is the smallest dip whose efficiency falls below
:data:`COLLAPSE_EFFICIENCY`.

Every run flows through :func:`repro.runner.run_many` as a
:class:`~repro.runner.spec.RunSpec` with an attached
:class:`~repro.faults.InjectionSchedule`, so sweeps fan out across
worker processes and land in the result cache like any other
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..telemetry import current
from ..analysis.report import ascii_table
from ..cc.fair import FairSharing
from ..cc.weighted import StaticWeighted
from ..core.timeline import JobTimeline
from ..errors import SimulationError
from ..faults.events import InjectionSchedule, RateChange
from ..runner import run_many
from ..workloads.profiles import EFFECTIVE_BOTTLENECK, table1_groups
from .common import BOTTLENECK, phase_spec

#: When the capacity dip opens, seconds — past the staggered starts so
#: the slide is underway when the perturbation lands.
DIP_START = 2.0

#: Slide-efficiency floor defining "collapse": below this fraction of
#: the ideal slid iteration time, the sliding effect is considered gone.
COLLAPSE_EFFICIENCY = 0.9


def placements() -> Dict[str, Tuple]:
    """The two placements under test, as ``name -> job specs``."""
    groups = {group.name: group for group in table1_groups()}
    return {
        "compatible": tuple(groups["group2"].specs),
        "incompatible": tuple(groups["group1"].specs),
    }


def dip_schedule(
    magnitude: float,
    duration: float,
    start: float = DIP_START,
    horizon: Optional[float] = None,
) -> InjectionSchedule:
    """A single bottleneck capacity dip of ``magnitude`` in [0, 1).

    ``magnitude`` is the fraction of capacity removed: 0 yields an empty
    schedule (the documented no-op, bit-identical to no schedule at
    all), 0.6 leaves 40% of the bottleneck for ``duration`` seconds.
    """
    if magnitude <= 0.0:
        return InjectionSchedule(events=(), horizon=horizon)
    return InjectionSchedule(
        events=(
            RateChange(
                BOTTLENECK, start, start + duration, 1.0 - magnitude
            ),
        ),
        horizon=horizon,
    )


def window_mean(timeline: JobTimeline, start: float, end: float) -> float:
    """Mean duration of iterations fully inside ``[start, end]``, s.

    Raises :class:`~repro.errors.SimulationError` when no iteration
    fits, mirroring the canonical empty-timeline error.
    """
    durations = [
        sample.duration
        for sample in timeline.samples
        if sample.start >= start and sample.end <= end
    ]
    if not durations:
        raise SimulationError(
            f"job {timeline.job_id} has no iterations inside "
            f"[{start:g}, {end:g}]"
        )
    return sum(durations) / len(durations)


@dataclass(frozen=True)
class RobustnessPoint:
    """One grid point: a placement under one perturbation level.

    Attributes:
        speedup: Fair over unfair mean iteration time, measured inside
            the perturbed window only.
        efficiency: Ideal slid iteration time at the dipped capacity
            over the measured unfair iteration time, averaged across
            the placement's jobs. ~1.0 while the slide holds.
    """

    placement: str
    magnitude: float
    duration: float
    speedup: float
    efficiency: float


@dataclass
class RobustnessResult:
    """The full sweep, grouped for reporting."""

    points: List[RobustnessPoint]

    def curve(
        self, placement: str, duration: float
    ) -> List[RobustnessPoint]:
        """One placement's collapse curve at one dip duration."""
        return sorted(
            (
                point
                for point in self.points
                if point.placement == placement
                and point.duration == duration
            ),
            key=lambda point: point.magnitude,
        )

    def collapse_level(
        self, placement: str, duration: float
    ) -> Optional[float]:
        """Smallest dip whose slide efficiency falls below the floor."""
        for point in self.curve(placement, duration):
            if point.efficiency < COLLAPSE_EFFICIENCY:
                return point.magnitude
        return None

    def report(self) -> str:
        """The sweep as a table plus the collapse verdicts."""
        rows = [
            (
                point.placement,
                f"{point.magnitude:.1f}",
                f"{point.duration:g}s",
                f"{point.speedup:.3f}x",
                f"{point.efficiency:.2f}",
            )
            for point in sorted(
                self.points,
                key=lambda p: (p.placement, p.duration, p.magnitude),
            )
        ]
        table = ascii_table(
            ["placement", "dip", "duration", "speedup", "efficiency"],
            rows,
            title=(
                "Robustness: the sliding effect vs bottleneck "
                "perturbation (in-window measurements)"
            ),
        )
        verdicts = []
        for duration in sorted({point.duration for point in self.points}):
            level = self.collapse_level("compatible", duration)
            verdicts.append(
                f"compatible slide collapses at dip "
                f"{level:.1f} ({duration:g}s window)"
                if level is not None
                else (
                    f"compatible slide survives every tested dip "
                    f"({duration:g}s window)"
                )
            )
        return table + "\n" + "\n".join(verdicts)


def run(
    magnitudes: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
    durations: Sequence[float] = (8.0, 24.0),
    n_iterations: Optional[int] = None,
    seed: int = 0,
    weight_ratio: float = 2.0,
) -> RobustnessResult:
    """Sweep the perturbation grid over both placements.

    ``n_iterations`` defaults to an auto-scaled per-placement count:
    enough iterations that every job is still running past the longest
    perturbation window (iterations are never shorter than solo time,
    so ``window_end / solo_time`` iterations always cover it).

    Every (placement, magnitude, duration, policy) cell is one cacheable
    spec; all cells go through a single :func:`run_many` call.
    """
    window_end = DIP_START + max(durations)
    grid = []
    specs = []
    for name, jobs in sorted(placements().items()):
        if n_iterations is None:
            iterations = 2 + max(
                int(window_end / job.solo_iteration_time(
                    EFFECTIVE_BOTTLENECK
                )) + 1
                for job in jobs
            )
        else:
            iterations = n_iterations
        job_ids = [job.job_id for job in jobs]
        policies = {
            "fair": FairSharing(),
            "unfair": StaticWeighted.from_aggressiveness_order(
                job_ids, weight_ratio
            ),
        }
        offsets = {
            job_id: index * 0.005 for index, job_id in enumerate(job_ids)
        }
        for duration in durations:
            for magnitude in magnitudes:
                faults = dip_schedule(magnitude, duration)
                for scenario, policy in sorted(policies.items()):
                    spec = phase_spec(
                        jobs,
                        policy,
                        iterations,
                        start_offsets=offsets,
                        seed=seed,
                        label=(
                            f"robustness-{name}-{scenario}"
                            f"-m{magnitude:g}-d{duration:g}"
                        ),
                    ).replace(faults=faults)
                    grid.append((name, magnitude, duration, scenario))
                    specs.append(spec)
    results = dict(zip(grid, run_many(specs, batch=True)))

    points: List[RobustnessPoint] = []
    for name, jobs in sorted(placements().items()):
        for duration in durations:
            window = (DIP_START, DIP_START + duration)
            for magnitude in magnitudes:
                fair = results[(name, magnitude, duration, "fair")]
                unfair = results[(name, magnitude, duration, "unfair")]
                ratios = []
                efficiencies = []
                for job in jobs:
                    fair_s = window_mean(
                        fair.timelines()[job.job_id], *window
                    )
                    unfair_s = window_mean(
                        unfair.timelines()[job.job_id], *window
                    )
                    ratios.append(fair_s / unfair_s)
                    ideal_s = job.solo_iteration_time(
                        EFFECTIVE_BOTTLENECK * (1.0 - magnitude)
                    )
                    efficiencies.append(ideal_s / unfair_s)
                points.append(RobustnessPoint(
                    placement=name,
                    magnitude=magnitude,
                    duration=duration,
                    speedup=sum(ratios) / len(ratios),
                    efficiency=(
                        sum(efficiencies) / len(efficiencies)
                    ),
                ))
    return RobustnessResult(points=points)


def main() -> None:
    """Print the perturbation-robustness sweep."""
    with current().span("experiment.robustness"):
        print(run().report())


if __name__ == "__main__":
    main()
