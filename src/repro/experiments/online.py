"""Online scheduling: the cluster service under Poisson arrival streams.

The batch experiments (:mod:`.scheduler_exp`) freeze one cluster snapshot
and compare placements; this driver runs the *online* question the paper's
§4 placement argument implies: over a stream of arrivals and departures,
how do placement policies differ in admission rate, cluster-wide
compatibility rate and congestion (a slowdown proxy), and what does the
incremental engine's solver reuse buy?

Each cell of the sweep (arrival rate x placement policy) is one
``service``-backend :class:`~repro.runner.spec.RunSpec` — deterministic,
content-hashed, cacheable — executed through :func:`repro.runner.
run_many`. Placement latency is wall-clock and therefore *not* part of
the run result: it flows into the ambient telemetry session's
``service.place_ms`` histogram, which :func:`main` reports when samples
exist. Cached re-runs replay the worker telemetry captured at execution
time, so the reported latency always describes the run that actually
computed the results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from ..analysis.report import ascii_table
from ..runner import RunSpec, run_many
from ..telemetry import current

#: The placement policies the sweep compares.
POLICIES = ("random", "consolidated", "compatibility-aware")

#: Mean inter-arrival gaps (seconds): a calm and a congested regime.
ARRIVAL_GAPS_S = (45.0, 15.0)


@dataclass
class OnlineOutcome:
    """One (arrival rate, policy) cell of the online sweep."""

    policy: str
    mean_interarrival_s: float
    data: Dict[str, Any]

    @property
    def engine_stats(self) -> Dict[str, int]:
        """The incremental engine's solver-reuse counters."""
        return dict(self.data.get("engine", {}))


def online_spec(
    policy: str,
    mean_interarrival_s: float,
    n_arrivals: int = 60,
    mean_lifetime_s: float = 400.0,
    seed: int = 0,
    n_racks: int = 6,
    hosts_per_rack: int = 1,
    gpus_per_host: int = 4,
) -> RunSpec:
    """One declarative ``service``-backend run of the online sweep."""
    return RunSpec(
        backend="service",
        label=f"online-{policy}-gap{mean_interarrival_s:g}",
        seed=seed,
        options=(
            ("arrival_process", "poisson"),
            ("n_arrivals", n_arrivals),
            ("mean_interarrival_s", mean_interarrival_s),
            ("mean_lifetime_s", mean_lifetime_s),
            ("lifetime_model", "pareto"),
            ("placement", policy),
            ("n_racks", n_racks),
            ("hosts_per_rack", hosts_per_rack),
            ("gpus_per_host", gpus_per_host),
            ("queue_limit", 16),
        ),
    )


def run_online(
    policies: Sequence[str] = POLICIES,
    arrival_gaps_s: Sequence[float] = ARRIVAL_GAPS_S,
    n_arrivals: int = 60,
    seed: int = 0,
) -> List[OnlineOutcome]:
    """Sweep arrival rate x placement policy through the runner."""
    cells = [
        (policy, gap)
        for gap in arrival_gaps_s
        for policy in policies
    ]
    specs = [
        online_spec(policy, gap, n_arrivals=n_arrivals, seed=seed)
        for policy, gap in cells
    ]
    results = run_many(specs)
    return [
        OnlineOutcome(
            policy=policy,
            mean_interarrival_s=gap,
            data=dict(result.data),
        )
        for (policy, gap), result in zip(cells, results)
    ]


def report(outcomes: Sequence[OnlineOutcome]) -> str:
    """Render the online sweep as a table."""
    rows = []
    for outcome in outcomes:
        data = outcome.data
        engine = outcome.engine_stats
        adds = int(engine.get("adds", 0))
        solves = int(engine.get("component_solves", 0))
        screens = int(engine.get("screen_admits", 0))
        rows.append(
            (
                f"{outcome.mean_interarrival_s:g}",
                outcome.policy,
                f"{data['admission_rate']:.2f}",
                f"{data['compatibility_rate']:.2f}",
                f"{data['mean_slowdown_proxy']:.3f}",
                str(data["peak_concurrent"]),
                f"{screens}/{adds}",
                str(solves),
            )
        )
    return ascii_table(
        ["gap (s)", "placement policy", "admission", "compatible",
         "slowdown proxy", "peak jobs", "screens/adds", "solves"],
        rows,
        title="online service — arrival rate x placement policy",
    )


def placement_latency_line() -> str:
    """P99 placement latency from the ambient telemetry session.

    Wall-clock latency never enters run results; the histogram holds the
    samples observed when the specs executed (replayed from the cached
    worker telemetry on a cache hit), or nothing when telemetry is off.
    """
    histogram = current().histogram("service.place_ms")
    if histogram.count == 0:
        return "placement latency: - (cache hits or telemetry off)"
    return (
        f"placement latency: p50 {histogram.percentile(50):.3f} ms, "
        f"p99 {histogram.percentile(99):.3f} ms "
        f"over {histogram.count} placements"
    )


def main() -> None:
    """Print the online service sweep."""
    with current().span("experiment.online"):
        outcomes = run_online()
        print(report(outcomes))
        print()
        print(placement_latency_line())


if __name__ == "__main__":
    main()
