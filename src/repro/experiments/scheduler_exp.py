"""§4-§5: compatibility-aware placement on a multi-rack cluster.

The scenario: a fragmented four-rack cluster already runs two cross-rack
*resident* jobs plus rack-local fillers. A new job arrives that cannot fit
in any single rack, so it must spill across ToR uplinks — the question is
*which* uplinks.

Two job types define the compatibility landscape:

* type A — compute-heavy (period 300 ms, 50 ms communication); A jobs are
  fully compatible with each other on a link.
* type B — comm-heavier (period 260 ms, 110 ms communication); B jobs are
  compatible with each other, but A and B are *provably* incompatible
  (the gcd of the periods, 20 ms, is smaller than either arc).

Resident job A-res spans racks 0-1; resident B-res spans racks 2-3. The
arriving job is type A. Free-GPU counts are arranged so the fullest racks
straddle B-res's uplinks: a locality-only scheduler (and usually a random
one) spills the newcomer next to the *incompatible* resident, while the
compatibility-aware policy pays a little fragmentation to sit next to
A-res. All three placements then run under the adaptive unfair policy and
are judged by slowdown versus dedicated-network speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .. import io
from ..telemetry import current
from ..analysis.report import ascii_table
from ..cc.adaptive import AdaptiveUnfair
from ..net.routing import Router
from ..net.topology import Topology
from ..runner import RunSpec, run_many
from ..scheduler.cluster import ClusterState
from ..scheduler.placement import (
    CompatibilityAwarePlacement,
    ConsolidatedPlacement,
    PlacementPolicy,
    RandomPlacement,
)
from ..scheduler.simulation import ClusterReport
from ..sim.rng import RandomStreams
from ..units import ms
from ..workloads.job import JobSpec
from ..workloads.profiles import EFFECTIVE_BOTTLENECK


def type_a_job(job_id: str, n_workers: int) -> JobSpec:
    """Compute-heavy job: 250 ms compute + 50 ms communication."""
    return JobSpec(
        job_id=job_id,
        model_name="wideresnet",
        batch_size=800,
        compute_time=ms(250),
        comm_bytes=ms(50) * EFFECTIVE_BOTTLENECK,
        n_workers=n_workers,
    )


def type_b_job(job_id: str, n_workers: int) -> JobSpec:
    """Comm-heavier job: 150 ms compute + 110 ms communication."""
    return JobSpec(
        job_id=job_id,
        model_name="vgg19",
        batch_size=1200,
        compute_time=ms(150),
        comm_bytes=ms(110) * EFFECTIVE_BOTTLENECK,
        n_workers=n_workers,
    )


def _base_placements() -> List[Tuple[JobSpec, List[str]]]:
    """Resident and filler placements, in arrival order."""
    placements: List[Tuple[JobSpec, List[str]]] = [
        # Resident A spans racks 0-1 (2 GPUs each side).
        (type_a_job("A-res", 4), ["h0_0", "h0_0", "h1_0", "h1_0"]),
        # Resident B spans racks 2-3 (2 GPUs each side).
        (type_b_job("B-res", 4), ["h2_0", "h2_0", "h3_0", "h3_0"]),
    ]
    # Rack-local fillers fragment the free space (no network traffic).
    for job_id, hosts in [
        ("fill-r0", ["h0_1", "h0_1"]),
        ("fill-r2", ["h2_1"]),
    ]:
        spec = JobSpec(
            job_id=job_id,
            compute_time=ms(200),
            comm_bytes=1.0,  # placeholder; single-host jobs send nothing
            n_workers=len(hosts),
        )
        placements.append((spec, hosts))
    return placements


def build_cluster() -> Tuple[ClusterState, JobSpec]:
    """The fragmented cluster with residents placed; returns the newcomer.

    Racks have 2 hosts x 4 GPUs = 8 slots. After residents and fillers the
    free counts are rack0: 4, rack1: 6, rack2: 5, rack3: 6 — so the two
    fullest racks (1 and 3) straddle the *incompatible* resident's
    uplinks, which is the trap for locality-only placement. The newcomer
    (type A, 8 workers) fits into racks {1, 0} (compatible neighbour) just
    as well as into racks {1, 3} (incompatible neighbour).
    """
    topology = Topology.leaf_spine(
        n_racks=4,
        hosts_per_rack=2,
        n_spines=1,
        host_capacity=EFFECTIVE_BOTTLENECK,
        uplink_capacity=EFFECTIVE_BOTTLENECK,
    )
    cluster = ClusterState(
        topology, gpus_per_host=4, router=Router(topology)
    )
    for spec, hosts in _base_placements():
        cluster.place(spec, hosts)
    newcomer = type_a_job("A-new", 8)
    return cluster, newcomer


def _cluster_spec(
    topology: Topology,
    placements: List[Tuple[JobSpec, List[str]]],
    gpus_per_host: int,
    n_iterations: int,
    seed: int,
    label: str,
) -> RunSpec:
    """A declarative cluster-backend run of already-decided placements."""
    return RunSpec(
        backend="cluster",
        label=label,
        seed=seed,
        policy=AdaptiveUnfair(),
        topology=topology,
        n_iterations=n_iterations,
        capacity=EFFECTIVE_BOTTLENECK,
        options=(
            (
                "placements",
                tuple(
                    (spec, tuple(hosts)) for spec, hosts in placements
                ),
            ),
            ("gpus_per_host", gpus_per_host),
        ),
    )


def _report_from_data(data: Dict[str, object]) -> ClusterReport:
    """Rebuild the cluster report from a run result's plain data."""
    return ClusterReport(
        iteration_ms=dict(data["iteration_ms"]),
        solo_ms=dict(data["solo_ms"]),
        slowdown=dict(data["slowdown"]),
        policy_name=str(data["policy_name"]),
        timelines={
            job_id: io.timeline_from_dict(document)
            for job_id, document in data.get("timelines", {}).items()
        },
    )


@dataclass
class PolicyOutcome:
    """One placement policy's cluster-wide result."""

    policy_name: str
    report: ClusterReport
    mixed_links: int
    newcomer_racks: List[str]

    @property
    def mean_slowdown(self) -> float:
        """Average slowdown over network-using jobs."""
        return self.report.mean_slowdown

    @property
    def max_slowdown(self) -> float:
        """Worst job's slowdown."""
        return self.report.max_slowdown


def _mixed_links(cluster: ClusterState) -> int:
    """Uplinks carrying both a type-A and a type-B job."""
    mixed = 0
    for sharers in cluster.link_sharing().items():
        link_name, jobs = sharers
        kinds = {job_id[0] for job_id in jobs}
        if "A" in kinds and "B" in kinds:
            mixed += 1
    return mixed


def run_policies(
    policies: Sequence[PlacementPolicy] | None = None,
    n_iterations: int = 50,
    seed: int = 0,
) -> List[PolicyOutcome]:
    """Place the newcomer with each policy and simulate the cluster."""
    if policies is None:
        policies = [
            RandomPlacement(seed=seed),
            ConsolidatedPlacement(),
            CompatibilityAwarePlacement(),
        ]
    prepared: List[Tuple[PlacementPolicy, int, List[str]]] = []
    specs: List[RunSpec] = []
    for policy in policies:
        cluster, newcomer = build_cluster()
        hosts = policy.place(cluster, newcomer, newcomer.n_workers)
        cluster.place(newcomer, hosts)
        racks = sorted(
            {cluster.topology.rack_of(host) or "?" for host in hosts}
        )
        specs.append(
            _cluster_spec(
                cluster.topology,
                _base_placements() + [(newcomer, list(hosts))],
                gpus_per_host=4,
                n_iterations=n_iterations,
                seed=seed,
                label=f"scheduler-{policy.name}",
            )
        )
        prepared.append((policy, _mixed_links(cluster), racks))
    results = run_many(specs)
    outcomes: List[PolicyOutcome] = []
    for (policy, mixed, racks), run_result in zip(prepared, results):
        report = _report_from_data(run_result.data)
        # Fillers run at solo speed by construction; report network jobs.
        for filler in ("fill-r0", "fill-r2"):
            report.slowdown.pop(filler, None)
            report.iteration_ms.pop(filler, None)
            report.solo_ms.pop(filler, None)
        outcomes.append(
            PolicyOutcome(
                policy_name=policy.name,
                report=report,
                mixed_links=mixed,
                newcomer_racks=racks,
            )
        )
    return outcomes


@dataclass
class LargeScaleOutcome:
    """One policy's result on the many-job cluster."""

    policy_name: str
    mean_slowdown: float
    max_slowdown: float
    mixed_links: int
    placed: int
    rejected: int


def run_large_scale(
    n_racks: int = 10,
    hosts_per_rack: int = 2,
    gpus_per_host: int = 4,
    n_jobs: int = 7,
    n_iterations: int = 40,
    seed: int = 0,
) -> List[PolicyOutcome]:
    """A many-job version of the placement comparison.

    Seven jobs (alternating type A and type B, workers drawn from
    {6, 10, 12}) arrive on a ten-rack cluster. Large jobs must spill
    across racks; whom they spill next to is the policies' whole
    difference. Jobs that do not fit are skipped (all policies see the
    same arrival sequence).
    """
    policies: List[PlacementPolicy] = [
        RandomPlacement(seed=seed),
        ConsolidatedPlacement(),
        CompatibilityAwarePlacement(),
    ]
    prepared: List[Tuple[PlacementPolicy, int, int]] = []
    specs: List[RunSpec] = []
    for policy in policies:
        rng = RandomStreams(seed).get("large-scale")
        topology = Topology.leaf_spine(
            n_racks=n_racks,
            hosts_per_rack=hosts_per_rack,
            n_spines=1,
            host_capacity=EFFECTIVE_BOTTLENECK,
            uplink_capacity=EFFECTIVE_BOTTLENECK,
        )
        cluster = ClusterState(
            topology, gpus_per_host=gpus_per_host, router=Router(topology)
        )
        placements: List[Tuple[JobSpec, List[str]]] = []
        for index in range(n_jobs):
            workers = int(rng.choice([6, 10, 12]))
            if index % 2 == 0:
                spec = type_a_job(f"A{index}", workers)
            else:
                spec = type_b_job(f"B{index}", workers)
            try:
                hosts = policy.place(cluster, spec, workers)
            except Exception:
                continue
            cluster.place(spec, hosts)
            placements.append((spec, list(hosts)))
        specs.append(
            _cluster_spec(
                topology,
                placements,
                gpus_per_host=gpus_per_host,
                n_iterations=n_iterations,
                seed=seed,
                label=f"scheduler-large-{policy.name}",
            )
        )
        prepared.append((policy, _mixed_links(cluster), len(placements)))
    results = run_many(specs)
    outcomes: List[PolicyOutcome] = []
    for (policy, mixed, placed), run_result in zip(prepared, results):
        outcomes.append(
            PolicyOutcome(
                policy_name=policy.name,
                report=_report_from_data(run_result.data),
                mixed_links=mixed,
                newcomer_racks=[f"{placed} jobs"],
            )
        )
    return outcomes


def report(outcomes: Sequence[PolicyOutcome]) -> str:
    """Render the scheduler comparison."""
    rows = []
    for outcome in outcomes:
        rows.append(
            (
                outcome.policy_name,
                "+".join(outcome.newcomer_racks),
                f"{outcome.mean_slowdown:.3f}",
                f"{outcome.max_slowdown:.3f}",
                str(outcome.mixed_links),
                str(outcome.report.jobs_at_solo_speed),
            )
        )
    return ascii_table(
        ["placement policy", "newcomer racks", "mean slowdown",
         "max slowdown", "A/B-mixed links", "jobs at solo speed"],
        rows,
        title="S4 placement — compatibility-aware vs locality-only",
    )


def main() -> None:
    """Print the scheduler comparisons (newcomer scenario + large scale)."""
    with current().span("experiment.scheduler"):
        print(report(run_policies()))
        print()
        large = report(run_large_scale())
        print(large.replace(
            "S4 placement — compatibility-aware vs locality-only",
            "S4 placement at scale — 7 jobs on 10 racks",
        ).replace("newcomer racks", "jobs placed  "))


if __name__ == "__main__":
    main()
