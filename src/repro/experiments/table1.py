"""Table 1: fair vs unfair iteration times for five job groups.

For each group the driver (i) checks full compatibility with the geometric
abstraction, and (ii) simulates the group sharing the dumbbell bottleneck
under default fair sharing and under Table 1's unfairness protocol (each
job more aggressive than the jobs after it in the row, 2:1 between ranks).
The paper's verdicts: groups 2, 4 and 5 are fully compatible (unfairness
speeds up *every* member); groups 1 and 3 are not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..telemetry import current
from ..analysis.report import ascii_table
from ..cc.fair import FairSharing
from ..cc.weighted import StaticWeighted
from ..core.compatibility import CompatibilityChecker, CompatibilityResult
from ..net.phasesim import SimulationResult
from ..runner import RunSpec, run_many
from ..workloads.profiles import Table1Group, table1_groups
from .common import PairedRun, phase_spec


@dataclass
class Table1Row:
    """Measured and paper numbers for one job in one group."""

    job_id: str
    fair_ms: float
    unfair_ms: float
    paper_fair_ms: float
    paper_unfair_ms: float

    @property
    def speedup(self) -> float:
        """Measured unfairness speedup."""
        return self.fair_ms / self.unfair_ms


@dataclass
class Table1GroupResult:
    """One group's verdict plus all its rows."""

    group: Table1Group
    compatibility: CompatibilityResult
    rows: List[Table1Row]
    run: PairedRun

    @property
    def all_members_sped_up(self) -> bool:
        """The operational definition of a compatible group in Table 1."""
        return all(row.speedup > 1.0 for row in self.rows)

    @property
    def verdict_matches_paper(self) -> bool:
        """Geometric verdict equals the paper's green/red marking."""
        return self.compatibility.compatible == self.group.paper_compatible


def _group_specs(
    group: Table1Group,
    n_iterations: int,
    weight_ratio: float,
    seed: int,
) -> List[RunSpec]:
    """The fair and unfair run specs for one group."""
    job_ids = [spec.job_id for spec in group.specs]
    return [
        phase_spec(
            group.specs,
            FairSharing(),
            n_iterations=n_iterations,
            seed=seed,
            label=f"table1-{group.name}-fair",
        ),
        phase_spec(
            group.specs,
            StaticWeighted.from_aggressiveness_order(job_ids, weight_ratio),
            n_iterations=n_iterations,
            seed=seed,
            label=f"table1-{group.name}-unfair",
        ),
    ]


def _assemble_group(
    group: Table1Group,
    fair: SimulationResult,
    unfair: SimulationResult,
    skip: int,
) -> Table1GroupResult:
    """Build the group verdict from its completed runs."""
    job_ids = [spec.job_id for spec in group.specs]
    compatibility = CompatibilityChecker().check(group.specs)
    paired = PairedRun(fair=fair, unfair=unfair, job_ids=job_ids)
    rows = []
    for entry in group.entries:
        job_id = entry.spec.job_id
        rows.append(
            Table1Row(
                job_id=job_id,
                fair_ms=paired.mean_ms("fair", job_id, skip=skip),
                unfair_ms=paired.mean_ms("unfair", job_id, skip=skip),
                paper_fair_ms=entry.paper_fair_ms,
                paper_unfair_ms=entry.paper_unfair_ms,
            )
        )
    return Table1GroupResult(
        group=group, compatibility=compatibility, rows=rows, run=paired
    )


def run_group(
    group: Table1Group,
    n_iterations: int = 60,
    skip: int = 15,
    weight_ratio: float = 2.0,
    seed: int = 0,
) -> Table1GroupResult:
    """Check and simulate one Table 1 group."""
    fair, unfair = run_many(
        _group_specs(group, n_iterations, weight_ratio, seed)
    )
    return _assemble_group(group, fair.phase, unfair.phase, skip)


def run_all(
    n_iterations: int = 60,
    skip: int = 15,
    seed: int = 0,
    weight_ratio: float = 2.0,
) -> List[Table1GroupResult]:
    """Check and simulate every Table 1 group.

    All ten runs (five groups x fair/unfair) go through one
    :func:`run_many` call, so ``--jobs N`` parallelizes the whole table.
    """
    groups = table1_groups()
    specs = [
        spec
        for group in groups
        for spec in _group_specs(group, n_iterations, weight_ratio, seed)
    ]
    results = run_many(specs)
    assembled = []
    for index, group in enumerate(groups):
        fair, unfair = results[2 * index], results[2 * index + 1]
        assembled.append(
            _assemble_group(group, fair.phase, unfair.phase, skip)
        )
    return assembled


def report(results: List[Table1GroupResult]) -> str:
    """Render the full paper-vs-measured table."""
    rows = []
    for result in results:
        verdict = "compatible" if result.compatibility.compatible else "incompatible"
        paper_verdict = "Y" if result.group.paper_compatible else "X"
        for index, row in enumerate(result.rows):
            rows.append(
                (
                    result.group.name if index == 0 else "",
                    row.job_id,
                    f"{row.fair_ms:.0f}",
                    f"{row.paper_fair_ms:.0f}",
                    f"{row.unfair_ms:.0f}",
                    f"{row.paper_unfair_ms:.0f}",
                    f"{row.speedup:.2f}x",
                    verdict if index == 0 else "",
                    paper_verdict if index == 0 else "",
                )
            )
    return ascii_table(
        [
            "group", "job", "fair ms", "paper", "unfair ms", "paper",
            "speedup", "geometric verdict", "paper",
        ],
        rows,
        title="Table 1 — unfairness only helps compatible job groups",
    )


def main() -> None:
    """Print the Table 1 reproduction."""
    with current().span("experiment.table1"):
        print(report(run_all()))


if __name__ == "__main__":
    main()
