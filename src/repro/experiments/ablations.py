"""Ablations for the design choices DESIGN.md calls out.

* :func:`adaptive_cc_experiment` — §4(i): the adaptively-unfair rule
  should drive *compatible* jobs to near-solo iteration times while
  leaving *incompatible* jobs no worse than fair sharing.
* :func:`sector_sensitivity` — the paper discretizes the circle into
  sectors; how coarse can the grid get before the formulation misses a
  feasible rotation?
* :func:`solver_comparison` — exact DFS vs greedy vs annealing vs the
  discretized grid, on instances where ground truth is known.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.report import ascii_table
from ..telemetry import Telemetry, current
from ..cc.adaptive import AdaptiveUnfair
from ..cc.fair import FairSharing
from ..core.circle import JobCircle
from ..core.optimize import (
    SolverOutcome,
    annealing_search,
    backtracking_search,
    exhaustive_search,
    greedy_search,
)
from ..runner import run_many
from ..workloads.job import JobSpec
from ..workloads.profiles import EFFECTIVE_BOTTLENECK, table1_groups
from .common import phase_spec


# ---------------------------------------------------------------------------
# Adaptive congestion control (§4, direction i)
# ---------------------------------------------------------------------------

@dataclass
class AdaptiveCcResult:
    """Fair vs adaptive iteration times for one job group."""

    group_name: str
    compatible: bool
    fair_ms: Dict[str, float]
    adaptive_ms: Dict[str, float]
    solo_ms: Dict[str, float]

    @property
    def speedups(self) -> Dict[str, float]:
        """Fair over adaptive, per job."""
        return {
            job: self.fair_ms[job] / self.adaptive_ms[job]
            for job in self.fair_ms
        }

    @property
    def worst_regression(self) -> float:
        """Smallest speedup — below ~0.98 means adaptive hurt someone."""
        return min(self.speedups.values())


def adaptive_cc_experiment(
    n_iterations: int = 60,
    skip: int = 20,
    desync: float = 0.007,
    seed: int = 0,
) -> List[AdaptiveCcResult]:
    """Run a compatible and an incompatible Table 1 group under the
    adaptive policy.

    Jobs start ``desync`` seconds apart: perfectly synchronized identical
    jobs have identical progress and hence identical adaptive weights — a
    measure-zero symmetry real clusters never exhibit.
    """
    groups = table1_groups()
    chosen = [groups[1], groups[0]]  # group2 (compatible), group1 (not)
    run_specs = []
    for group in chosen:
        offsets = {
            spec.job_id: index * desync
            for index, spec in enumerate(group.specs)
        }
        for policy, kind in (
            (FairSharing(), "fair"),
            (AdaptiveUnfair(), "adaptive"),
        ):
            run_specs.append(
                phase_spec(
                    group.specs,
                    policy,
                    n_iterations=n_iterations,
                    start_offsets=offsets,
                    seed=seed,
                    label=f"ablation-adaptive-{group.name}-{kind}",
                )
            )
    run_results = run_many(run_specs)
    results: List[AdaptiveCcResult] = []
    for index, group in enumerate(chosen):
        specs = group.specs
        fair = run_results[2 * index].phase
        adaptive = run_results[2 * index + 1].phase
        results.append(
            AdaptiveCcResult(
                group_name=group.name,
                compatible=group.paper_compatible,
                fair_ms={
                    s.job_id: fair.mean_iteration_time(s.job_id, skip=skip)
                    * 1e3
                    for s in specs
                },
                adaptive_ms={
                    s.job_id: adaptive.mean_iteration_time(
                        s.job_id, skip=skip
                    ) * 1e3
                    for s in specs
                },
                solo_ms={
                    s.job_id: s.solo_iteration_time(EFFECTIVE_BOTTLENECK)
                    * 1e3
                    for s in specs
                },
            )
        )
    return results


def adaptive_cc_report(results: Sequence[AdaptiveCcResult]) -> str:
    """Render the adaptive-CC ablation."""
    rows = []
    for result in results:
        for index, job in enumerate(result.fair_ms):
            rows.append(
                (
                    result.group_name if index == 0 else "",
                    "yes" if result.compatible else "no",
                    job,
                    f"{result.fair_ms[job]:.0f}",
                    f"{result.adaptive_ms[job]:.0f}",
                    f"{result.solo_ms[job]:.0f}",
                    f"{result.speedups[job]:.2f}x",
                )
            )
    return ascii_table(
        ["group", "compatible", "job", "fair ms", "adaptive ms",
         "solo ms", "speedup"],
        rows,
        title="S4(i) — adaptively-unfair congestion control",
    )


# ---------------------------------------------------------------------------
# Sector discretization sensitivity
# ---------------------------------------------------------------------------

@dataclass
class SectorPoint:
    """Outcome of the discretized formulation at one grid resolution."""

    steps_per_job: int
    found: bool
    overlap: int
    evaluations: int


def sector_sensitivity(
    circles: Optional[Sequence[JobCircle]] = None,
    steps: Sequence[int] = (4, 6, 9, 12, 18, 24, 36, 60),
) -> List[SectorPoint]:
    """Sweep the discretization of the paper's sector formulation.

    Defaults to a tightly packed triple (period 100, arcs 40+30+25 = 95 of
    100): a separating rotation exists but only within a 5-tick window, so
    coarse sector grids miss it — the cost of the discretized formulation.
    """
    if circles is None:
        circles = [
            JobCircle.from_phases("A", 60, 40),
            JobCircle.from_phases("B", 70, 30),
            JobCircle.from_phases("C", 75, 25),
        ]
    points: List[SectorPoint] = []
    for steps_per_job in steps:
        outcome = exhaustive_search(circles, steps_per_job=steps_per_job)
        points.append(
            SectorPoint(
                steps_per_job=steps_per_job,
                found=outcome.found,
                overlap=outcome.overlap,
                evaluations=outcome.nodes,
            )
        )
    return points


# ---------------------------------------------------------------------------
# Solver comparison
# ---------------------------------------------------------------------------

@dataclass
class SolverRun:
    """One solver's outcome on one instance."""

    instance: str
    solver: str
    found: bool
    overlap: int
    nodes: int
    seconds: float


def solver_instances() -> Dict[str, List[JobCircle]]:
    """Instances with known ground truth for the solver comparison."""
    return {
        "fig5 (feasible)": [
            JobCircle.from_phases("J1", 30, 10),
            JobCircle.from_phases("J2", 50, 10),
        ],
        "tight triple (feasible)": [
            JobCircle.from_phases("A", 60, 40),
            JobCircle.from_phases("B", 70, 30),
            JobCircle.from_phases("C", 75, 25),
        ],
        "overloaded (infeasible)": [
            JobCircle.from_phases("A", 40, 60),
            JobCircle.from_phases("B", 40, 60),
        ],
    }


def solver_comparison(
    instances: Optional[Dict[str, List[JobCircle]]] = None,
) -> List[SolverRun]:
    """Run every solver on every instance and time them.

    Each solver call runs under a ``solver.<name>`` telemetry span, so a
    recorded ``ablations`` run carries the timings in its manifest.
    """
    instances = instances or solver_instances()
    solvers = [
        ("backtracking", lambda c: backtracking_search(c)),
        ("greedy", lambda c: greedy_search(c)),
        ("annealing", lambda c: annealing_search(c, seed=1)),
        ("grid-36", lambda c: exhaustive_search(c, steps_per_job=36)),
    ]
    telemetry = current()
    if not telemetry.enabled:
        # No recording session: still time the solvers, just locally.
        telemetry = Telemetry("solver-comparison")
    runs: List[SolverRun] = []
    for instance_name, circles in instances.items():
        for solver_name, solver in solvers:
            with telemetry.span(f"solver.{solver_name}") as span:
                outcome: SolverOutcome = solver(circles)
            runs.append(
                SolverRun(
                    instance=instance_name,
                    solver=solver_name,
                    found=outcome.found,
                    overlap=outcome.overlap,
                    nodes=outcome.nodes,
                    seconds=span.duration,
                )
            )
    return runs


def solver_report(runs: Sequence[SolverRun]) -> str:
    """Render the solver comparison."""
    rows = [
        (
            run.instance,
            run.solver,
            "yes" if run.found else "no",
            str(run.overlap),
            str(run.nodes),
            f"{run.seconds * 1e3:.1f} ms",
        )
        for run in runs
    ]
    return ascii_table(
        ["instance", "solver", "found", "overlap", "nodes", "time"],
        rows,
        title="Solver comparison on the rotation search",
    )


# ---------------------------------------------------------------------------
# Clock skew vs flow scheduling (the paper's §4(iii) caveat)
# ---------------------------------------------------------------------------

@dataclass
class ClockSkewPoint:
    """Flow-scheduling performance at one clock-skew magnitude."""

    skew_ms: float
    mean_slowdown: float
    max_slowdown: float


def clock_skew_experiment(
    skews_ms: Sequence[float] = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0),
    n_iterations: int = 40,
    skip: int = 15,
    seed: int = 0,
) -> List[ClockSkewPoint]:
    """How precise must clocks be for §4(iii) flow scheduling?

    The paper warns that scheduling transfers "at precise times" needs
    "high-resolution clock synchronization across the cluster". Here each
    job's gate runs on a clock offset by ± the skew magnitude (alternating
    signs across jobs, the worst pairing). The penalty is sharp and
    non-monotonic: a job whose compute phase ends just after its (shifted)
    window closes stalls for most of a unified period, so even 1 ms of
    skew can cost tens of percent — which is exactly why the paper calls
    precise flow scheduling "challenging ... without a high-resolution
    clock synchronization across the cluster".
    """
    from ..core.compatibility import CompatibilityChecker
    from ..mechanisms.flow_scheduling import FlowSchedule
    from ..cc.fair import FairSharing

    group = [spec for spec in table1_groups()[4].specs]
    checker = CompatibilityChecker()
    verdict = checker.check(group)
    schedule = FlowSchedule.from_compatibility(
        checker.circles(group), verdict, checker.ticks_per_second
    )
    solo_ms = {
        spec.job_id: spec.solo_iteration_time(EFFECTIVE_BOTTLENECK) * 1e3
        for spec in group
    }
    run_specs = []
    for skew_ms in skews_ms:
        gates = {}
        for index, spec in enumerate(group):
            sign = 1 if index % 2 == 0 else -1
            epoch = sign * skew_ms * 1e-3
            gates[spec.job_id] = schedule.gate_for(
                spec.job_id, epoch=epoch
            )
        run_specs.append(
            phase_spec(
                group,
                FairSharing(),
                n_iterations=n_iterations,
                gates=gates,
                seed=seed,
                label=f"ablation-skew-{skew_ms:g}ms",
            )
        )
    results = run_many(run_specs)
    points: List[ClockSkewPoint] = []
    for skew_ms, run_result in zip(skews_ms, results):
        result = run_result.phase
        slowdowns = [
            result.mean_iteration_time(spec.job_id, skip=skip)
            * 1e3
            / solo_ms[spec.job_id]
            for spec in group
        ]
        points.append(
            ClockSkewPoint(
                skew_ms=skew_ms,
                mean_slowdown=sum(slowdowns) / len(slowdowns),
                max_slowdown=max(slowdowns),
            )
        )
    return points


def clock_skew_report(points: Sequence[ClockSkewPoint]) -> str:
    """Render the clock-skew sweep."""
    rows = [
        (f"{p.skew_ms:.0f} ms", f"{p.mean_slowdown:.3f}",
         f"{p.max_slowdown:.3f}")
        for p in points
    ]
    return ascii_table(
        ["clock skew (per job)", "mean slowdown", "max slowdown"],
        rows,
        title="S4(iii) — flow scheduling vs clock synchronization error",
    )


def main() -> None:
    """Print all ablations."""
    with current().span("experiment.ablations"):
        print(adaptive_cc_report(adaptive_cc_experiment()))
        print()
        rows = [
            (p.steps_per_job, "yes" if p.found else "no", p.overlap,
             p.evaluations)
            for p in sector_sensitivity()
        ]
        print(
            ascii_table(
                ["sectors/job", "found", "overlap", "evaluations"],
                rows,
                title="Sector-count sensitivity of the discretized "
                "formulation",
            )
        )
        print()
        print(solver_report(solver_comparison()))
        print()
        print(clock_skew_report(clock_skew_experiment()))


if __name__ == "__main__":
    main()
