"""Figure 1: the surprising payoff of unfairness.

Two reproductions:

* :func:`bandwidth_experiment` (Fig. 1b/1c) — the fine-grained DCQCN fluid
  model runs two long-lived flows through the 50 Gbps bottleneck. Fair:
  both senders use the default T = 125 µs timer and split the link evenly
  (paper: ~21/21 Gbps). Unfair: J1's timer drops to T = 100 µs and J1
  takes the larger share (paper: ~30/15 Gbps).
* :func:`cdf_experiment` (Fig. 1d) — the phase-level simulator runs the
  two VGG19 jobs for many iterations under fair and 2:1-weighted sharing
  and reports the CDFs; the paper reads a 1.23x median speedup for both
  jobs off these curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..telemetry import current
from ..cc.dcqcn import AGGRESSIVE_TIMER, DEFAULT_TIMER, DcqcnResult
from ..cc.fair import FairSharing
from ..cc.weighted import StaticWeighted
from ..analysis.cdf import median_of
from ..analysis.report import ascii_cdf, ascii_table
from ..runner import RunSpec, ScenarioSpec, SenderSpec, run_many
from ..units import gbps, to_gbps
from ..workloads.profiles import figure2_vgg19_pair
from .common import PairedRun, phase_spec

#: Paper numbers for the bandwidth experiment (Gbps).
PAPER_FAIR_GBPS = (21.0, 21.0)
PAPER_UNFAIR_GBPS = (30.0, 15.0)
#: Paper's median iteration speedup in Figure 1d.
PAPER_MEDIAN_SPEEDUP = 1.23


@dataclass
class BandwidthResult:
    """Fig. 1b/1c outcome: steady bandwidth per job per scenario."""

    fair_gbps: Dict[str, float]
    unfair_gbps: Dict[str, float]
    fair_trace: DcqcnResult
    unfair_trace: DcqcnResult

    def table(self) -> str:
        """Paper-vs-measured comparison table."""
        rows = []
        for index, job in enumerate(("J1", "J2")):
            rows.append(
                (
                    job,
                    f"{self.fair_gbps[job]:.1f}",
                    f"{PAPER_FAIR_GBPS[index]:.1f}",
                    f"{self.unfair_gbps[job]:.1f}",
                    f"{PAPER_UNFAIR_GBPS[index]:.1f}",
                )
            )
        return ascii_table(
            ["job", "fair Gbps", "paper", "unfair Gbps", "paper"],
            rows,
            title="Figure 1b/1c — DCQCN bandwidth at the bottleneck",
        )


def bandwidth_experiment(
    duration: float = 0.15,
    warmup: float = 0.03,
    capacity: float = gbps(50),
    seed: int = 7,
) -> BandwidthResult:
    """Run the Fig. 1b/1c DCQCN scenarios and measure steady shares.

    Both scenarios live in one fluid :class:`RunSpec` because they share
    random streams: J2's fair-scenario generator continues into the
    unfair scenario, exactly as the original experiment consumed it.
    """

    def lineup(timers: Dict[str, float]) -> tuple:
        return tuple(
            SenderSpec(name, timer) for name, timer in timers.items()
        )

    spec = RunSpec(
        backend="fluid",
        label="figure1-bandwidth",
        seed=seed,
        capacity=capacity,
        duration=duration,
        scenarios=(
            ScenarioSpec(
                "fair",
                lineup({"J1": DEFAULT_TIMER, "J2": DEFAULT_TIMER}),
            ),
            ScenarioSpec(
                "unfair",
                lineup({"J1": AGGRESSIVE_TIMER, "J2": DEFAULT_TIMER}),
            ),
        ),
    )
    [result] = run_many([spec], batch=True)
    fair_trace = result.scenario("fair").trace
    unfair_trace = result.scenario("unfair").trace
    return BandwidthResult(
        fair_gbps={
            name: to_gbps(fair_trace.mean_rate(name, start=warmup))
            for name in ("J1", "J2")
        },
        unfair_gbps={
            name: to_gbps(unfair_trace.mean_rate(name, start=warmup))
            for name in ("J1", "J2")
        },
        fair_trace=fair_trace,
        unfair_trace=unfair_trace,
    )


@dataclass
class CdfResult:
    """Fig. 1d outcome: iteration-time distributions per scenario."""

    run: PairedRun
    fair_times: Dict[str, np.ndarray] = field(default_factory=dict)
    unfair_times: Dict[str, np.ndarray] = field(default_factory=dict)

    def median_speedup(self, job_id: str) -> float:
        """Fair-median over unfair-median (the Figure 1d statistic)."""
        return median_of(self.fair_times[job_id]) / median_of(
            self.unfair_times[job_id]
        )

    def report(self) -> str:
        """Quantile comparison lines for both jobs and scenarios."""
        from ..analysis.bootstrap import bootstrap_median_ratio

        lines = ["Figure 1d — CDF of training iteration times"]
        for job_id in self.run.job_ids:
            lines.append(ascii_cdf(self.fair_times[job_id], f"fair {job_id}"))
            lines.append(
                ascii_cdf(self.unfair_times[job_id], f"unfair {job_id}")
            )
            ci = bootstrap_median_ratio(
                self.fair_times[job_id], self.unfair_times[job_id]
            )
            lines.append(
                f"  median speedup {job_id}: "
                f"{self.median_speedup(job_id):.2f}x "
                f"(95% CI {ci.low:.2f}-{ci.high:.2f}; "
                f"paper {PAPER_MEDIAN_SPEEDUP}x)"
            )
        return "\n".join(lines)


def cdf_experiment(
    n_iterations: int = 1000,
    jitter: float = 0.02,
    weight_ratio: float = 2.0,
    skip: int = 10,
    seed: int = 0,
) -> CdfResult:
    """Run the Fig. 1d scenarios over many iterations.

    Per-iteration compute jitter models the measurement spread the paper's
    CDFs show; the unfair scenario uses the 2:1 weighted split measured in
    Fig. 1c.
    """
    j1, j2 = figure2_vgg19_pair(jitter=jitter)
    job_ids = [j1.job_id, j2.job_id]
    fair_result, unfair_result = run_many(
        [
            phase_spec(
                [j1, j2],
                FairSharing(),
                n_iterations=n_iterations,
                seed=seed,
                label="figure1-cdf-fair",
            ),
            phase_spec(
                [j1, j2],
                StaticWeighted.from_aggressiveness_order(
                    job_ids, weight_ratio
                ),
                n_iterations=n_iterations,
                seed=seed,
                label="figure1-cdf-unfair",
            ),
        ],
        batch=True,
    )
    fair, unfair = fair_result.phase, unfair_result.phase
    paired = PairedRun(fair=fair, unfair=unfair, job_ids=job_ids)
    return CdfResult(
        run=paired,
        fair_times={
            job: fair.iteration_times(job)[skip:] for job in job_ids
        },
        unfair_times={
            job: unfair.iteration_times(job)[skip:] for job in job_ids
        },
    )


def main() -> None:
    """Print the full Figure 1 reproduction."""
    with current().span("experiment.figure1"):
        bandwidth = bandwidth_experiment()
        print(bandwidth.table())
        print()
        cdf = cdf_experiment()
        print(cdf.report())


if __name__ == "__main__":
    main()
