"""Figure 5: the unified circle for jobs with different iteration times.

The paper's worked example: J1 iterates every 40 ms, J2 every 60 ms, so
both are placed on a unified circle of perimeter ``LCM(40, 60) = 120`` ms
— three J1 phases and two J2 phases per revolution. Rotating J1 by 30°
(10 ms on the 120 ms circle) separates all colored arcs: fully compatible.

The paper does not state the arc lengths in the figure; we use 10 ms of
communication for both jobs. This choice is geometrically tight: because
collisions between the tiled patterns depend only on the relative shift
modulo ``gcd(40, 60) = 20`` ms, two arcs mesh only if their lengths sum to
at most 20 ms — with 10+10 exactly one relative residue survives, and it
is the paper's 10 ms (= 30° on the unified circle) rotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..telemetry import current
from ..analysis.report import ascii_table
from ..core.circle import JobCircle
from ..core.compatibility import CompatibilityChecker, CompatibilityResult
from ..core.rotation import rotation_to_degrees
from ..core.unified import UnifiedCircle

#: The paper's iteration times for the worked example, in ms-ticks.
J1_PERIOD = 40
J2_PERIOD = 60
PAPER_UNIFIED_PERIMETER = 120
PAPER_ROTATION_DEGREES = 30.0


@dataclass
class Figure5Result:
    """Unified-circle construction plus the solver's separating rotation."""

    circles: Dict[str, JobCircle]
    unified: UnifiedCircle
    result: CompatibilityResult

    @property
    def tiles(self) -> Dict[str, int]:
        """How many communication phases each job has per revolution."""
        return {
            job_id: self.unified.perimeter // circle.perimeter
            for job_id, circle in self.circles.items()
        }

    def rotation_degrees_on_unified(self) -> Dict[str, float]:
        """Rotations expressed as angles on the *unified* circle, the way
        Figure 5d quotes J1's 10 ms shift as 30°."""
        return {
            job_id: rotation_to_degrees(ticks, self.unified.perimeter)
            for job_id, ticks in self.result.rotations.items()
        }

    def report(self) -> str:
        """Paper-vs-measured table plus the rendered circles."""
        from ..analysis.circleplot import render_coverage_band, render_unified

        degrees = self.rotation_degrees_on_unified()
        rows = [
            ("unified perimeter", f"{self.unified.perimeter} ms",
             f"{PAPER_UNIFIED_PERIMETER} ms (LCM(40, 60))"),
            ("J1 phases per revolution", str(self.tiles["J1"]), "3"),
            ("J2 phases per revolution", str(self.tiles["J2"]), "2"),
            ("compatible", str(self.result.compatible), "True"),
            ("overlap after rotation",
             f"{self.result.overlap_ticks} ticks", "0"),
        ]
        for job_id in ("J1", "J2"):
            ticks = self.result.rotations[job_id]
            rows.append(
                (f"rotation of {job_id}",
                 f"{ticks} ms = {degrees[job_id]:.0f} deg on unified circle",
                 f"{PAPER_ROTATION_DEGREES:.0f} deg for J1 in the figure")
            )
        table = ascii_table(
            ["quantity", "measured", "paper"],
            rows,
            title="Figure 5 — unified circle via LCM of iteration times",
        )
        circles = [self.circles["J1"], self.circles["J2"]]
        art = render_unified(circles, self.result.rotations, size=17)
        bands = (
            "coverage before rotation: "
            + render_coverage_band(circles)
            + "\ncoverage after rotation:  "
            + render_coverage_band(circles, self.result.rotations)
        )
        return "\n\n".join([table, art, bands])


def run(comm_1: int = 10, comm_2: int = 10) -> Figure5Result:
    """Build the Figure 5 example and solve for rotations.

    J2's compute phase is 50 ms (vs J1's 30 ms) so the two patterns start
    misaligned and a non-zero rotation is required, as in the figure.
    """
    j1 = JobCircle.from_phases("J1", J1_PERIOD - comm_1, comm_1)
    j2 = JobCircle.from_phases("J2", J2_PERIOD - comm_2, comm_2)
    checker = CompatibilityChecker()
    return Figure5Result(
        circles={"J1": j1, "J2": j2},
        unified=UnifiedCircle([j1, j2]),
        result=checker.check_circles([j1, j2]),
    )


def main() -> None:
    """Print the Figure 5 reproduction."""
    with current().span("experiment.figure5"):
        print(run().report())


if __name__ == "__main__":
    main()
