"""Population sweep: when does compatibility-aware sharing matter?

The paper demonstrates its effect on hand-picked job groups; an operator
wants to know how often *random* pairs in a real mix are compatible, and
how much unfairness buys when they are. This sweep draws random job pairs
at each communication-fraction level and measures:

* the probability that a pair is fully compatible (exact check), and
* the achievable unfairness speedup over fair lockstep for the
  compatible pairs (analytic, verified against the simulator elsewhere).

The shape is the paper's story quantified: below ~50% communication
fraction equal-period pairs are always compatible and the payoff grows
linearly with the fraction; past 50% full compatibility collapses and
only partial relief remains.

Each fraction level is one :class:`~repro.runner.spec.RunSpec` against a
sweep-specific backend, with its own derived seed — so
``repro-experiments run sweep --jobs N`` evaluates the levels in
parallel without changing any level's sample stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..telemetry import current
from ..analysis.report import ascii_table
from ..cc.dcqcn import AGGRESSIVE_TIMER, DEFAULT_TIMER
from ..core.circle import JobCircle
from ..core.optimize import exact_pair_feasible_rotations
from ..runner import (
    RunResult,
    RunSpec,
    ScenarioSpec,
    SenderSpec,
    derive_seed,
    register,
    run_many,
    safe_content_hash,
)
from ..sim.rng import RandomStreams

#: Registry name of the point evaluator below.
SWEEP_BACKEND = "sweep-point"


@dataclass
class SweepPoint:
    """Outcome at one communication-fraction level.

    Attributes:
        comm_fraction: Target communication fraction of both jobs.
        compatible_rate: Fraction of sampled pairs fully compatible.
        mean_speedup: Mean fair-lockstep-over-interleaved speedup across
            compatible pairs (NaN when none were compatible — "no data",
            deliberately distinct from "no payoff").
    """

    comm_fraction: float
    compatible_rate: float
    mean_speedup: float


def _random_pair(
    rng: np.random.Generator,
    comm_fraction: float,
    same_period: bool,
) -> List[JobCircle]:
    period_a = int(rng.integers(100, 1000))
    period_b = period_a if same_period else int(rng.integers(100, 1000))
    comm_a = max(1, round(period_a * comm_fraction))
    comm_b = max(1, round(period_b * comm_fraction))
    return [
        JobCircle.from_phases("a", period_a - comm_a, comm_a),
        JobCircle.from_phases("b", period_b - comm_b, comm_b),
    ]


def _pair_speedup(circles: Sequence[JobCircle]) -> float:
    """Fair-lockstep over perfect-interleave period for an (equal-period)
    pair; approximates the attainable unfairness payoff."""
    a, b = circles
    fair = max(
        a.perimeter + b.comm_ticks,
        b.perimeter + a.comm_ticks,
    )
    interleaved = max(
        a.perimeter, b.perimeter, a.comm_ticks + b.comm_ticks
    )
    return fair / interleaved


class SweepPointBackend:
    """Evaluates one communication-fraction level of the sweep."""

    name = SWEEP_BACKEND

    def execute(self, spec: RunSpec) -> RunResult:
        options = spec.options_dict()
        fraction = float(options["comm_fraction"])
        pairs_per_point = int(options["pairs_per_point"])
        same_period = bool(options["same_period"])
        rng = RandomStreams(spec.seed).get("sweep")
        compatible = 0
        speedups: List[float] = []
        for _ in range(pairs_per_point):
            circles = _random_pair(rng, fraction, same_period)
            feasible = exact_pair_feasible_rotations(*circles)
            if not feasible.is_empty:
                compatible += 1
                speedups.append(_pair_speedup(circles))
        return RunResult(
            spec_hash=safe_content_hash(spec),
            backend=self.name,
            label=spec.label,
            data={
                "comm_fraction": fraction,
                "compatible_rate": compatible / pairs_per_point,
                "mean_speedup": (
                    float(np.mean(speedups))
                    if speedups
                    else float("nan")
                ),
            },
        )


register(SWEEP_BACKEND, SweepPointBackend(), replace=True)


def point_specs(
    fractions: Sequence[float],
    pairs_per_point: int,
    same_period: bool,
    seed: int,
) -> List[RunSpec]:
    """One spec per fraction level, each with its own derived seed."""
    kind = "eq" if same_period else "mix"
    return [
        RunSpec(
            backend=SWEEP_BACKEND,
            backend_module="repro.experiments.sweep",
            label=f"sweep-{kind}-{fraction:g}",
            seed=derive_seed(seed, f"sweep:{kind}:{fraction!r}"),
            options=(
                ("comm_fraction", float(fraction)),
                ("pairs_per_point", int(pairs_per_point)),
                ("same_period", bool(same_period)),
            ),
        )
        for fraction in fractions
    ]


def run(
    fractions: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.45, 0.5, 0.55,
                                  0.6, 0.7),
    pairs_per_point: int = 60,
    same_period: bool = True,
    seed: int = 0,
) -> List[SweepPoint]:
    """Sweep communication fraction and sample pair compatibility."""
    results = run_many(
        point_specs(fractions, pairs_per_point, same_period, seed),
        batch=True,
    )
    return [
        SweepPoint(
            comm_fraction=result.data["comm_fraction"],
            compatible_rate=result.data["compatible_rate"],
            mean_speedup=result.data["mean_speedup"],
        )
        for result in results
    ]


# ---------------------------------------------------------------------------
# Fluid validation grid — the "verified against the simulator" leg
# ---------------------------------------------------------------------------

@dataclass
class FluidGridPoint:
    """DCQCN-tier validation at one seed.

    Attributes:
        seed: Replication seed of this grid point.
        fair_share: Aggressive sender's bandwidth share, equal timers.
        unfair_share: Its share when its timer is aggressive.
        gain: ``unfair_share / fair_share`` — the directional payoff
            the analytic sweep predicts (> 1 when unfairness pays).
    """

    seed: int
    fair_share: float
    unfair_share: float
    gain: float


def fluid_grid_specs(
    seeds: Sequence[int], duration: float, seed: int = 0
) -> List[RunSpec]:
    """One fluid spec per replication seed: a fair/unfair DCQCN pair.

    Every spec shares the default ``dt`` and the given duration, so the
    whole grid is one batchable group for ``run_many(batch=True)`` —
    the stacked execution is bit-identical to running each spec alone.
    """
    def lineup(name: str, timer_j1: float) -> ScenarioSpec:
        return ScenarioSpec(
            name,
            (
                SenderSpec(name="J1", timer=timer_j1),
                SenderSpec(name="J2", timer=DEFAULT_TIMER),
            ),
        )

    return [
        RunSpec(
            backend="fluid",
            label=f"sweep-fluid-{replication}",
            seed=derive_seed(seed, f"sweep:fluid:{replication}"),
            duration=duration,
            scenarios=(
                lineup("fair", DEFAULT_TIMER),
                lineup("unfair", AGGRESSIVE_TIMER),
            ),
        )
        for replication in seeds
    ]


def fluid_grid(
    seeds: Sequence[int] = (0, 1, 2, 3),
    duration: float = 0.15,
    seed: int = 0,
    warmup: float = 0.03,
) -> List[FluidGridPoint]:
    """Validate the sweep's payoff direction on the DCQCN fluid tier.

    Runs a seeds-replicated fair/unfair grid through
    ``run_many(batch=True)`` and reports the aggressive sender's
    bandwidth-share gain per seed.
    """
    results = run_many(
        fluid_grid_specs(seeds, duration, seed), batch=True
    )
    points: List[FluidGridPoint] = []
    for replication, result in zip(seeds, results):
        shares = {}
        for scenario in ("fair", "unfair"):
            trace = result.scenario(scenario).trace
            j1 = trace.mean_rate("J1", start=warmup)
            j2 = trace.mean_rate("J2", start=warmup)
            shares[scenario] = j1 / (j1 + j2)
        points.append(
            FluidGridPoint(
                seed=replication,
                fair_share=shares["fair"],
                unfair_share=shares["unfair"],
                gain=shares["unfair"] / shares["fair"],
            )
        )
    return points


def fluid_report(points: Sequence[FluidGridPoint]) -> str:
    """Render the fluid validation grid."""
    rows = [
        (
            str(p.seed),
            f"{p.fair_share:.1%}",
            f"{p.unfair_share:.1%}",
            f"{p.gain:.2f}x",
        )
        for p in points
    ]
    mean_gain = float(np.mean([p.gain for p in points]))
    rows.append(("mean", "", "", f"{mean_gain:.2f}x"))
    return ascii_table(
        ["seed", "fair share", "unfair share", "aggressive gain"],
        rows,
        title=(
            "Fluid validation grid — aggressive-timer bandwidth gain "
            "per replication seed (batched DCQCN runs)"
        ),
    )


def report(points: Sequence[SweepPoint]) -> str:
    """Render the sweep (``—`` marks levels with no compatible pairs)."""
    rows = [
        (
            f"{p.comm_fraction:.0%}",
            f"{p.compatible_rate:.0%}",
            (
                "—"
                if math.isnan(p.mean_speedup)
                else f"{p.mean_speedup:.2f}x"
            ),
        )
        for p in points
    ]
    return ascii_table(
        ["comm fraction", "compatible pairs", "mean payoff when compatible"],
        rows,
        title=(
            "Population sweep — equal-period random pairs: compatibility "
            "probability and unfairness payoff vs communication fraction"
        ),
    )


def main() -> None:
    """Print the sweep for equal and mixed periods, then the fluid
    validation grid."""
    with current().span("experiment.sweep"):
        print(report(run(same_period=True)))
        print()
        mixed = run(same_period=False)
        print(report(mixed).replace("equal-period", "mixed-period"))
        print()
        print(fluid_report(fluid_grid()))


if __name__ == "__main__":
    main()
