"""Population sweep: when does compatibility-aware sharing matter?

The paper demonstrates its effect on hand-picked job groups; an operator
wants to know how often *random* pairs in a real mix are compatible, and
how much unfairness buys when they are. This sweep draws random job pairs
at each communication-fraction level and measures:

* the probability that a pair is fully compatible (exact check), and
* the achievable unfairness speedup over fair lockstep for the
  compatible pairs (analytic, verified against the simulator elsewhere).

The shape is the paper's story quantified: below ~50% communication
fraction equal-period pairs are always compatible and the payoff grows
linearly with the fraction; past 50% full compatibility collapses and
only partial relief remains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..telemetry import current
from ..analysis.report import ascii_table
from ..core.circle import JobCircle
from ..core.optimize import exact_pair_feasible_rotations
from ..sim.rng import RandomStreams


@dataclass
class SweepPoint:
    """Outcome at one communication-fraction level.

    Attributes:
        comm_fraction: Target communication fraction of both jobs.
        compatible_rate: Fraction of sampled pairs fully compatible.
        mean_speedup: Mean fair-lockstep-over-interleaved speedup across
            compatible pairs (1.0 when none were compatible).
    """

    comm_fraction: float
    compatible_rate: float
    mean_speedup: float


def _random_pair(
    rng: np.random.Generator,
    comm_fraction: float,
    same_period: bool,
) -> List[JobCircle]:
    period_a = int(rng.integers(100, 1000))
    period_b = period_a if same_period else int(rng.integers(100, 1000))
    comm_a = max(1, round(period_a * comm_fraction))
    comm_b = max(1, round(period_b * comm_fraction))
    return [
        JobCircle.from_phases("a", period_a - comm_a, comm_a),
        JobCircle.from_phases("b", period_b - comm_b, comm_b),
    ]


def _pair_speedup(circles: Sequence[JobCircle]) -> float:
    """Fair-lockstep over perfect-interleave period for an (equal-period)
    pair; approximates the attainable unfairness payoff."""
    a, b = circles
    fair = max(
        a.perimeter + b.comm_ticks,
        b.perimeter + a.comm_ticks,
    )
    interleaved = max(
        a.perimeter, b.perimeter, a.comm_ticks + b.comm_ticks
    )
    return fair / interleaved


def run(
    fractions: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.45, 0.5, 0.55,
                                  0.6, 0.7),
    pairs_per_point: int = 60,
    same_period: bool = True,
    seed: int = 0,
) -> List[SweepPoint]:
    """Sweep communication fraction and sample pair compatibility."""
    rng = RandomStreams(seed).get("sweep")
    points: List[SweepPoint] = []
    for fraction in fractions:
        compatible = 0
        speedups: List[float] = []
        for _ in range(pairs_per_point):
            circles = _random_pair(rng, fraction, same_period)
            feasible = exact_pair_feasible_rotations(*circles)
            if not feasible.is_empty:
                compatible += 1
                speedups.append(_pair_speedup(circles))
        points.append(
            SweepPoint(
                comm_fraction=fraction,
                compatible_rate=compatible / pairs_per_point,
                mean_speedup=(
                    float(np.mean(speedups)) if speedups else 1.0
                ),
            )
        )
    return points


def report(points: Sequence[SweepPoint]) -> str:
    """Render the sweep."""
    rows = [
        (
            f"{p.comm_fraction:.0%}",
            f"{p.compatible_rate:.0%}",
            f"{p.mean_speedup:.2f}x",
        )
        for p in points
    ]
    return ascii_table(
        ["comm fraction", "compatible pairs", "mean payoff when compatible"],
        rows,
        title=(
            "Population sweep — equal-period random pairs: compatibility "
            "probability and unfairness payoff vs communication fraction"
        ),
    )


def main() -> None:
    """Print the sweep for equal and mixed periods."""
    with current().span("experiment.sweep"):
        print(report(run(same_period=True)))
        print()
        mixed = run(same_period=False)
        print(report(mixed).replace("equal-period", "mixed-period"))


if __name__ == "__main__":
    main()
