"""Figure 4: rotating circles to avoid congestion.

Two jobs with equal iteration times whose communication arcs collide at
rotation zero (Figure 4a); rotating one circle separates the arcs
(Figure 4b), so the jobs are compatible. This driver demonstrates both
states and verifies the rotation is the certificate: zero overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..telemetry import current
from ..analysis.report import ascii_table
from ..core.circle import JobCircle
from ..core.compatibility import CompatibilityChecker, CompatibilityResult
from ..core.rotation import rotation_to_degrees
from ..core.unified import UnifiedCircle


@dataclass
class Figure4Result:
    """Collision at rotation 0 and the solver's separating rotation."""

    circles: Dict[str, JobCircle]
    overlap_at_zero: int
    result: CompatibilityResult

    def rotation_degrees(self) -> Dict[str, float]:
        """Each job's rotation as an angle on its circle."""
        return {
            job_id: rotation_to_degrees(
                ticks, self.circles[job_id].perimeter
            )
            for job_id, ticks in self.result.rotations.items()
        }

    def report(self) -> str:
        """Before/after comparison."""
        degrees = self.rotation_degrees()
        rows = [
            ("overlap at rotation 0", f"{self.overlap_at_zero} ticks",
             "collision (Fig. 4a)"),
            ("compatible", str(self.result.compatible), "True (Fig. 4b)"),
            ("overlap after rotation", f"{self.result.overlap_ticks} ticks",
             "0"),
        ]
        for job_id, angle in degrees.items():
            rows.append(
                (f"rotation of {job_id}",
                 f"{self.result.rotations[job_id]} ticks = {angle:.0f} deg",
                 "any separating angle")
            )
        return ascii_table(
            ["quantity", "measured", "paper"],
            rows,
            title="Figure 4 — rotate the circles to avoid congestion",
        )


def run(
    perimeter: int = 100,
    comm_1: int = 40,
    comm_2: int = 45,
) -> Figure4Result:
    """Build two equal-period jobs that collide at rotation zero.

    Defaults: both jobs have a 100-tick iteration; J1 communicates for 40
    ticks, J2 for 45 — together 85 < 100, so a separating rotation exists,
    but with both phases starting at the same angle they collide.
    """
    j1 = JobCircle.from_phases("J1", perimeter - comm_1, comm_1)
    j2 = JobCircle.from_phases("J2", perimeter - comm_2, comm_2)
    unified = UnifiedCircle([j1, j2])
    checker = CompatibilityChecker()
    result = checker.check_circles([j1, j2])
    return Figure4Result(
        circles={"J1": j1, "J2": j2},
        overlap_at_zero=unified.overlap_ticks(),
        result=result,
    )


def main() -> None:
    """Print the Figure 4 reproduction."""
    with current().span("experiment.figure4"):
        print(run().report())


if __name__ == "__main__":
    main()
