"""Multi-link fabric: placement and rotation on a fat-tree cluster.

ROADMAP item 1 made the simulation core multi-link; this experiment
drives the new tier end to end on a three-tier fat tree
(:meth:`repro.net.topology.Topology.fat_tree`) and asks the paper's §5
question at fabric scale: *does compatibility still pay when jobs span
racks, aggregation switches and the core?*

Two parts:

* **Placement** — a stream of alternating compute-heavy (type A) and
  comm-heavy (type B) jobs arrives on a ``k=4`` fat tree. Random,
  consolidated and compatibility-aware (cluster-level, i.e. the
  unified-circle audit of :mod:`repro.core.cluster_compat`) policies
  place them; every resulting cluster runs under the adaptive-unfair
  policy and is scored by slowdown. The compatibility-aware column
  should carry fewer A/B-mixed links and a lower mean slowdown.
* **Rotation** — three DCQCN jobs whose routes converge on one pod's
  downlinks run through the multi-link fluid engine twice: once with
  aligned communication phases (the incompatible alignment) and once
  staggered (the compatible rotation). Same fabric, same routes, same
  traffic — only the phase differs, reproducing Figure 4's sliding
  effect across a six-hop path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..analysis.report import ascii_table
from ..cc.adaptive import AdaptiveUnfair
from ..cc.dcqcn import DEFAULT_TIMER
from ..core.cluster_compat import ClusterCompatibilityProblem
from ..core.compatibility import CompatibilityChecker
from ..net.routing import Router
from ..net.topology import Topology
from ..runner import RunSpec, ScenarioSpec, SenderSpec, run_many
from ..scheduler.cluster import ClusterState
from ..scheduler.placement import (
    CompatibilityAwarePlacement,
    ConsolidatedPlacement,
    PlacementPolicy,
    RandomPlacement,
)
from ..sim.rng import RandomStreams
from ..telemetry import current
from ..units import gbps, ms
from ..workloads.job import JobSpec
from ..workloads.profiles import EFFECTIVE_BOTTLENECK

#: Fat-tree arity for the placement study (16 hosts, 96 directed links).
FAT_TREE_K = 4

#: Routes of the rotation demo: three jobs from three different pods,
#: all converging on pod 1's core->agg->edge downlinks.
ROTATION_ROUTES: Dict[str, Tuple[str, ...]] = {
    "J1": (
        "h0_0_0->edge0_0", "up_0_0_0", "core_0_0_0",
        "core_1_0_0_rev", "up_1_0_0_rev", "edge1_0->h1_0_0",
    ),
    "J2": (
        "h0_0_1->edge0_0", "up_0_0_0", "core_0_0_0",
        "core_1_0_0_rev", "up_1_0_0_rev", "edge1_0->h1_0_1",
    ),
    "J3": (
        "h2_0_0->edge2_0", "up_2_0_0", "core_2_0_0",
        "core_1_0_0_rev", "up_1_0_0_rev", "edge1_0->h1_0_0",
    ),
}


def type_a_job(job_id: str, n_workers: int) -> JobSpec:
    """Compute-heavy job: 250 ms compute + 50 ms communication."""
    return JobSpec(
        job_id=job_id,
        model_name="wideresnet",
        batch_size=800,
        compute_time=ms(250),
        comm_bytes=ms(50) * EFFECTIVE_BOTTLENECK,
        n_workers=n_workers,
    )


def type_b_job(job_id: str, n_workers: int) -> JobSpec:
    """Comm-heavier job: 150 ms compute + 110 ms communication."""
    return JobSpec(
        job_id=job_id,
        model_name="vgg19",
        batch_size=1200,
        compute_time=ms(150),
        comm_bytes=ms(110) * EFFECTIVE_BOTTLENECK,
        n_workers=n_workers,
    )


@dataclass
class FabricOutcome:
    """One placement policy's result on the fat-tree cluster."""

    policy_name: str
    placed: int
    mixed_links: int
    cluster_compatible: bool
    mean_slowdown: float
    max_slowdown: float


def _mixed_links(cluster: ClusterState) -> int:
    """Fabric links carrying both a type-A and a type-B job."""
    mixed = 0
    for jobs in cluster.link_sharing().values():
        kinds = {job_id[0] for job_id in jobs}
        if "A" in kinds and "B" in kinds:
            mixed += 1
    return mixed


def _cluster_audit(cluster: ClusterState) -> bool:
    """§5 cluster-wide audit: one rotation per job, every link at once."""
    checker = CompatibilityChecker(capacity=EFFECTIVE_BOTTLENECK)
    network_jobs = [job for job in cluster.jobs if job.uses_network]
    if not network_jobs:
        return True
    circles = [checker.circle(job.spec) for job in network_jobs]
    links_by_job = {
        job.job_id: [link.name for link in job.links]
        for job in network_jobs
    }
    problem = ClusterCompatibilityProblem.from_assignments(
        circles, links_by_job
    )
    return problem.solve().compatible


def run_placement(
    policies: Sequence[PlacementPolicy] | None = None,
    n_jobs: int = 6,
    n_iterations: int = 30,
    seed: int = 0,
) -> List[FabricOutcome]:
    """Place an A/B job stream on the fat tree with each policy.

    GPUs are scarce (2 per host, so a rack holds 4 workers) and jobs
    need 4-8 workers: most must span racks — often pods — and the
    policies differ exactly in *whose* uplinks they spill onto.
    """
    if policies is None:
        policies = [
            RandomPlacement(seed=seed),
            ConsolidatedPlacement(),
            CompatibilityAwarePlacement(cluster_level=True),
        ]
    prepared: List[Tuple[PlacementPolicy, int, int, bool]] = []
    specs: List[RunSpec] = []
    for policy in policies:
        rng = RandomStreams(seed).get("fattree-arrivals")
        topology = Topology.fat_tree(
            FAT_TREE_K, host_capacity=EFFECTIVE_BOTTLENECK
        )
        cluster = ClusterState(
            topology, gpus_per_host=2, router=Router(topology)
        )
        placements: List[Tuple[JobSpec, List[str]]] = []
        for index in range(n_jobs):
            workers = int(rng.choice([4, 6, 8]))
            if index % 2 == 0:
                spec = type_a_job(f"A{index}", workers)
            else:
                spec = type_b_job(f"B{index}", workers)
            try:
                hosts = policy.place(cluster, spec, workers)
            except Exception:
                continue  # all policies see the same arrival sequence
            cluster.place(spec, hosts)
            placements.append((spec, list(hosts)))
        specs.append(
            RunSpec(
                backend="cluster",
                label=f"fattree-{policy.name}",
                seed=seed,
                policy=AdaptiveUnfair(),
                topology=topology,
                n_iterations=n_iterations,
                capacity=EFFECTIVE_BOTTLENECK,
                options=(
                    (
                        "placements",
                        tuple(
                            (spec, tuple(hosts))
                            for spec, hosts in placements
                        ),
                    ),
                    ("gpus_per_host", 2),
                ),
            )
        )
        prepared.append((
            policy,
            len(placements),
            _mixed_links(cluster),
            _cluster_audit(cluster),
        ))
    results = run_many(specs)
    outcomes: List[FabricOutcome] = []
    for (policy, placed, mixed, clean), run_result in zip(
        prepared, results
    ):
        slowdown = {
            job_id: float(value)
            for job_id, value in run_result.data["slowdown"].items()
        }
        outcomes.append(
            FabricOutcome(
                policy_name=policy.name,
                placed=placed,
                mixed_links=mixed,
                cluster_compatible=clean,
                mean_slowdown=(
                    sum(slowdown.values()) / len(slowdown)
                    if slowdown else float("nan")
                ),
                max_slowdown=(
                    max(slowdown.values()) if slowdown else float("nan")
                ),
            )
        )
    return outcomes


@dataclass
class RotationOutcome:
    """Mean iteration time per phase alignment on the fabric."""

    scenario: str
    mean_iteration_ms: float
    worst_queue_kib: float


def rotation_spec(
    duration: float = 0.05,
    compute_time: float = 0.0016,
    comm_seconds: float = 0.0007,
    seed: int = 0,
) -> RunSpec:
    """Aligned vs staggered communication on converging fabric routes.

    One fluid-backend spec, two scenarios: ``aligned`` starts all three
    jobs together (their comm phases collide on the shared pod-1
    downlinks every iteration), ``staggered`` offsets them by a third of
    the solo period each — the compatible rotation. The default comm
    fraction (~30%) keeps three jobs *compatible*: a third-of-period
    stagger removes the overlap entirely, which is the whole effect.
    """
    capacity = gbps(50)
    period = compute_time + comm_seconds

    def senders(staggered: bool) -> Tuple[SenderSpec, ...]:
        return tuple(
            SenderSpec(
                name=name,
                timer=DEFAULT_TIMER,
                compute_time=compute_time,
                comm_bytes=comm_seconds * capacity,
                start_offset=(
                    index * period / len(ROTATION_ROUTES)
                    if staggered else 0.0
                ),
                stream=f"dcqcn:{name}:{'rot' if staggered else 'ali'}",
                route=ROTATION_ROUTES[name],
            )
            for index, name in enumerate(sorted(ROTATION_ROUTES))
        )

    return RunSpec(
        backend="fluid",
        label="fattree-rotation",
        seed=seed,
        capacity=capacity,
        topology=Topology.fat_tree(FAT_TREE_K, host_capacity=capacity),
        duration=duration,
        scenarios=(
            ScenarioSpec(name="aligned", senders=senders(False)),
            ScenarioSpec(name="staggered", senders=senders(True)),
        ),
        options=(("dt", 10e-6), ("engine", "vector")),
    )


def run_rotation(seed: int = 0) -> List[RotationOutcome]:
    """Run the rotation demo and summarize both alignments."""
    [result] = run_many([rotation_spec(seed=seed)])
    outcomes: List[RotationOutcome] = []
    for name in ("aligned", "staggered"):
        scenario = result.scenario(name)
        times: List[float] = []
        for job in sorted(ROTATION_ROUTES):
            times.extend(
                scenario.iteration_times(job, skip=1).tolist()
            )
        worst = max(
            float(series.values.max())
            for series in scenario.trace.link_queue_series.values()
        )
        outcomes.append(
            RotationOutcome(
                scenario=name,
                mean_iteration_ms=1e3 * sum(times) / len(times),
                worst_queue_kib=worst / 1024.0,
            )
        )
    return outcomes


def report(
    placement: Sequence[FabricOutcome],
    rotation: Sequence[RotationOutcome],
) -> str:
    """Render both fat-tree comparisons."""
    placement_table = ascii_table(
        ["placement policy", "jobs placed", "A/B-mixed links",
         "cluster audit", "mean slowdown", "max slowdown"],
        [
            (
                outcome.policy_name,
                str(outcome.placed),
                str(outcome.mixed_links),
                "pass" if outcome.cluster_compatible else "FAIL",
                f"{outcome.mean_slowdown:.3f}",
                f"{outcome.max_slowdown:.3f}",
            )
            for outcome in placement
        ],
        title=(
            f"fat-tree (k={FAT_TREE_K}) placement — "
            "cluster-level compatibility vs locality"
        ),
    )
    rotation_table = ascii_table(
        ["phase alignment", "mean iteration (ms)", "worst queue (KiB)"],
        [
            (
                outcome.scenario,
                f"{outcome.mean_iteration_ms:.3f}",
                f"{outcome.worst_queue_kib:.1f}",
            )
            for outcome in rotation
        ],
        title="fat-tree rotation — aligned vs staggered comm phases",
    )
    return placement_table + "\n\n" + rotation_table


def main() -> None:
    """Print the fat-tree fabric comparisons."""
    with current().span("experiment.fattree"):
        print(report(run_placement(), run_rotation()))


if __name__ == "__main__":
    main()
