"""§5 extensions: cluster-level compatibility, multi-tenancy, tuning.

Three experiments for the discussion-section directions the paper
sketches but does not evaluate:

* :func:`cluster_level_experiment` — jobs traversing multiple links with
  different co-tenants per link; a single rotation per job must satisfy
  every link (§5 "Cluster-level compatibility"). The headline: a set of
  jobs that could *never* fit one link together is perfectly schedulable
  across a path because non-sharing jobs may overlap.
* :func:`multi_tenancy_experiment` — fractional link demands (§5 "GPU
  multi-tenancy" generalization): two half-rate jobs may overlap freely,
  so instances infeasible at demand 1 become feasible at demand 0.5.
* :func:`tuning_experiment` — §5 "Impact of hyper-parameters": an
  incompatible pair becomes compatible after a small batch-size change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..telemetry import current
from ..analysis.report import ascii_table
from ..core.circle import JobCircle
from ..core.cluster_compat import (
    ClusterCompatibilityProblem,
    ClusterCompatibilityResult,
)
from ..core.optimize import solve, solve_fractional
from ..core.tuning import TuningSuggestion, suggest_compute_scaling


# ---------------------------------------------------------------------------
# Cluster-level compatibility
# ---------------------------------------------------------------------------

@dataclass
class ClusterLevelResult:
    """Single-link vs cluster-level verdicts for the same job set."""

    single_link_compatible: bool
    cluster: ClusterCompatibilityResult

    def report(self) -> str:
        """Comparison table."""
        rows = [
            ("all four jobs on ONE link",
             "compatible" if self.single_link_compatible else "incompatible"),
            ("same jobs across a path (chain of links)",
             "compatible" if self.cluster.compatible else "incompatible"),
            ("per-job rotations", str(self.cluster.rotations)),
            ("violated links", str(self.cluster.violated_links or "none")),
            ("solver", self.cluster.method),
        ]
        return ascii_table(
            ["scenario", "outcome"],
            rows,
            title="S5 — cluster-level compatibility across multiple links",
        )


def cluster_level_experiment() -> ClusterLevelResult:
    """Four comm-heavy jobs on a chain: infeasible on one link, feasible
    across the fabric.

    Jobs a, b, c, d each communicate 120 of 300 ticks. On a single link
    the four together demand 480 > 300 — provably incompatible. On a
    chain where consecutive jobs share one link each (a-b on L1, b-c on
    L2, c-d on L3) only *neighbours* must avoid each other, and a single
    rotation per job satisfies all three links simultaneously.
    """
    circles = [
        JobCircle.from_phases(job_id, 180, 120)
        for job_id in ("a", "b", "c", "d")
    ]
    single = solve(circles)
    problem = ClusterCompatibilityProblem.from_assignments(
        circles,
        {
            "a": ["L1"],
            "b": ["L1", "L2"],
            "c": ["L2", "L3"],
            "d": ["L3"],
        },
    )
    return ClusterLevelResult(
        single_link_compatible=single.found,
        cluster=problem.solve(),
    )


# ---------------------------------------------------------------------------
# GPU multi-tenancy / fractional demands
# ---------------------------------------------------------------------------

@dataclass
class MultiTenancyResult:
    """Feasibility at full vs fractional demand."""

    full_demand_compatible: bool
    half_demand_compatible: bool
    half_overlap: int

    def report(self) -> str:
        """Comparison table."""
        rows = [
            ("demand 1.0 each (classic formulation)",
             "compatible" if self.full_demand_compatible else "incompatible"),
            ("demand 0.5 each (bandwidth-limited jobs)",
             "compatible" if self.half_demand_compatible else "incompatible"),
        ]
        return ascii_table(
            ["scenario", "outcome"],
            rows,
            title="S5 — fractional demands (GPU multi-tenancy analogue)",
        )


def multi_tenancy_experiment() -> MultiTenancyResult:
    """Two 60%-comm jobs: infeasible at full demand, trivial at half."""
    full = [
        JobCircle.from_phases("p", 40, 60),
        JobCircle.from_phases("q", 40, 60),
    ]
    half = [
        JobCircle.from_phases("p", 40, 60, demand=0.5),
        JobCircle.from_phases("q", 40, 60, demand=0.5),
    ]
    full_outcome = solve(full)
    half_outcome = solve_fractional(half)
    return MultiTenancyResult(
        full_demand_compatible=full_outcome.found,
        half_demand_compatible=half_outcome.found,
        half_overlap=half_outcome.overlap,
    )


# ---------------------------------------------------------------------------
# Hyper-parameter tuning
# ---------------------------------------------------------------------------

@dataclass
class TuningResult:
    """Before/after of a compatibility-restoring batch adjustment."""

    before_compatible: bool
    suggestion: Optional[TuningSuggestion]

    def report(self) -> str:
        """Comparison table."""
        rows: List[tuple] = [
            ("before tuning",
             "compatible" if self.before_compatible else "incompatible"),
        ]
        if self.suggestion is None:
            rows.append(("after tuning", "no fix within budget"))
        else:
            scales = {
                job: f"{scale:+.0%}".replace("+0%", "0%")
                for job, scale in (
                    (j, s - 1.0) for j, s in self.suggestion.scales.items()
                )
            }
            rows.append(("after tuning", "compatible"))
            rows.append(("batch adjustments", str(scales)))
            rows.append(
                ("jobs touched", str(self.suggestion.jobs_touched))
            )
        return ascii_table(
            ["stage", "outcome"],
            rows,
            title="S5 — hyper-parameter tuning restores compatibility",
        )


def tuning_experiment() -> TuningResult:
    """The Figure-1 VGG19 pair (52% comm) fixed by a small batch bump.

    Growing each job's batch ~10% stretches the compute phase from 100 to
    110 ms while the gradient (and hence the 110 ms communication arc)
    stays fixed — comm fraction drops to 50% and the pair becomes exactly
    compatible.
    """
    circles = [
        JobCircle.from_phases("vgg19-a", 100, 110),
        JobCircle.from_phases("vgg19-b", 100, 110),
    ]
    before = solve(circles)
    suggestion = suggest_compute_scaling(
        circles, max_scale_change=0.25, steps=10
    )
    return TuningResult(
        before_compatible=before.found,
        suggestion=suggestion,
    )


def scaling_frontier_report() -> str:
    """§5's lever quantified per model: the batch size at which two
    copies of a job become fully compatible on a shared link."""
    from ..workloads.models import MODEL_ZOO
    from ..workloads.scaling import (
        scaling_profile,
        self_compatibility_threshold,
    )

    rows = []
    for name in sorted(MODEL_ZOO):
        threshold = self_compatibility_threshold(name)
        if threshold is None:
            rows.append((name, "beyond 65536", "-"))
            continue
        point = scaling_profile(name, [threshold])[0]
        rows.append(
            (
                name,
                str(threshold),
                f"{point.iteration_time * 1e3:.0f} ms",
            )
        )
    return ascii_table(
        ["model (ring allreduce, 8 workers)",
         "self-compatibility batch threshold",
         "iteration time at threshold"],
        rows,
        title="S5 — the batch-size lever: when do two copies interleave?",
    )


def main() -> None:
    """Print all §5 extension experiments."""
    with current().span("experiment.extensions"):
        print(cluster_level_experiment().report())
        print()
        print(multi_tenancy_experiment().report())
        print()
        print(tuning_experiment().report())
        print()
        print(scaling_frontier_report())


if __name__ == "__main__":
    main()
