"""Cross-fidelity validation: does the fine-grained DCQCN model agree?

The phase-level simulator asserts that a static weight skew slides
compatible jobs apart. That abstraction is only trustworthy if the same
behaviour emerges from the *microsecond-scale* DCQCN rate dynamics with
the actual ``T`` knob — no fluid-allocator shortcut anywhere. This
experiment runs the Figure 1 VGG19 pair as on-off DCQCN traffic sources
and compares fair (both T = 125 µs) against unfair (J1 at T = 100 µs)
mean iteration times, exactly like the testbed protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..telemetry import current
from ..analysis.report import ascii_table
from ..cc.dcqcn import (
    AGGRESSIVE_TIMER,
    DEFAULT_TIMER,
    DcqcnFluidSimulator,
    DcqcnParams,
    OnOffDcqcnJob,
)
from ..sim.rng import RandomStreams
from ..units import gbps

#: The Figure 2 VGG19 profile at 50 Gbps line rate: 100 ms compute plus
#: 110 ms worth of bytes at the ~42 Gbps effective goodput.
COMPUTE_TIME = 0.100
COMM_BYTES = 0.110 * gbps(42)


@dataclass
class CrossFidelityResult:
    """Mean iteration times from the fine-grained runs."""

    fair_ms: Dict[str, float]
    unfair_ms: Dict[str, float]
    iterations: Dict[str, int]

    def speedup(self, job: str) -> float:
        """Fair over unfair mean iteration time."""
        return self.fair_ms[job] / self.unfair_ms[job]

    def report(self) -> str:
        """Comparison table, with the phase-level prediction row."""
        rows = []
        for job in self.fair_ms:
            rows.append(
                (
                    job,
                    f"{self.fair_ms[job]:.0f}",
                    f"{self.unfair_ms[job]:.0f}",
                    f"{self.speedup(job):.2f}x",
                    str(self.iterations[job]),
                )
            )
        table = ascii_table(
            ["job", "fair ms", "unfair ms", "speedup", "iterations"],
            rows,
            title=(
                "Cross-fidelity: on-off jobs driven by the raw DCQCN "
                "state machine (T = 125 vs 100 us)"
            ),
        )
        return table + (
            "\nphase-level prediction: both jobs speed up "
            "(fair ~320 ms -> unfair ~230-250 ms)"
        )


def run(
    duration: float = 3.0,
    dt: float = 10e-6,
    skip: int = 3,
    seed: int = 5,
) -> CrossFidelityResult:
    """Run both scenarios at fine granularity and summarize."""
    streams = RandomStreams(seed)

    def scenario(timers: Dict[str, float]) -> Dict[str, OnOffDcqcnJob]:
        sim = DcqcnFluidSimulator(capacity=gbps(50), dt=dt)
        jobs: Dict[str, OnOffDcqcnJob] = {}
        params = DcqcnParams(line_rate=gbps(50))
        for index, (name, timer) in enumerate(timers.items()):
            job = OnOffDcqcnJob(
                name,
                params.with_timer(timer),
                streams.get(f"xfid:{name}:{timer}"),
                compute_time=COMPUTE_TIME,
                comm_bytes=COMM_BYTES,
                start_offset=index * 0.004,
            )
            jobs[name] = job
            sim.add_source(job)
        sim.run(duration)
        return jobs

    fair = scenario({"J1": DEFAULT_TIMER, "J2": DEFAULT_TIMER})
    unfair = scenario({"J1": AGGRESSIVE_TIMER, "J2": DEFAULT_TIMER})

    def mean_ms(job: OnOffDcqcnJob) -> float:
        times = job.iteration_times()[skip:]
        return float(np.mean(times) * 1e3)

    return CrossFidelityResult(
        fair_ms={name: mean_ms(job) for name, job in fair.items()},
        unfair_ms={name: mean_ms(job) for name, job in unfair.items()},
        iterations={
            name: len(job.iteration_ends) for name, job in unfair.items()
        },
    )


def main() -> None:
    """Print the cross-fidelity comparison."""
    with current().span("experiment.crossfidelity"):
        print(run().report())


if __name__ == "__main__":
    main()
