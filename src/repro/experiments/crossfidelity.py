"""Cross-fidelity validation: does the fine-grained DCQCN model agree?

The phase-level simulator asserts that a static weight skew slides
compatible jobs apart. That abstraction is only trustworthy if the same
behaviour emerges from the *microsecond-scale* DCQCN rate dynamics with
the actual ``T`` knob — no fluid-allocator shortcut anywhere. This
experiment runs the Figure 1 VGG19 pair as on-off DCQCN traffic sources
and compares fair (both T = 125 µs) against unfair (J1 at T = 100 µs)
mean iteration times, exactly like the testbed protocol.

:func:`dt_sweep` additionally re-runs the comparison at coarser fluid
time steps — a resolution-robustness check that fans out across
processes under ``--jobs N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..telemetry import current
from ..analysis.report import ascii_table
from ..cc.dcqcn import AGGRESSIVE_TIMER, DEFAULT_TIMER
from ..runner import RunSpec, ScenarioSpec, SenderSpec, run_many
from ..units import gbps, to_milliseconds

#: The Figure 2 VGG19 profile at 50 Gbps line rate: 100 ms compute plus
#: 110 ms worth of bytes at the ~42 Gbps effective goodput.
COMPUTE_TIME = 0.100
COMM_BYTES = 0.110 * gbps(42)


@dataclass
class CrossFidelityResult:
    """Mean iteration times from the fine-grained runs."""

    fair_ms: Dict[str, float]
    unfair_ms: Dict[str, float]
    iterations: Dict[str, int]

    def speedup(self, job: str) -> float:
        """Fair over unfair mean iteration time."""
        return self.fair_ms[job] / self.unfair_ms[job]

    def report(self) -> str:
        """Comparison table, with the phase-level prediction row."""
        rows = []
        for job in self.fair_ms:
            rows.append(
                (
                    job,
                    f"{self.fair_ms[job]:.0f}",
                    f"{self.unfair_ms[job]:.0f}",
                    f"{self.speedup(job):.2f}x",
                    str(self.iterations[job]),
                )
            )
        table = ascii_table(
            ["job", "fair ms", "unfair ms", "speedup", "iterations"],
            rows,
            title=(
                "Cross-fidelity: on-off jobs driven by the raw DCQCN "
                "state machine (T = 125 vs 100 us)"
            ),
        )
        return table + (
            "\nphase-level prediction: both jobs speed up "
            "(fair ~320 ms -> unfair ~230-250 ms)"
        )


def _lineup(timers: Dict[str, float]) -> tuple:
    """The on-off sender lineup for one scenario.

    Stream names replicate the original experiment's
    ``xfid:<name>:<timer>`` convention, so the fair and unfair
    scenarios draw exactly the jitter sequences they always did.
    """
    return tuple(
        SenderSpec(
            name,
            timer,
            compute_time=COMPUTE_TIME,
            comm_bytes=COMM_BYTES,
            start_offset=index * 0.004,
            stream=f"xfid:{name}:{timer}",
        )
        for index, (name, timer) in enumerate(timers.items())
    )


def _spec(
    duration: float,
    dt: float,
    seed: int,
    label: str = "crossfidelity",
    engine: str = "vector",
) -> RunSpec:
    """Both scenarios in one fluid spec (they share random streams)."""
    return RunSpec(
        backend="fluid",
        label=label,
        seed=seed,
        capacity=gbps(50),
        duration=duration,
        options=(("dt", dt), ("engine", engine)),
        scenarios=(
            ScenarioSpec(
                "fair",
                _lineup({"J1": DEFAULT_TIMER, "J2": DEFAULT_TIMER}),
            ),
            ScenarioSpec(
                "unfair",
                _lineup({"J1": AGGRESSIVE_TIMER, "J2": DEFAULT_TIMER}),
            ),
        ),
    )


def _summarize(result, skip: int) -> CrossFidelityResult:
    fair = result.scenario("fair")
    unfair = result.scenario("unfair")

    def mean_ms(scenario, name: str) -> float:
        # All tiers share the canonical timeline schema, so the summary
        # is one accessor call — no per-backend glue.
        return to_milliseconds(
            scenario.timeline(name).mean_iteration_time(skip=skip)
        )

    names = ("J1", "J2")
    return CrossFidelityResult(
        fair_ms={name: mean_ms(fair, name) for name in names},
        unfair_ms={name: mean_ms(unfair, name) for name in names},
        iterations={name: unfair.iterations(name) for name in names},
    )


def run(
    duration: float = 3.0,
    dt: float = 10e-6,
    skip: int = 3,
    seed: int = 5,
    engine: str = "vector",
) -> CrossFidelityResult:
    """Run both scenarios at fine granularity and summarize."""
    [result] = run_many(
        [_spec(duration, dt, seed, engine=engine)], batch=True
    )
    return _summarize(result, skip)


@dataclass
class DtSweepPoint:
    """One resolution level of the dt sweep."""

    dt: float
    result: CrossFidelityResult


def dt_sweep(
    dts: Sequence[float] = (10e-6, 20e-6, 40e-6),
    duration: float = 1.2,
    skip: int = 1,
    seed: int = 5,
    engine: str = "vector",
) -> List[DtSweepPoint]:
    """The fair/unfair comparison at several fluid time steps.

    One spec per resolution, all submitted through a single
    :func:`run_many` call — the embarrassingly parallel shape the
    runner exists for.
    """
    specs = [
        _spec(
            duration, dt, seed,
            label=f"crossfidelity-dt-{dt:g}",
            engine=engine,
        )
        for dt in dts
    ]
    results = run_many(specs, batch=True)
    return [
        DtSweepPoint(dt=dt, result=_summarize(result, skip))
        for dt, result in zip(dts, results)
    ]


def dt_sweep_report(points: Sequence[DtSweepPoint]) -> str:
    """Render the resolution-robustness table."""
    rows = [
        (
            f"{point.dt * 1e6:.0f} us",
            f"{point.result.speedup('J1'):.2f}x",
            f"{point.result.speedup('J2'):.2f}x",
        )
        for point in points
    ]
    return ascii_table(
        ["fluid dt", "J1 speedup", "J2 speedup"],
        rows,
        title="Cross-fidelity dt sweep — unfairness payoff vs resolution",
    )


def main() -> None:
    """Print the cross-fidelity comparison and the dt sweep."""
    with current().span("experiment.crossfidelity"):
        print(run().report())
        print()
        print(dt_sweep_report(dt_sweep()))


if __name__ == "__main__":
    main()
