"""Experiment drivers: one module per paper artifact.

Each driver returns a structured result object and has a ``main()`` that
prints the paper-vs-measured comparison; the benchmarks in ``benchmarks/``
wrap the same functions with ``pytest-benchmark``.

========  =========================================  =======================
artifact  what it shows                              driver
========  =========================================  =======================
Fig. 1b/c per-job bandwidth, fair vs T-skewed DCQCN  :mod:`.figure1`
Fig. 1d   CDF of iteration times over 1k iterations :mod:`.figure1`
Fig. 2    link utilization, the sliding effect      :mod:`.figure2`
Fig. 3    the VGG16 circle                           :mod:`.figure3`
Fig. 4    rotation finds non-colliding overlay       :mod:`.figure4`
Fig. 5    unified circle, LCM(40,60)=120, 30° turn   :mod:`.figure5`
Table 1   five groups, fair vs unfair, verdicts      :mod:`.table1`
§4 (i)    adaptively-unfair CC                       :mod:`.ablations`
§4 (ii)   switch priority queues                     :mod:`.mechanisms_exp`
§4 (iii)  precise flow scheduling                    :mod:`.mechanisms_exp`
§4-§5     compatibility-aware placement              :mod:`.scheduler_exp`
§4-§5     online service, arrival-rate sweep         :mod:`.online`
(valid.)  raw-DCQCN cross-fidelity check             :mod:`.crossfidelity`
§5        cluster-level / multi-tenancy / tuning     :mod:`.extensions`
(survey)  population compatibility sweep             :mod:`.sweep`
§5        fat-tree fabric placement + rotation       :mod:`.fattree`
========  =========================================  =======================
"""

from . import (
    common,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    table1,
    ablations,
    mechanisms_exp,
    online,
    scheduler_exp,
    crossfidelity,
    extensions,
    fattree,
    sweep,
)

__all__ = [
    "common",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "table1",
    "ablations",
    "mechanisms_exp",
    "online",
    "scheduler_exp",
    "crossfidelity",
    "extensions",
    "fattree",
    "sweep",
]
