"""Figure 3: the geometric abstraction for one job.

The paper rolls VGG16's time-series network demand (iteration 255 ms, the
first 141 ms pure compute) around a circle: all iterations' communication
phases land on the same arc ``[141, 255)``. This driver builds exactly
that circle, generates the solo demand trace of Figure 3a, and verifies
the rolled trace lands on the circle's arcs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..telemetry import current
from ..analysis.report import ascii_table
from ..core.circle import JobCircle
from ..sim.trace import StepFunction
from ..workloads.profiles import EFFECTIVE_BOTTLENECK, figure3_vgg16
from ..workloads.traces import demand_trace

#: Geometry quantization for the figure (1 tick = 1 ms, as in the paper).
TICKS_PER_SECOND = 1000

#: Paper's stated numbers for the VGG16 circle, ms.
PAPER_PERIMETER_MS = 255
PAPER_COMPUTE_MS = 141


@dataclass
class Figure3Result:
    """The VGG16 circle plus its solo demand trace."""

    circle: JobCircle
    trace: StepFunction
    n_iterations: int

    @property
    def perimeter_ms(self) -> int:
        """Iteration time (circle perimeter), ms."""
        return self.circle.perimeter

    @property
    def comm_arc_ms(self) -> Tuple[int, int]:
        """Start and end of the communication arc, ms."""
        (start, end), = self.circle.comm.intervals
        return start, end

    def rolled_demand(self) -> List[Tuple[float, bool]]:
        """Sample the trace and map each time onto the circle.

        Returns ``(position on circle in ms, demand on?)`` samples; the
        Figure 3b observation is that the on-samples all fall inside the
        communication arc.
        """
        period_s = self.perimeter_ms / TICKS_PER_SECOND  # simlint: disable=UNIT002 - this experiment runs the sim at 1 ms ticks, so ms values are tick values
        horizon = self.n_iterations * period_s
        samples = []
        for t in np.arange(0.0, horizon, 0.001):
            position = (t % period_s) * TICKS_PER_SECOND
            on = self.trace.value_at(t) > 0
            samples.append((position, on))
        return samples

    def roll_is_consistent(self) -> bool:
        """Every communicating instant lands on the comm arc (and vice
        versa, away from the 1 ms quantization boundary)."""
        start, end = self.comm_arc_ms
        for position, on in self.rolled_demand():
            inside = start <= position < end
            if abs(position - start) < 1 or abs(position - end) < 1:
                continue  # quantization boundary
            if on != inside:
                return False
        return True

    def report(self) -> str:
        """Paper-vs-measured circle parameters."""
        start, end = self.comm_arc_ms
        rows = [
            ("perimeter (iteration time)", f"{self.perimeter_ms} ms",
             f"{PAPER_PERIMETER_MS} ms"),
            ("compute arc", f"[0, {start}) ms",
             f"[0, {PAPER_COMPUTE_MS}) ms"),
            ("communication arc", f"[{start}, {end}) ms",
             f"[{PAPER_COMPUTE_MS}, {PAPER_PERIMETER_MS}) ms"),
            ("roll consistent across iterations",
             str(self.roll_is_consistent()), "True"),
        ]
        return ascii_table(
            ["quantity", "measured", "paper"],
            rows,
            title="Figure 3 — VGG16 on its circle",
        )


def run(n_iterations: int = 5) -> Figure3Result:
    """Build the Figure 3 circle and demand trace."""
    spec = figure3_vgg16()
    circle = JobCircle.from_job(
        spec, EFFECTIVE_BOTTLENECK, ticks_per_second=TICKS_PER_SECOND
    )
    trace = demand_trace(spec, EFFECTIVE_BOTTLENECK, n_iterations)
    return Figure3Result(
        circle=circle, trace=trace, n_iterations=n_iterations
    )


def main() -> None:
    """Print the Figure 3 reproduction."""
    with current().span("experiment.figure3"):
        print(run().report())


if __name__ == "__main__":
    main()
