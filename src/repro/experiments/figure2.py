"""Figure 2: the sliding effect, iteration by iteration.

Runs the two VGG19 jobs from the same start under fair and 2:1-unfair
sharing and extracts what the paper's Figure 2 shows:

* per-link utilization over the first iterations (fair: both jobs pinned
  at ~50% forever; unfair: the overlap region shrinks every iteration
  until the communication phases interleave);
* the time anchors the paper quotes — J1 finishing its first iteration at
  ~0.28 s vs J2 at ~0.32 s, and their second communication phases starting
  at ~0.38 s and ~0.42 s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..telemetry import current
from ..analysis.report import ascii_table, ascii_timeline
from ..analysis.timeseries import utilization_series
from ..cc.fair import FairSharing
from ..cc.weighted import StaticWeighted
from ..net.phasesim import SimulationResult
from ..runner import run_many
from ..workloads.profiles import EFFECTIVE_BOTTLENECK, figure2_vgg19_pair
from .common import BOTTLENECK, phase_spec

#: The paper's Figure 2b time anchors, seconds.
PAPER_ANCHORS = {
    "J1 first iteration end": 0.28,
    "J2 first iteration end": 0.32,
    "J1 second comm start": 0.38,
    "J2 second comm start": 0.42,
}


@dataclass
class Figure2Result:
    """Both scenarios plus the derived series and anchors."""

    fair: SimulationResult
    unfair: SimulationResult
    capacity: float

    def anchors(self) -> Dict[str, float]:
        """Measured counterparts of the paper's Figure 2b time anchors."""
        j1 = self.unfair.timeline("J1").samples
        j2 = self.unfair.timeline("J2").samples
        return {
            "J1 first iteration end": j1[0].end,
            "J2 first iteration end": j2[0].end,
            "J1 second comm start": j1[1].comm_start,
            "J2 second comm start": j2[1].comm_start,
        }

    def utilization(
        self,
        scenario: str,
        job_id: str,
        end: float = 1.3,
        n_samples: int = 400,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One job's share of the bottleneck over time, in [0, 1]."""
        result = self.fair if scenario == "fair" else self.unfair
        job = result.jobs[job_id]
        return utilization_series(
            job.rate_trace, self.capacity, 0.0, end, n_samples
        )

    def link_utilization(
        self, scenario: str, end: float = 1.3, n_samples: int = 400
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Total bottleneck utilization over time."""
        result = self.fair if scenario == "fair" else self.unfair
        return utilization_series(
            result.link_loads[BOTTLENECK], self.capacity, 0.0, end, n_samples
        )

    def slide_convergence(self, tolerance: float = 0.05):
        """When do the unfair iteration times settle?

        Because this workload's total communication demand slightly
        exceeds its solo period, the slide ends in a bounded *limit
        cycle* (the residual overlap rotates around the circle) rather
        than a fixed point: expect convergence at a loose tolerance
        (~15%) but not at a tight one. Fully compatible pairs converge to
        an exact fixed point instead. Returns a
        :class:`repro.analysis.convergence.Convergence`."""
        from ..analysis.convergence import detect_convergence

        return detect_convergence(
            self.unfair.iteration_times("J1"), tolerance=tolerance
        )

    def overlap_per_iteration(self, max_iterations: int = 6) -> List[float]:
        """Seconds both jobs communicate simultaneously, per J1 iteration.

        The paper's qualitative claim: this shrinks iteration over
        iteration under unfairness and vanishes once the phases interleave.
        """
        j1 = self.unfair.timeline("J1")
        j2 = self.unfair.timeline("J2")
        overlaps: List[float] = []
        for sample in j1.samples[:max_iterations]:
            overlap = 0.0
            for other in j2:
                lo = max(sample.comm_start, other.comm_start)
                hi = min(sample.end, other.end)
                overlap += max(0.0, hi - lo)
            overlaps.append(overlap)
        return overlaps

    def report(self) -> str:
        """Timelines, anchors and the shrinking-overlap series."""
        lines = ["Figure 2 — bottleneck utilization per job"]
        for scenario in ("fair", "unfair"):
            for job_id in ("J1", "J2"):
                times, util = self.utilization(scenario, job_id)
                lines.append(
                    ascii_timeline(times, util, f"{scenario}/{job_id}")
                )
        anchor_rows = [
            (name, f"{measured:.2f} s", f"{PAPER_ANCHORS[name]:.2f} s")
            for name, measured in self.anchors().items()
        ]
        lines.append("")
        lines.append(
            ascii_table(
                ["anchor", "measured", "paper"],
                anchor_rows,
                title="Figure 2b time anchors",
            )
        )
        overlaps = self.overlap_per_iteration()
        lines.append("")
        lines.append(
            "comm-phase overlap per iteration (s): "
            + ", ".join(f"{o * 1e3:.0f}ms" for o in overlaps)
        )
        return "\n".join(lines)


def run(
    n_iterations: int = 8,
    weight_ratio: float = 2.0,
    seed: int = 0,
) -> Figure2Result:
    """Run both Figure 2 scenarios from a simultaneous start."""
    j1, j2 = figure2_vgg19_pair()
    fair_result, unfair_result = run_many(
        [
            phase_spec(
                [j1, j2],
                FairSharing(),
                n_iterations=n_iterations,
                seed=seed,
                label="figure2-fair",
            ),
            phase_spec(
                [j1, j2],
                StaticWeighted.from_aggressiveness_order(
                    [j1.job_id, j2.job_id], weight_ratio
                ),
                n_iterations=n_iterations,
                seed=seed,
                label="figure2-unfair",
            ),
        ],
        batch=True,
    )
    return Figure2Result(
        fair=fair_result.phase,
        unfair=unfair_result.phase,
        capacity=EFFECTIVE_BOTTLENECK,
    )


def main() -> None:
    """Print the Figure 2 reproduction."""
    with current().span("experiment.figure2"):
        print(run().report())


if __name__ == "__main__":
    main()
