"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Each subsystem raises its own subclass, which keeps error
handling in experiments and schedulers explicit about what failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigError(ReproError):
    """Raised when a user-supplied configuration value is invalid."""


class SimulationError(ReproError):
    """Raised when the discrete-event engine reaches an inconsistent state."""


class TopologyError(ReproError):
    """Raised for malformed network topologies (unknown node, bad link...)."""


class RoutingError(ReproError):
    """Raised when no route exists between two endpoints."""


class AllocationError(ReproError):
    """Raised when a bandwidth allocation violates link capacities."""


class WorkloadError(ReproError):
    """Raised for invalid workload or job specifications."""


class GeometryError(ReproError):
    """Raised for invalid geometric-abstraction inputs (arcs, circles)."""


class CompatibilityError(ReproError):
    """Raised when a compatibility query cannot be answered."""


class PlacementError(ReproError):
    """Raised when the scheduler cannot place a job on the cluster."""


class CalibrationError(ReproError):
    """Raised when profile calibration cannot match a target."""
