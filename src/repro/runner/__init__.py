"""The unified run layer: declarative specs, backends, parallel runner.

Experiment drivers describe runs as frozen :class:`RunSpec` objects and
hand them to :func:`run_many`; the backend registry decides which
simulator executes each spec, the process pool fans specs out across
cores, and the on-disk cache (keyed by spec content hash) skips runs
already computed. Results come back in spec order with worker telemetry
merged into the caller's session, so parallel runs are byte-identical
to serial ones.
"""

from .backends import (
    Backend,
    backend_names,
    execute,
    get_backend,
    register,
    resolve_backend,
)
from .cache import CacheEntry, ResultCache
from .grid import batchable_spec, execute_batched, plan_groups
from .parallel import (
    RunnerConfig,
    current_config,
    run_many,
    run_one,
    using,
)
from .spec import (
    FluidScenarioResult,
    RunResult,
    RunSpec,
    ScenarioSpec,
    SenderSpec,
    derive_seed,
    freeze_mapping,
    safe_content_hash,
)

__all__ = [
    "Backend",
    "CacheEntry",
    "FluidScenarioResult",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "RunnerConfig",
    "ScenarioSpec",
    "SenderSpec",
    "backend_names",
    "batchable_spec",
    "current_config",
    "derive_seed",
    "execute",
    "execute_batched",
    "freeze_mapping",
    "get_backend",
    "plan_groups",
    "register",
    "resolve_backend",
    "run_many",
    "run_one",
    "safe_content_hash",
    "using",
]
