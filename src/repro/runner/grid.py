"""The batched grid tier: stack compatible fluid specs into one run.

``run_many(..., batch=True)`` partitions its cache misses into groups
that one :class:`repro.cc.grid_bank.GridBank` can execute together —
same backend, same ``dt``, same duration, single-bottleneck topology —
and simulates each group as one structure-of-arrays run. Per-spec
divergence (timers, seeds, workload phases, fault windows) lives in
per-run lanes inside the bank, so every spec's result is bit-identical
to executing it alone through :class:`~repro.runner.backends.
FluidBackend` — including the telemetry each spec's session records.

Specs whose scenarios the bank cannot represent (custom sources, PFC
thresholds, routed fabrics, scalar-engine requests) simply stay on the
per-spec path: every function here returns ``None`` rather than raise
when a group turns out not to be batchable, and ``run_many`` falls
back to the pool for exactly those specs.

Raggedness: a spec may carry several scenarios, run in order over one
shared :class:`~repro.sim.rng.RandomStreams`. The group executes in
*waves* — wave ``w`` stacks scenario ``w`` of every spec that has one
— which preserves each spec's sequential scenario order (and therefore
its stream continuation) while still batching across specs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..telemetry.session import Telemetry, use
from ..units import gbps
from .backends import _reject_fabric_faults, build_fluid_scenario_sim
from .spec import (
    FluidScenarioResult,
    RunResult,
    RunSpec,
    safe_content_hash,
)

#: Simulator defaults mirrored from ``DcqcnFluidSimulator`` so a spec
#: that spells an option explicitly groups with one that relies on the
#: default. Values are asserted against the simulator in the tests.
DEFAULT_DT = 5e-6
DEFAULT_ENGINE = "vector"

#: The only options a batchable spec may carry: everything else (PFC
#: thresholds, placements, ...) has no grid-lane representation.
BATCHABLE_OPTIONS = frozenset({"dt", "sample_interval", "engine"})

#: Smallest group worth stacking — a single spec gains nothing from
#: the grid kernel over the plain vector engine.
MIN_GROUP = 2


def batchable_spec(spec: RunSpec) -> bool:
    """Whether ``spec`` is a candidate for grid batching.

    This is the cheap declarative screen; the engine-level authority is
    :func:`repro.cc.grid_bank.grid_compatible` on the built simulator,
    and :func:`execute_batched` still falls back when that rejects.
    """
    if spec.backend != "fluid":
        return False
    if spec.topology is not None:
        return False
    if not spec.scenarios or spec.duration <= 0:
        return False
    options = spec.options_dict()
    if not set(options) <= BATCHABLE_OPTIONS:
        return False
    if options.get("engine", DEFAULT_ENGINE) != DEFAULT_ENGINE:
        return False
    for scenario in spec.scenarios:
        for sender in scenario.senders:
            if sender.route:
                return False
    return True


def _group_key(spec: RunSpec) -> Tuple[float, float]:
    """Specs stack only when they share a tick size and a horizon."""
    options = spec.options_dict()
    return (float(options.get("dt", DEFAULT_DT)), float(spec.duration))


def plan_groups(
    indexed: Sequence[Tuple[int, RunSpec]],
) -> List[List[int]]:
    """Partition ``(index, spec)`` pairs into batchable groups.

    Returns lists of indices, each of size >= :data:`MIN_GROUP`, in
    first-seen order; unbatchable specs and singleton groups are left
    out (they run on the per-spec path).
    """
    buckets: Dict[Tuple[float, float], List[int]] = {}
    order: List[Tuple[float, float]] = []
    for index, spec in indexed:
        if not batchable_spec(spec):
            continue
        key = _group_key(spec)
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        buckets[key].append(index)
    return [
        buckets[key] for key in order if len(buckets[key]) >= MIN_GROUP
    ]


def execute_batched(
    specs: Sequence[RunSpec],
) -> Optional[List[Tuple[RunResult, Dict[str, Any]]]]:
    """Execute a batchable group as stacked grid runs.

    Returns ``(result, telemetry_state)`` per spec in spec order —
    the same pair :func:`repro.runner.parallel._execute_spec` produces
    — or ``None`` when any wave turns out not to be batchable, in
    which case the caller re-executes every spec from scratch on the
    per-spec path (nothing here mutates the specs, so the fallback is
    safe, just slower).
    """
    from ..cc.dcqcn import DcqcnParams
    from ..cc.grid_bank import GridBank, grid_compatible

    specs = list(specs)
    sessions = [
        Telemetry(name=spec.label or spec.backend) for spec in specs
    ]
    contexts = []
    for spec, session in zip(specs, sessions):
        _reject_fabric_faults(
            spec, "fluid",
            "give each sender a route (SenderSpec.route)",
        )
        capacity = spec.capacity or gbps(50)
        contexts.append({
            "capacity": capacity,
            "params": DcqcnParams(line_rate=capacity),
            "streams": None,
            "scenarios": {},
        })
    max_waves = max(len(spec.scenarios) for spec in specs)
    for wave in range(max_waves):
        entries = []
        for i, spec in enumerate(specs):
            if wave >= len(spec.scenarios):
                continue
            scenario = spec.scenarios[wave]
            ctx = contexts[i]
            with use(sessions[i]):
                if ctx["streams"] is None:
                    from ..sim.rng import RandomStreams

                    ctx["streams"] = RandomStreams(spec.seed)
                sim, jobs = build_fluid_scenario_sim(
                    spec, scenario, ctx["params"], ctx["streams"],
                    ctx["capacity"],
                )
            if not grid_compatible(sim):
                return None
            entries.append((i, scenario, sim, jobs))
        grid = GridBank.build([entry[2] for entry in entries])
        if grid is None:
            return None
        traces = grid.run(specs[entries[0][0]].duration)
        for (i, scenario, _sim, jobs), trace in zip(entries, traces):
            contexts[i]["scenarios"][scenario.name] = (
                FluidScenarioResult(
                    trace=trace,
                    timelines={
                        name: job.timeline
                        for name, job in jobs.items()
                    },
                )
            )
    outcome: List[Tuple[RunResult, Dict[str, Any]]] = []
    for spec, session, ctx in zip(specs, sessions, contexts):
        result = RunResult(
            spec_hash=safe_content_hash(spec),
            backend="fluid",
            label=spec.label,
            fluid=ctx["scenarios"],
        )
        outcome.append((result, session.worker_state()))
    return outcome
