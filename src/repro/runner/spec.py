"""Declarative run specifications and their results.

A :class:`RunSpec` is the library's first-class "one simulation run"
object: topology + job specs + share policy + duration + seed + backend
name, frozen and content-hashable. Experiment drivers build specs and
hand them to :func:`repro.runner.run_many`; which simulator actually
executes a spec is decided by the backend registry
(:mod:`repro.runner.backends`), so the same driver code can fan out
across processes, hit the on-disk result cache, or switch fidelity.

The content hash (:meth:`RunSpec.content_hash`) is a SHA-256 over the
spec's canonical JSON form (via :mod:`repro.io`), excluding the cosmetic
``label``. Two specs that would produce the same result hash the same —
that hash keys the ``runs/cache/`` result cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from ..core.lifecycle import Gate
from ..core.timeline import JobTimeline
from ..errors import ConfigError
from ..faults.events import InjectionSchedule
from ..net.phasesim import SimulationResult
from ..net.topology import Topology
from ..sim.rng import _stable_hash
from ..workloads.job import JobSpec

# SharePolicy imported lazily (type-only) to keep import cycles away.
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..cc.base import SharePolicy
    from ..cc.dcqcn import DcqcnResult


def derive_seed(seed: int, name: str) -> int:
    """A deterministic per-spec seed derived from ``(seed, name)``.

    Built on :func:`repro.sim.rng._stable_hash`, so — like named random
    streams — adding a new derived seed never perturbs existing ones.
    The result is folded to 63 bits (numpy seeds must be non-negative).
    """
    return _stable_hash((int(seed), str(name))) & 0x7FFFFFFFFFFFFFFF


def freeze_mapping(mapping: Optional[Mapping[str, Any]]) -> Tuple:
    """Normalize an optional mapping to a sorted tuple of pairs."""
    if not mapping:
        return ()
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class SenderSpec:
    """One traffic source in a fluid-backend scenario.

    ``compute_time is None`` describes a long-lived DCQCN sender;
    otherwise the sender is an on-off training job alternating
    ``compute_time`` seconds of silence with ``comm_bytes`` of traffic.
    ``stream`` names the RNG stream the sender draws from (defaults to
    ``dcqcn:<name>``); scenarios within one spec share one
    :class:`~repro.sim.rng.RandomStreams`, so a stream reused across
    scenarios continues its sequence — exactly how the original
    experiments consumed randomness.

    ``route`` names the fabric links the sender's traffic traverses, in
    order; it requires the spec to carry a ``topology`` and switches the
    fluid backend to the multi-link fabric engine
    (:mod:`repro.cc.link_engine`). Empty on single-bottleneck runs.
    """

    name: str
    timer: float
    data_bytes: Optional[float] = None
    compute_time: Optional[float] = None
    comm_bytes: Optional[float] = None
    start_offset: float = 0.0
    stream: str = ""
    route: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ScenarioSpec:
    """A named sender lineup executed by the fluid backend."""

    name: str
    senders: Tuple[SenderSpec, ...]


@dataclass(frozen=True)
class RunSpec:
    """One declarative simulation run.

    Only the fields a backend consumes need to be set: phase/engine
    runs use ``jobs``/``policy``/``n_iterations``/``gates``; fluid runs
    use ``scenarios``/``duration``; custom backends read ``options``.

    Attributes:
        backend: Registry name of the executing backend.
        label: Cosmetic name (excluded from the content hash).
        seed: Root seed; backends derive their streams from it.
        jobs: Job specs for phase-style backends.
        policy: Share policy for phase-style backends.
        topology: Explicit topology; ``None`` lets the backend build its
            default (the dumbbell for phase runs).
        n_iterations: Iterations per job for phase-style backends.
        capacity: Bottleneck capacity; ``0.0`` means backend default.
        start_offsets: ``(job_id, start_offset)`` pairs.
        gates: ``(job_id, gate)`` pairs (flow-scheduling admission).
        until: Optional simulation-time horizon.
        duration: Simulated seconds for fluid-style backends.
        scenarios: Sender lineups for the fluid backend (run in order,
            sharing one ``RandomStreams``).
        options: Backend-specific ``(key, value)`` pairs.
        backend_module: Module to import before resolving ``backend`` —
            lets experiment modules register their own backends and
            still execute in spawn-style worker processes.
        faults: Optional validated perturbation schedule
            (:class:`repro.faults.InjectionSchedule`); every built-in
            backend honors it, and ``None`` or an empty schedule leaves
            the run bit-identical to an unfaulted one.
    """

    backend: str
    label: str = ""
    seed: int = 0
    jobs: Tuple[JobSpec, ...] = ()
    policy: Optional["SharePolicy"] = None
    topology: Optional[Topology] = None
    n_iterations: int = 0
    capacity: float = 0.0
    start_offsets: Tuple[Tuple[str, float], ...] = ()
    gates: Tuple[Tuple[str, Gate], ...] = ()
    until: Optional[float] = None
    duration: float = 0.0
    scenarios: Tuple[ScenarioSpec, ...] = ()
    options: Tuple[Tuple[str, Any], ...] = ()
    backend_module: str = ""
    faults: Optional[InjectionSchedule] = None

    def __post_init__(self) -> None:
        if not self.backend:
            raise ConfigError("a run spec needs a backend name")

    # -- convenient views ----------------------------------------------

    def options_dict(self) -> Dict[str, Any]:
        """The ``options`` pairs as a dict."""
        return dict(self.options)

    def start_offsets_dict(self) -> Dict[str, float]:
        """The ``start_offsets`` pairs as a dict."""
        return dict(self.start_offsets)

    def gates_dict(self) -> Dict[str, Gate]:
        """The ``gates`` pairs as a dict."""
        return dict(self.gates)

    def replace(self, **changes: Any) -> "RunSpec":
        """A copy of this spec with the given fields replaced."""
        return replace(self, **changes)

    # -- identity ------------------------------------------------------

    def content_hash(self) -> str:
        """Stable SHA-256 of the spec's canonical serialized form.

        Excludes ``label`` (cosmetic). Raises :class:`ConfigError` when
        the spec contains something :mod:`repro.io` cannot serialize
        (e.g. an ad-hoc gate closure) — such specs are simply not
        cacheable; see :meth:`cacheable`.
        """
        from .. import io

        document = io.run_spec_to_dict(self)
        document.pop("label", None)
        canonical = json.dumps(
            document, sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def cacheable(self) -> bool:
        """Whether the spec serializes (and can therefore be cached)."""
        try:
            self.content_hash()
        except ConfigError:
            return False
        return True


def safe_content_hash(spec: RunSpec) -> str:
    """``spec.content_hash()``, or ``""`` when the spec is uncacheable."""
    try:
        return spec.content_hash()
    except ConfigError:
        return ""


@dataclass
class FluidScenarioResult:
    """One fluid-backend scenario's outcome.

    Bundles the sampled rate/queue traces with the on-off jobs'
    canonical timelines (plain long-lived senders have none).
    """

    trace: "DcqcnResult"
    timelines: Dict[str, JobTimeline] = field(default_factory=dict)

    def timeline(self, name: str) -> JobTimeline:
        """One on-off job's canonical timeline."""
        try:
            return self.timelines[name]
        except KeyError:
            raise ConfigError(
                f"scenario has no timeline for {name!r} "
                f"(has {sorted(self.timelines)})"
            ) from None

    def iteration_times(self, name: str, skip: int = 0) -> np.ndarray:
        """Durations of ``name``'s completed iterations, seconds.

        Unknown names yield an empty array (a plain long-lived sender
        completes no iterations).
        """
        timeline = self.timelines.get(name)
        if timeline is None:
            return np.asarray([], dtype=float)
        return timeline.iteration_times(skip)

    def iterations(self, name: str) -> int:
        """Completed iterations of ``name``."""
        timeline = self.timelines.get(name)
        return 0 if timeline is None else len(timeline)

    def mean_iteration_time(self, name: str, skip: int = 0) -> float:
        """Mean iteration time of one on-off job, seconds."""
        return self.timeline(name).mean_iteration_time(skip)

    def median_iteration_time(self, name: str, skip: int = 0) -> float:
        """Median iteration time of one on-off job, seconds."""
        return self.timeline(name).median_iteration_time(skip)


@dataclass(frozen=True)
class RunResult:
    """What a backend produced for one :class:`RunSpec`.

    Exactly one payload area is populated, depending on the backend:
    ``phase`` for phase/engine runs, ``fluid`` for fluid runs, ``data``
    (plain JSON-able values) for custom backends.
    """

    spec_hash: str
    backend: str
    label: str = ""
    phase: Optional[SimulationResult] = None
    fluid: Dict[str, FluidScenarioResult] = field(default_factory=dict)
    data: Dict[str, Any] = field(default_factory=dict)

    def scenario(self, name: str) -> FluidScenarioResult:
        """One fluid scenario by name."""
        try:
            return self.fluid[name]
        except KeyError:
            raise ConfigError(
                f"run result has no scenario {name!r} "
                f"(has {sorted(self.fluid)})"
            ) from None

    def timelines(
        self, scenario: Optional[str] = None
    ) -> Dict[str, JobTimeline]:
        """Canonical per-job timelines, whatever the backend.

        Phase/engine results read them from the simulation; fluid
        results need ``scenario`` unless the run had exactly one; data
        backends must have serialized a ``"timelines"`` entry.
        """
        if self.phase is not None:
            return self.phase.timelines()
        if self.fluid:
            if scenario is None:
                if len(self.fluid) != 1:
                    raise ConfigError(
                        "run has several scenarios; pass scenario= "
                        f"(one of {sorted(self.fluid)})"
                    )
                scenario = next(iter(self.fluid))
            return dict(self.scenario(scenario).timelines)
        payload = self.data.get("timelines")
        if payload is not None:
            from .. import io

            return {
                job_id: io.timeline_from_dict(document)
                for job_id, document in payload.items()
            }
        raise ConfigError(
            f"{self.backend!r} run result carries no timelines"
        )
