"""``run_many``: execute run specs across processes, deterministically.

The contract that makes parallelism safe to adopt everywhere:

* **Results come back in spec order**, regardless of worker scheduling.
* **Every spec executes under its own fresh telemetry session** — even
  serially — and the sessions are merged into the caller's session in
  spec order. A ``jobs=4`` run therefore produces byte-identical results
  *and* an identical trace to ``jobs=1``.
* **Each spec carries its own seed**; drivers derive per-spec seeds with
  :func:`repro.runner.spec.derive_seed` so fan-out never changes the
  randomness a spec sees.
* **Cache hits replay** the stored result and its recorded telemetry,
  so a fully cached run is indistinguishable from a fresh one (minus
  the wall-clock spans, which are per-process by design).

Runner-level instruments on the caller's session: counters
``runner.specs``, ``runner.executed``, ``runner.cache.hits``,
``runner.cache.misses``. Worker wall-clock lands in the *span log*
(path ``runner.worker/<label>``) — spans are the session's wall-clock
surface, excluded from the deterministic metrics snapshot.
"""

from __future__ import annotations

import contextlib
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..telemetry.session import Telemetry, resolve, use
from ..telemetry.spans import Span
from . import backends as _backends
from .cache import ResultCache
from .spec import RunResult, RunSpec, safe_content_hash


def _default_cache_dir() -> Path:
    return Path(os.environ.get("REPRO_RUNS_DIR", "runs")) / "cache"


@dataclass(frozen=True)
class RunnerConfig:
    """Ambient defaults for :func:`run_many`.

    The CLI installs one of these via :func:`using` so experiment
    drivers pick up ``--jobs`` / ``--no-cache`` without plumbing the
    flags through every function signature.
    """

    jobs: int = 1
    cache: bool = False
    cache_dir: Path = field(default_factory=_default_cache_dir)
    #: Default for ``run_many(batch=None)``: drivers that want grid
    #: batching opt in per call site, so the ambient default stays off.
    batch: bool = False
    #: CLI override (``--batch`` / ``--no-batch``): when set it wins
    #: over both the ambient default and the per-call argument.
    batch_override: Optional[bool] = None


_config = RunnerConfig()


def current_config() -> RunnerConfig:
    """The ambient runner configuration."""
    return _config


@contextlib.contextmanager
def using(config: RunnerConfig) -> Iterator[RunnerConfig]:
    """Install ``config`` as the ambient runner configuration."""
    global _config
    previous = _config
    _config = config
    try:
        yield config
    finally:
        _config = previous


def _execute_spec(spec: RunSpec) -> Tuple[RunResult, Dict[str, Any], float]:
    """Run one spec under a fresh telemetry session (pool entry point).

    Returns the result, the session's transportable state, and the
    worker's wall-clock seconds. Top-level so it pickles.
    """
    session = Telemetry(name=spec.label or spec.backend)
    # The span log is the one sanctioned wall-clock surface (DET002):
    # worker wall time is measured as a span on the worker's own
    # session and shipped back as a plain float (worker_state() never
    # transports spans, so nothing is double-counted on merge).
    with use(session):
        with session.spans.span("execute") as span:
            result = _backends.execute(spec)
    return result, session.worker_state(), span.duration


def _specs_pickle(specs: Sequence[RunSpec]) -> bool:
    """Whether every spec survives pickling (pool precondition)."""
    try:
        pickle.dumps(list(specs))
    except Exception:
        return False
    return True


def run_many(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[Path] = None,
    telemetry: Optional[Telemetry] = None,
    batch: Optional[bool] = None,
) -> List[RunResult]:
    """Execute ``specs`` and return their results in spec order.

    Args:
        specs: The runs to execute.
        jobs: Worker processes; ``None`` takes the ambient config,
            ``1`` runs in-process. Values above the spec count are
            clamped.
        cache: Whether to consult/populate the on-disk result cache;
            ``None`` takes the ambient config.
        cache_dir: Cache root; ``None`` takes the ambient config.
        telemetry: Session to merge worker telemetry into; ``None``
            resolves to the ambient session.
        batch: Whether to stack compatible cache-miss specs into
            batched grid runs (:mod:`repro.runner.grid`) before
            falling back to the pool; ``None`` takes the ambient
            config, and ``RunnerConfig.batch_override`` (the CLI's
            ``--batch``/``--no-batch``) wins over both. Batched
            results are bit-identical to per-spec execution.

    Specs that fail to pickle (ad-hoc gate closures) silently fall back
    to in-process execution — same results, no fan-out.
    """
    config = current_config()
    jobs = config.jobs if jobs is None else jobs
    cache_enabled = config.cache if cache is None else cache
    root = Path(cache_dir) if cache_dir is not None else config.cache_dir
    batch_enabled = config.batch if batch is None else batch
    if config.batch_override is not None:
        batch_enabled = config.batch_override
    session = resolve(telemetry)

    specs = list(specs)
    store = ResultCache(root) if cache_enabled else None
    hashes: List[str] = [safe_content_hash(spec) for spec in specs]

    results: List[Optional[RunResult]] = [None] * len(specs)
    states: List[Optional[Dict[str, Any]]] = [None] * len(specs)
    seconds: List[Optional[float]] = [None] * len(specs)
    hits = 0

    pending: List[int] = []
    for index, spec in enumerate(specs):
        entry = (
            store.get(hashes[index])
            if store is not None and hashes[index]
            else None
        )
        if entry is not None:
            results[index] = replace(entry.result, label=spec.label)
            states[index] = entry.telemetry
            hits += 1
        else:
            pending.append(index)

    # Grid tier: stack compatible cache misses into batched runs. A
    # group that turns out not to be batchable mid-build falls back to
    # the per-spec path below — results are bit-identical either way,
    # so batching is purely a wall-clock decision.
    batched: set = set()
    if batch_enabled and len(pending) >= 2:
        from . import grid as _grid

        for group in _grid.plan_groups(
            [(i, specs[i]) for i in pending]
        ):
            outcome = _grid.execute_batched([specs[i] for i in group])
            if outcome is None:
                continue
            for index, (result, state) in zip(group, outcome):
                results[index] = result
                states[index] = state
            batched.update(group)

    pool_pending = [i for i in pending if i not in batched]
    if pool_pending:
        workers = min(jobs, len(pool_pending))
        pool_ok = workers > 1 and _specs_pickle(
            [specs[i] for i in pool_pending]
        )
        if pool_ok:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outcomes = list(
                    pool.map(
                        _execute_spec,
                        [specs[i] for i in pool_pending],
                    )
                )
        else:
            outcomes = [_execute_spec(specs[i]) for i in pool_pending]
        for index, (result, state, elapsed) in zip(
            pool_pending, outcomes
        ):
            results[index] = result
            states[index] = state
            seconds[index] = elapsed

    # Merge telemetry and populate the cache in spec order.
    executed = set(pending)
    for index, spec in enumerate(specs):
        state = states[index]
        if state:
            session.merge_worker_state(state)
        if seconds[index] is not None and session.enabled:
            # Wall-clock belongs in the span log, never in metrics:
            # the metrics snapshot must stay deterministic per seed.
            name = spec.label or spec.backend
            span = Span(name, f"runner.worker/{name}", depth=1)
            span.duration = seconds[index]
            session.spans.completed.append(span)
        if (
            store is not None
            and index in executed
            and hashes[index]
            and spec.cacheable()
        ):
            store.put(spec, hashes[index], results[index], state or {})

    if session.enabled:
        session.counter("runner.specs").inc(len(specs))
        session.counter("runner.executed").inc(len(pending))
        session.counter("runner.cache.hits").inc(hits)
        session.counter("runner.cache.misses").inc(len(pending))
        session.counter("runner.batched").inc(len(batched))

    return [result for result in results if result is not None]


def run_one(
    spec: RunSpec,
    cache: Optional[bool] = None,
    cache_dir: Optional[Path] = None,
    telemetry: Optional[Telemetry] = None,
) -> RunResult:
    """Execute a single spec through the runner (serial)."""
    [result] = run_many(
        [spec], jobs=1, cache=cache, cache_dir=cache_dir,
        telemetry=telemetry,
    )
    return result
