"""The on-disk result cache, keyed by spec content hash.

Layout: one JSON document per cached run at
``<root>/<content-hash>.json`` containing the serialized spec (for
inspection), the serialized :class:`~repro.runner.spec.RunResult`, and
the worker telemetry state captured when the run executed — so a cache
hit replays the run's metrics and trace into the requesting session
exactly as a fresh execution would.

Everything round-trips through :mod:`repro.io`; a spec whose payload the
codecs cannot express (ad-hoc gate closures, non-JSON option values) is
simply never cached — the runner executes it every time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from ..errors import ConfigError
from .spec import RunResult, RunSpec

#: Schema version of cache entries; bumped when the layout changes.
#: v2: results carry canonical job timelines instead of per-backend
#: iteration lists; older entries self-heal as misses.
#: v3: specs serialize their ``faults`` injection schedule, so hashes
#: computed before the field existed must not alias faulted runs.
#: v4: fabric runs — sender routes in specs, per-link queue series in
#: fluid results; pre-fabric entries lack the link series and must not
#: be replayed for topology-backed specs.
CACHE_VERSION = 4


@dataclass
class CacheEntry:
    """One cache hit: the stored result plus its telemetry state."""

    result: RunResult
    telemetry: Dict[str, Any]


class ResultCache:
    """Content-addressed store of run results under one directory."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def path_for(self, content_hash: str) -> Path:
        """Where a given spec hash lives on disk."""
        return self.root / f"{content_hash}.json"

    def get(self, content_hash: str) -> Optional[CacheEntry]:
        """The stored entry for ``content_hash``, or ``None`` on a miss.

        A corrupt or stale-schema file counts as a miss and is removed,
        so a broken cache heals itself instead of wedging runs.
        """
        path = self.path_for(content_hash)
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            path.unlink(missing_ok=True)
            return None
        try:
            if document.get("cache_version") != CACHE_VERSION:
                raise ConfigError("cache schema mismatch")
            from .. import io

            result = io.run_result_from_dict(document["result"])
            telemetry = document.get("telemetry", {})
        except (ConfigError, KeyError, TypeError, ValueError):
            path.unlink(missing_ok=True)
            return None
        return CacheEntry(result=result, telemetry=telemetry)

    def put(
        self,
        spec: RunSpec,
        content_hash: str,
        result: RunResult,
        telemetry: Dict[str, Any],
    ) -> bool:
        """Store one executed run. Returns False when unserializable."""
        from .. import io

        try:
            document = {
                "cache_version": CACHE_VERSION,
                "spec": io.run_spec_to_dict(spec),
                "result": io.run_result_to_dict(result),
                "telemetry": telemetry,
            }
            payload = json.dumps(document, sort_keys=True)
        except (ConfigError, TypeError, ValueError):
            return False
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(content_hash)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(payload, encoding="utf-8")
        tmp.replace(path)
        return True

    def stats(self) -> Dict[str, Any]:
        """Entry count and total size of the cache directory."""
        entries = 0
        total_bytes = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                entries += 1
                total_bytes += path.stat().st_size
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
        }

    def clear(self) -> int:
        """Delete all cache entries; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
